//! `twoview` — command-line interface to the library.
//!
//! ```text
//! twoview generate <dataset> [--rows N] [--out data.2v]
//! twoview stats    <data.2v> [--metrics]
//! twoview fit      <data.2v> [--method select|greedy|exact] [--k K]
//!                  [--minsup M] [--retries N] [--timeout-ms T]
//!                  [--snapshot-dir DIR] [--trace trace.jsonl] [--quiet]
//!                  [--out rules.txt]
//! twoview score    <data.2v> <rules.txt>
//! twoview translate <data.2v> <rules.txt> [--from left|right] [--limit N]
//! twoview snapshot --inspect <file.snap>
//! ```
//!
//! Persistence: `fit --snapshot-dir DIR` warm-starts the serving Engine
//! from `DIR/engine.snap` when a valid snapshot is present (falling back
//! to mining on any damage or mismatch) and writes one back after a cold
//! build; `snapshot --inspect FILE` prints a JSON integrity report
//! (header, per-section checksums, identity) without requiring the file
//! to be valid.
//!
//! Observability: `--trace <path>` streams a JSON-lines span/event trace
//! of the run to `path` (equivalent to setting `TWOVIEW_TRACE`); `stats
//! --metrics` runs a fit and prints the process metric registry as JSON;
//! `--quiet` routes informational chatter to stderr so stdout carries
//! only the model (or metrics JSON) — traces never interleave with model
//! output because they go to their own file.

#![forbid(unsafe_code)]

use std::fs::File;
use std::process::ExitCode;

use twoview::core::{table_io, translate};
use twoview::data::corpus::PaperDataset;
use twoview::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  twoview generate <dataset> [--rows N] [--out data.2v]
  twoview stats    <data.2v> [--metrics] [--method select|greedy|exact]
                   [--k K] [--minsup M]
  twoview fit      <data.2v> [--method select|greedy|exact] [--k K] [--minsup M]
                   [--retries N] [--timeout-ms T] [--snapshot-dir DIR]
                   [--trace trace.jsonl] [--quiet] [--out rules.txt]
  twoview score    <data.2v> <rules.txt>
  twoview translate <data.2v> <rules.txt> [--from left|right] [--limit N]
  twoview snapshot --inspect <file.snap>

persistence: fit --snapshot-dir DIR warm-starts the Engine from
DIR/engine.snap when a valid, matching snapshot exists (any damage,
version skew or dataset mismatch falls back to mining; never an error)
and saves one after a cold build; snapshot --inspect FILE prints a JSON
integrity report of a snapshot file (works on damaged files too).

fit robustness: --retries N re-runs a transiently failing fit up to N extra
times (deterministic exponential backoff); --timeout-ms T bounds the fit's
total time (an expired fit reports 'deadline exceeded', never a partial
model). Either flag routes the fit through the serving Engine and prints
its robustness counters.

observability: fit --trace PATH streams a JSON-lines span/event trace of
the run to PATH (same as TWOVIEW_TRACE=PATH); stats --metrics runs a fit
through the Engine and prints the metric-registry snapshot as JSON on
stdout; --quiet sends informational chatter to stderr so stdout carries
only the model / metrics payload.

datasets: abalone adult cal500 car chesskrvk crime elections emotions
          house mammals nursery tictactoe wine yeast";

struct Flags {
    positional: Vec<String>,
    rows: Option<usize>,
    out: Option<String>,
    method: String,
    k: usize,
    minsup: Option<usize>,
    retries: Option<u32>,
    timeout_ms: Option<u64>,
    trace: Option<String>,
    snapshot_dir: Option<String>,
    inspect: Option<String>,
    quiet: bool,
    metrics: bool,
    from: Side,
    limit: usize,
}

impl Flags {
    /// Informational output: stdout normally, stderr under `--quiet` so
    /// stdout carries only the model / metrics payload.
    fn info(&self, line: std::fmt::Arguments<'_>) {
        if self.quiet {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, Error> {
    let mut f = Flags {
        positional: Vec::new(),
        rows: None,
        out: None,
        method: "select".into(),
        k: 1,
        minsup: None,
        retries: None,
        timeout_ms: None,
        trace: None,
        snapshot_dir: None,
        inspect: None,
        quiet: false,
        metrics: false,
        from: Side::Left,
        limit: 10,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, Error> {
            it.next()
                .cloned()
                .ok_or_else(|| Error::config(format!("{name} needs a value")))
        };
        match a.as_str() {
            "--rows" => {
                f.rows = Some(
                    value("--rows")?
                        .parse()
                        .map_err(|e| Error::config(format!("--rows: {e}")))?,
                )
            }
            "--out" => f.out = Some(value("--out")?),
            "--method" => f.method = value("--method")?,
            "--k" => {
                f.k = value("--k")?
                    .parse()
                    .map_err(|e| Error::config(format!("--k: {e}")))?
            }
            "--minsup" => {
                f.minsup = Some(
                    value("--minsup")?
                        .parse()
                        .map_err(|e| Error::config(format!("--minsup: {e}")))?,
                )
            }
            "--retries" => {
                f.retries = Some(
                    value("--retries")?
                        .parse()
                        .map_err(|e| Error::config(format!("--retries: {e}")))?,
                )
            }
            "--timeout-ms" => {
                f.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| Error::config(format!("--timeout-ms: {e}")))?,
                )
            }
            "--trace" => f.trace = Some(value("--trace")?),
            "--snapshot-dir" => f.snapshot_dir = Some(value("--snapshot-dir")?),
            "--inspect" => f.inspect = Some(value("--inspect")?),
            "--quiet" => f.quiet = true,
            "--metrics" => f.metrics = true,
            "--from" => {
                f.from = match value("--from")?.as_str() {
                    "left" => Side::Left,
                    "right" => Side::Right,
                    other => {
                        return Err(Error::config(format!(
                            "--from must be left|right, got {other}"
                        )))
                    }
                }
            }
            "--limit" => {
                f.limit = value("--limit")?
                    .parse()
                    .map_err(|e| Error::config(format!("--limit: {e}")))?
            }
            other if other.starts_with("--") => {
                return Err(Error::config(format!("unknown flag {other}")))
            }
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

fn load(path: &str) -> Result<TwoViewDataset, Error> {
    let file = File::open(path).map_err(|e| Error::config(format!("open {path}: {e}")))?;
    twoview::data::io::read_dataset(file).map_err(Error::from)
}

fn algorithm_from(flags: &Flags, minsup: usize) -> Result<Algorithm, Error> {
    match flags.method.as_str() {
        "select" => Ok(Algorithm::Select(
            SelectConfig::builder().k(flags.k).minsup(minsup).build(),
        )),
        "greedy" => Ok(Algorithm::Greedy(
            GreedyConfig::builder().minsup(minsup).build(),
        )),
        "exact" => Ok(Algorithm::Exact(ExactConfig {
            max_nodes: Some(20_000_000),
            ..ExactConfig::default()
        })),
        other => Err(Error::config(format!(
            "unknown method {other} (select|greedy|exact)"
        ))),
    }
}

fn run(args: &[String]) -> Result<(), Error> {
    let Some(cmd) = args.first() else {
        return Err(Error::config("missing command"));
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "generate" => {
            let name = flags
                .positional
                .first()
                .ok_or_else(|| Error::config("generate needs a dataset name"))?;
            let ds = PaperDataset::by_name(name)
                .ok_or_else(|| Error::config(format!("unknown dataset {name:?}")))?;
            let data = ds.generate_scaled(flags.rows.unwrap_or(usize::MAX)).dataset;
            let path = flags
                .out
                .unwrap_or_else(|| format!("{}.2v", name.to_ascii_lowercase()));
            let file =
                File::create(&path).map_err(|e| Error::config(format!("create {path}: {e}")))?;
            twoview::data::io::write_dataset(&data, file)?;
            println!(
                "wrote {path}: {} transactions, {}+{} items",
                data.n_transactions(),
                data.vocab().n_left(),
                data.vocab().n_right()
            );
            Ok(())
        }
        "stats" => {
            let path = flags
                .positional
                .first()
                .ok_or_else(|| Error::config("stats needs a .2v file"))?;
            let data = load(path)?;
            if flags.metrics {
                // Run one fit through the serving Engine and print the
                // process metric registry as JSON (the exact payload a
                // /metrics endpoint would serve). Only the JSON goes to
                // stdout; the fit summary is informational.
                let minsup = flags.minsup.unwrap_or(1);
                let algorithm = algorithm_from(&flags, minsup)?;
                let engine = twoview::Engine::builder()
                    .dataset(data)
                    .minsup(minsup)
                    .build()?;
                let model = engine.fit(algorithm).join()?;
                flags.info(format_args!(
                    "fitted {} rules, L% = {:.2}",
                    model.table.len(),
                    model.compression_pct()
                ));
                println!("{}", twoview::runtime::obs::snapshot().to_json());
                return Ok(());
            }
            let codes = CodeLengths::new(&data);
            println!("name       : {}", data.name());
            println!("|D|        : {}", data.n_transactions());
            println!(
                "|IL|, |IR| : {}, {}",
                data.vocab().n_left(),
                data.vocab().n_right()
            );
            println!(
                "density    : {:.3} / {:.3}",
                data.density(Side::Left),
                data.density(Side::Right)
            );
            println!("L(D,0)     : {:.0} bits", codes.empty_model(&data));
            Ok(())
        }
        "fit" => {
            let path = flags
                .positional
                .first()
                .ok_or_else(|| Error::config("fit needs a .2v file"))?;
            let data = load(path)?;
            let minsup = flags.minsup.unwrap_or(1);
            let algorithm = algorithm_from(&flags, minsup)?;
            if let Some(trace_path) = &flags.trace {
                twoview::runtime::obs::trace_to_path(trace_path)
                    .map_err(|e| Error::config(format!("open trace {trace_path}: {e}")))?;
            }
            let robust = flags.retries.is_some() || flags.timeout_ms.is_some();
            let model = if robust || flags.snapshot_dir.is_some() {
                // Robustness / persistence flags route through the
                // serving Engine: retries, deadlines and snapshots are
                // engine-layer features.
                let mut builder = twoview::Engine::builder()
                    .dataset(data.clone())
                    .minsup(minsup)
                    .retry_policy(twoview::RetryPolicy::new(
                        flags.retries.unwrap_or(0) + 1,
                        std::time::Duration::from_millis(50),
                    ));
                if let Some(ms) = flags.timeout_ms {
                    builder = builder.default_deadline(twoview::Deadline::total(
                        std::time::Duration::from_millis(ms),
                    ));
                }
                if let Some(dir) = &flags.snapshot_dir {
                    builder = builder.snapshot_dir(dir);
                }
                let engine = builder.build()?;
                let handle = engine.fit(algorithm);
                let model = handle.join()?;
                let stats = engine.stats();
                if flags.snapshot_dir.is_some() {
                    flags.info(format_args!(
                        "snapshot: {}, build mine {:.1} ms (loaded {}, rejected {})",
                        if stats.snapshots_loaded > 0 {
                            "warm start"
                        } else {
                            "cold start"
                        },
                        stats.build_mine_ms,
                        stats.snapshots_loaded,
                        stats.snapshots_rejected
                    ));
                }
                if robust {
                    flags.info(format_args!(
                        "robustness: retried {}, degraded {}, timed out {}, rejected {}",
                        stats.jobs_retried,
                        stats.fits_degraded,
                        stats.jobs_timed_out,
                        stats.jobs_rejected
                    ));
                }
                model
            } else {
                twoview::core::engine::fit(&data, &algorithm)
            };
            if flags.trace.is_some() {
                // Flush and close the trace sink so the file is complete
                // before the model is reported.
                twoview::runtime::obs::trace_off();
            }
            flags.info(format_args!(
                "fitted {} rules, L% = {:.2} (|C|% = {:.2})",
                model.table.len(),
                model.compression_pct(),
                model.score.correction_pct()
            ));
            match &flags.out {
                Some(out) => {
                    let file = File::create(out)
                        .map_err(|e| Error::config(format!("create {out}: {e}")))?;
                    table_io::write_table(&model.table, data.vocab(), file)?;
                    flags.info(format_args!("rules written to {out}"));
                }
                None => print!("{}", model.table.display(data.vocab())),
            }
            Ok(())
        }
        "score" => {
            let [data_path, rules_path] = flags.positional.as_slice() else {
                return Err(Error::config("score needs <data.2v> <rules.txt>"));
            };
            let data = load(data_path)?;
            let file = File::open(rules_path)
                .map_err(|e| Error::config(format!("open {rules_path}: {e}")))?;
            let table = table_io::read_table(data.vocab(), file)?;
            let score = evaluate_table(&data, &table);
            println!("|T|   : {}", table.len());
            println!("L%    : {:.2}", score.compression_pct());
            println!("|C|%  : {:.2}", score.correction_pct());
            println!("L(T)  : {:.1} bits", score.l_table);
            println!("L(C_L): {:.1} bits", score.l_correction_left);
            println!("L(C_R): {:.1} bits", score.l_correction_right);
            Ok(())
        }
        "translate" => {
            let [data_path, rules_path] = flags.positional.as_slice() else {
                return Err(Error::config("translate needs <data.2v> <rules.txt>"));
            };
            let data = load(data_path)?;
            let file = File::open(rules_path)
                .map_err(|e| Error::config(format!("open {rules_path}: {e}")))?;
            let table = table_io::read_table(data.vocab(), file)?;
            let target = flags.from.opposite();
            // Preview rows: the correction is predicted ⊕ actual, derived
            // from the prediction we already hold — no whole-dataset pass
            // for a --limit-row preview (the quality summary below does
            // its own batched full pass).
            for t in 0..data.n_transactions().min(flags.limit) {
                let predicted = translate::translate_transaction(&data, &table, flags.from, t);
                let names: Vec<&str> = predicted
                    .iter()
                    .map(|l| data.vocab().name(data.vocab().global_id(target, l)))
                    .collect();
                let correction = translate::apply_correction(&predicted, data.row(target, t));
                println!(
                    "t{t}: predicted {{{}}} ({} corrections)",
                    names.join(", "),
                    correction.len()
                );
            }
            let q = twoview::core::predict::prediction_quality(&data, &table, flags.from);
            println!(
                "overall: precision {:.3}, recall {:.3}, F1 {:.3}, {} exact rows",
                q.precision, q.recall, q.f1, q.exact_matches
            );
            Ok(())
        }
        "snapshot" => {
            // Accept the file either via --inspect (the documented form)
            // or as a bare positional.
            let path = flags
                .inspect
                .as_deref()
                .or_else(|| flags.positional.first().map(String::as_str))
                .ok_or_else(|| Error::config("snapshot needs --inspect <file.snap>"))?;
            let report = twoview::core::persist::inspect(std::path::Path::new(path))
                .map_err(twoview::core::Error::from)?;
            println!("{}", report.to_json());
            Ok(())
        }
        other => Err(Error::config(format!("unknown command {other}"))),
    }
}
