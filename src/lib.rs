//! # twoview
//!
//! A production-quality Rust reproduction of **"Association Discovery in
//! Two-View Data"** (van Leeuwen & Galbrun, IEEE TKDE 27(12), 2015): MDL-
//! selected *translation tables* that describe how the two views of a
//! Boolean dataset relate, induced by the TRANSLATOR-EXACT / -SELECT /
//! -GREEDY algorithms, together with the itemset-mining substrate, the
//! paper's four baselines, and the full experiment harness.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`data`] ([`twoview_data`]) — two-view datasets, bitmaps, I/O and the
//!   synthetic corpus mirroring the paper's 14 evaluation datasets;
//! * [`mining`] ([`twoview_mining`]) — ECLAT, closed itemset mining,
//!   two-view candidate generation, and the [`CandidateCache`] serving
//!   substrate;
//! * [`core`] ([`twoview_core`]) — translation rules/tables, the TRANSLATE
//!   scheme, MDL scoring, the three TRANSLATOR algorithms, and the
//!   session-oriented [`Engine`];
//! * [`baselines`] ([`twoview_baselines`]) — association rules,
//!   significant-rule discovery, redescription mining, KRIMP;
//! * [`eval`] ([`twoview_eval`]) — metrics and the runners regenerating
//!   every table and figure of the paper;
//! * [`runtime`] ([`twoview_runtime`]) — the persistent worker pool behind
//!   every parallel hot path plus the priority-aware [`JobQueue`] the
//!   engine schedules on (`TWOVIEW_RUNTIME_THREADS` overrides the
//!   process-wide thread default).
//!
//! ## Quickstart: the `Engine` serving session
//!
//! The paper's workflow is *mine once, then induce and query many ways*.
//! [`Engine`] owns the dataset, mines the candidate substrate once at
//! construction, and serves fits and queries as concurrent, prioritized,
//! cancellable jobs:
//!
//! ```
//! use twoview::prelude::*;
//!
//! // Two views over the same objects: weather conditions vs activities.
//! let vocab = Vocabulary::new(
//!     ["rainy", "sunny", "windy"],
//!     ["umbrella", "sunglasses", "kite"],
//! );
//! let data = TwoViewDataset::from_transactions(
//!     vocab,
//!     &[
//!         vec![0, 3],       // rainy -> umbrella
//!         vec![0, 3],
//!         vec![0, 2, 3, 5], // rainy+windy -> umbrella+kite
//!         vec![1, 4],       // sunny -> sunglasses
//!         vec![1, 4],
//!         vec![1, 2, 4, 5],
//!     ],
//! );
//!
//! // Mine once; the engine caches candidates + seed tidsets.
//! let engine = Engine::builder().dataset(data).minsup(1).build()?;
//!
//! // Fit a translation table with TRANSLATOR-SELECT(1) as a job.
//! let model = engine
//!     .fit(Algorithm::Select(SelectConfig::builder().k(1).build()))
//!     .join()?;
//! assert!(model.compression_pct() < 100.0);
//! for rule in model.table.iter() {
//!     println!("{}", rule.display(engine.dataset().vocab()));
//! }
//!
//! // Query it: translate the left view, at interactive priority.
//! let translated = engine.translate(model.table.clone(), Side::Left).join()?;
//! assert_eq!(translated.len(), engine.dataset().n_transactions());
//! # Ok::<(), twoview::Error>(())
//! ```
//!
//! The free functions ([`translator_select`](prelude::translator_select)
//! & co.) remain for one-shot scripts; they mine per call. Configs are
//! built fluently (`SelectConfig::builder().k(1).minsup(5).rub(true)
//! .build()`); the old positional constructors are gone — every config
//! goes through its builder.
//!
//! ## Migration (pre-`Engine` API → 0.2)
//!
//! | old (removed) | new |
//! |---|---|
//! | `SelectConfig::new(k, m)` | `SelectConfig::builder().k(k).minsup(m).build()` |
//! | `GreedyConfig::new(m)` | `GreedyConfig::builder().minsup(m).build()` |
//! | `MinerConfig::with_minsup(m)` | `MinerConfig::builder().minsup(m).build()` |
//! | `ExactConfig { max_nodes: Some(n), ..Default::default() }` | `ExactConfig::builder().max_nodes(n).build()` |
//! | `translator_select(&d, &cfg)` per call | `Engine::builder().dataset(d).build()?` once, then `engine.fit(Algorithm::Select(cfg)).join()?` |
//! | `translate::correction_row(&d, &t, from, i)` | `translate::correction_rows(&d, &t, from)[i]` (batched) |
//! | `evaluate_table(&d, &t)` on a serving path | `engine.evaluate(t).join()?` |
//! | panicking I/O paths | `Result<_, twoview::Error>` end to end |

#![forbid(unsafe_code)]

pub use twoview_baselines as baselines;
pub use twoview_core as core;
pub use twoview_data as data;
pub use twoview_eval as eval;
pub use twoview_mining as mining;
pub use twoview_runtime as runtime;

#[doc(inline)]
pub use twoview_core::{Engine, EngineBuilder, EngineStats, Error};
#[doc(inline)]
pub use twoview_mining::CandidateCache;
#[doc(inline)]
pub use twoview_runtime::{
    AdmissionPolicy, Deadline, JobHandle, JobQueue, JobStatus, Priority, RetryPolicy,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use twoview_core::engine::{fit, Algorithm};
    pub use twoview_core::{
        evaluate_table, translator_exact, translator_exact_seeded, translator_exact_with,
        translator_greedy, translator_select, CodeLengths, CoverState, Direction, Engine,
        EngineBuilder, EngineStats, Error, ExactConfig, GreedyConfig, ModelScore, SelectConfig,
        TranslationRule, TranslationTable, TranslatorModel,
    };
    pub use twoview_data::prelude::*;
    pub use twoview_mining::{mine_closed_twoview, CandidateCache, MinerConfig, TwoViewCandidate};
    pub use twoview_runtime::{
        AdmissionPolicy, CancellationToken, Deadline, JobError, JobHandle, JobOptions, JobStatus,
        JobTimings, Priority, QueueConfig, QueueStats, RetryPolicy,
    };
}
