//! # twoview
//!
//! A production-quality Rust reproduction of **"Association Discovery in
//! Two-View Data"** (van Leeuwen & Galbrun, IEEE TKDE 27(12), 2015): MDL-
//! selected *translation tables* that describe how the two views of a
//! Boolean dataset relate, induced by the TRANSLATOR-EXACT / -SELECT /
//! -GREEDY algorithms, together with the itemset-mining substrate, the
//! paper's four baselines, and the full experiment harness.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`data`] ([`twoview_data`]) — two-view datasets, bitmaps, I/O and the
//!   synthetic corpus mirroring the paper's 14 evaluation datasets;
//! * [`mining`] ([`twoview_mining`]) — ECLAT, closed itemset mining, and
//!   two-view candidate generation;
//! * [`core`] ([`twoview_core`]) — translation rules/tables, the TRANSLATE
//!   scheme, MDL scoring, and the three TRANSLATOR algorithms;
//! * [`baselines`] ([`twoview_baselines`]) — association rules,
//!   significant-rule discovery, redescription mining, KRIMP;
//! * [`eval`] ([`twoview_eval`]) — metrics and the runners regenerating
//!   every table and figure of the paper;
//! * [`runtime`] ([`twoview_runtime`]) — the persistent worker pool behind
//!   every parallel hot path (SELECT refresh, EXACT root fan-out, miner
//!   first-level expansion), with deterministic ordered reduction so
//!   results are bit-identical for any thread count
//!   (`TWOVIEW_RUNTIME_THREADS` overrides the process-wide default).
//!
//! ## Quickstart
//!
//! ```
//! use twoview::prelude::*;
//!
//! // Two views over the same objects: weather conditions vs activities.
//! let vocab = Vocabulary::new(
//!     ["rainy", "sunny", "windy"],
//!     ["umbrella", "sunglasses", "kite"],
//! );
//! let data = TwoViewDataset::from_transactions(
//!     vocab,
//!     &[
//!         vec![0, 3],       // rainy -> umbrella
//!         vec![0, 3],
//!         vec![0, 2, 3, 5], // rainy+windy -> umbrella+kite
//!         vec![1, 4],       // sunny -> sunglasses
//!         vec![1, 4],
//!         vec![1, 2, 4, 5],
//!     ],
//! );
//!
//! // Induce a translation table with TRANSLATOR-SELECT(1).
//! let model = translator_select(&data, &SelectConfig::new(1, 1));
//! assert!(model.compression_pct() < 100.0);
//! for rule in model.table.iter() {
//!     println!("{}", rule.display(data.vocab()));
//! }
//! ```

pub use twoview_baselines as baselines;
pub use twoview_core as core;
pub use twoview_data as data;
pub use twoview_eval as eval;
pub use twoview_mining as mining;
pub use twoview_runtime as runtime;

/// One-stop imports for applications.
pub mod prelude {
    pub use twoview_core::{
        evaluate_table, translator_exact, translator_exact_with, translator_greedy,
        translator_select, CodeLengths, CoverState, Direction, ExactConfig, GreedyConfig,
        ModelScore, SelectConfig, TranslationRule, TranslationTable, TranslatorModel,
    };
    pub use twoview_data::prelude::*;
    pub use twoview_mining::{mine_closed_twoview, MinerConfig, TwoViewCandidate};
}
