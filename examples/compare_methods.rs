//! Side-by-side comparison of all methods on one dataset: the three
//! TRANSLATOR variants plus the paper's baselines, scored with the paper's
//! criteria (|T|, avg length, |C|%, c+, L%).
//!
//! Run with: `cargo run --release --example compare_methods [dataset]`

use std::time::Instant;

use twoview::baselines::{
    krimp, magnum_opus_rules, reremi_redescriptions, KrimpConfig, MagnumConfig, ReremiConfig,
};
use twoview::data::corpus::PaperDataset;
use twoview::eval::report::{fnum, Align, TextTable};
use twoview::eval::{format_runtime, MethodMetrics};
use twoview::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "wine".into());
    let Some(ds) = PaperDataset::by_name(&name) else {
        eprintln!("unknown dataset {name:?}; try wine, house, yeast, ...");
        std::process::exit(2);
    };
    let data = ds.generate_scaled(1000).dataset;
    let minsup = ds.minsup_for(data.n_transactions());
    println!(
        "{}: {} transactions, minsup {}\n",
        ds.name(),
        data.n_transactions(),
        minsup
    );

    let mut rows: Vec<MethodMetrics> = Vec::new();

    let t0 = Instant::now();
    let m = translator_select(&data, &SelectConfig::new(1, minsup));
    rows.push(MethodMetrics::for_model(
        "T-SELECT(1)",
        &data,
        &m,
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let m = translator_select(&data, &SelectConfig::new(25, minsup));
    rows.push(MethodMetrics::for_model(
        "T-SELECT(25)",
        &data,
        &m,
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let m = translator_greedy(&data, &GreedyConfig::new(minsup));
    rows.push(MethodMetrics::for_model(
        "T-GREEDY",
        &data,
        &m,
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let mm = magnum_opus_rules(&data, &MagnumConfig::default());
    rows.push(MethodMetrics::for_table(
        "MAGNUM OPUS*",
        &data,
        &mm.to_translation_table(),
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let rr = reremi_redescriptions(&data, &ReremiConfig::default());
    rows.push(MethodMetrics::for_table(
        "REREMI*",
        &data,
        &rr.to_translation_table(),
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let km = krimp(&data, &KrimpConfig::new(minsup.max(2)));
    rows.push(MethodMetrics::for_table(
        "KRIMP",
        &data,
        &km.to_translation_table(data.vocab()),
        t0.elapsed(),
    ));

    let mut table = TextTable::new(&[
        ("method", Align::Left),
        ("|T|", Align::Right),
        ("l", Align::Right),
        ("|C|%", Align::Right),
        ("c+", Align::Right),
        ("L%", Align::Right),
        ("runtime", Align::Right),
    ]);
    for m in &rows {
        table.row([
            m.method.clone(),
            m.n_rules.to_string(),
            fnum(m.avg_len, 1),
            fnum(m.c_pct, 2),
            fnum(m.avg_cplus, 2),
            fnum(m.l_pct, 2),
            format_runtime(m.runtime),
        ]);
    }
    print!("{}", table.render());
    println!("\nlower L% = better model of the cross-view structure;");
    println!("TRANSLATOR variants should dominate the baselines (paper Table 3).");
}
