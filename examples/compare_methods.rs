//! Side-by-side comparison of all methods on one dataset: the three
//! TRANSLATOR variants plus the paper's baselines, scored with the paper's
//! criteria (|T|, avg length, |C|%, c+, L%).
//!
//! Run with: `cargo run --release --example compare_methods [dataset]`

use std::time::Instant;

use twoview::baselines::{
    krimp, magnum_opus_rules, reremi_redescriptions, KrimpConfig, MagnumConfig, ReremiConfig,
};
use twoview::data::corpus::PaperDataset;
use twoview::eval::report::{fnum, Align, TextTable};
use twoview::eval::{format_runtime, MethodMetrics};
use twoview::prelude::*;

fn main() -> Result<(), Error> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "wine".into());
    let Some(ds) = PaperDataset::by_name(&name) else {
        eprintln!("unknown dataset {name:?}; try wine, house, yeast, ...");
        std::process::exit(2);
    };
    let data = ds.generate_scaled(1000).dataset;
    let minsup = ds.minsup_for(data.n_transactions());
    println!(
        "{}: {} transactions, minsup {}\n",
        ds.name(),
        data.n_transactions(),
        minsup
    );

    // One engine session: the three TRANSLATOR variants run as concurrent
    // batch jobs over the same cached candidate set (mined once, here).
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()?;
    println!(
        "engine: {} candidates cached in {:.1} ms; fits reuse them\n",
        engine.stats().n_candidates,
        engine.stats().build_mine_ms
    );

    let mut rows: Vec<MethodMetrics> = Vec::new();

    let jobs = [
        (
            "T-SELECT(1)",
            engine.fit(Algorithm::Select(
                SelectConfig::builder().k(1).minsup(minsup).build(),
            )),
        ),
        (
            "T-SELECT(25)",
            engine.fit(Algorithm::Select(
                SelectConfig::builder().k(25).minsup(minsup).build(),
            )),
        ),
        (
            "T-GREEDY",
            engine.fit(Algorithm::Greedy(
                GreedyConfig::builder().minsup(minsup).build(),
            )),
        ),
    ];
    for (label, job) in jobs {
        job.wait();
        let runtime = job.timings().run.unwrap_or_default();
        let m = job.join()?;
        rows.push(MethodMetrics::for_model(label, &data, &m, runtime));
    }

    let t0 = Instant::now();
    let mm = magnum_opus_rules(&data, &MagnumConfig::default());
    rows.push(MethodMetrics::for_table(
        "MAGNUM OPUS*",
        &data,
        &mm.to_translation_table(),
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let rr = reremi_redescriptions(&data, &ReremiConfig::default());
    rows.push(MethodMetrics::for_table(
        "REREMI*",
        &data,
        &rr.to_translation_table(),
        t0.elapsed(),
    ));

    let t0 = Instant::now();
    let km = krimp(&data, &KrimpConfig::new(minsup.max(2)));
    rows.push(MethodMetrics::for_table(
        "KRIMP",
        &data,
        &km.to_translation_table(data.vocab()),
        t0.elapsed(),
    ));

    let mut table = TextTable::new(&[
        ("method", Align::Left),
        ("|T|", Align::Right),
        ("l", Align::Right),
        ("|C|%", Align::Right),
        ("c+", Align::Right),
        ("L%", Align::Right),
        ("runtime", Align::Right),
    ]);
    for m in &rows {
        table.row([
            m.method.clone(),
            m.n_rules.to_string(),
            fnum(m.avg_len, 1),
            fnum(m.c_pct, 2),
            fnum(m.avg_cplus, 2),
            fnum(m.l_pct, 2),
            format_runtime(m.runtime),
        ]);
    }
    print!("{}", table.render());
    println!("\nlower L% = better model of the cross-view structure;");
    println!("TRANSLATOR variants should dominate the baselines (paper Table 3).");
    println!(
        "(engine re-mining inside fits: {:.1} ms — 0 means every fit reused the cache)",
        engine.stats().fit_mine_ms
    );
    Ok(())
}
