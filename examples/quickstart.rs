//! Quickstart: build a tiny two-view dataset inline, induce a translation
//! table, inspect the rules, and demonstrate lossless translation.
//!
//! Run with: `cargo run --release --example quickstart`

use twoview::core::translate;
use twoview::prelude::*;

fn main() {
    // Objects: days. Left view: weather. Right view: what people carried.
    let vocab = Vocabulary::new(
        ["rainy", "sunny", "windy", "cold"],
        ["umbrella", "sunglasses", "kite", "coat"],
    );
    let (rainy, sunny, windy, cold) = (0, 1, 2, 3);
    let (umbrella, sunglasses, kite, coat) = (4, 5, 6, 7);

    let transactions = vec![
        vec![rainy, umbrella],
        vec![rainy, cold, umbrella, coat],
        vec![rainy, windy, umbrella, kite],
        vec![rainy, umbrella],
        vec![sunny, sunglasses],
        vec![sunny, windy, sunglasses, kite],
        vec![sunny, sunglasses],
        vec![cold, coat],
        vec![windy, kite],
        vec![rainy, cold, umbrella, coat],
    ];
    let data = TwoViewDataset::from_transactions(vocab, &transactions).with_name("weather");

    println!(
        "dataset: {} transactions, {} + {} items",
        data.n_transactions(),
        data.vocab().n_left(),
        data.vocab().n_right()
    );

    // Fit a translation table with TRANSLATOR-SELECT(1).
    let model = translator_select(&data, &SelectConfig::new(1, 1));
    println!(
        "\ntranslation table ({} rules, L% = {:.1}):",
        model.table.len(),
        model.compression_pct()
    );
    for (i, rule) in model.table.iter().enumerate() {
        println!("  {}. {}", i + 1, rule.display(data.vocab()));
    }

    // Translate the left view of a transaction and reconstruct losslessly.
    let t = 1; // rainy+cold day
    let predicted = translate::translate_transaction(&data, &model.table, Side::Left, t);
    let correction = translate::correction_row(&data, &model.table, Side::Left, t);
    let reconstructed = translate::apply_correction(&predicted, &correction);
    println!("\ntransaction {t}:");
    println!(
        "  left view : {}",
        data.transaction_items(t).display(data.vocab())
    );
    print!("  predicted right:");
    for local in predicted.iter() {
        print!(
            " {}",
            data.vocab()
                .name(data.vocab().global_id(Side::Right, local))
        );
    }
    println!();
    println!("  corrections needed: {} item(s)", correction.len());
    assert_eq!(
        &reconstructed,
        data.row(Side::Right, t),
        "translation is lossless"
    );
    println!("  reconstruction: exact (lossless by construction)");

    // The MDL score lets you compare arbitrary hand-written tables too.
    let handmade = TranslationTable::from_rules([TranslationRule::new(
        ItemSet::from_items([rainy]),
        ItemSet::from_items([umbrella]),
        Direction::Both,
    )]);
    let score = evaluate_table(&data, &handmade);
    println!(
        "\nhand-written 1-rule table: L% = {:.1} (model found: {:.1})",
        score.compression_pct(),
        model.compression_pct()
    );
}
