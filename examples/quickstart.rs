//! Quickstart: build a tiny two-view dataset inline, start an [`Engine`]
//! session, induce a translation table as a job, inspect the rules, and
//! demonstrate lossless translation.
//!
//! Run with: `cargo run --release --example quickstart`

use twoview::core::translate;
use twoview::prelude::*;

fn main() -> Result<(), Error> {
    // Objects: days. Left view: weather. Right view: what people carried.
    let vocab = Vocabulary::new(
        ["rainy", "sunny", "windy", "cold"],
        ["umbrella", "sunglasses", "kite", "coat"],
    );
    let (rainy, sunny, windy, cold) = (0, 1, 2, 3);
    let (umbrella, sunglasses, kite, coat) = (4, 5, 6, 7);

    let transactions = vec![
        vec![rainy, umbrella],
        vec![rainy, cold, umbrella, coat],
        vec![rainy, windy, umbrella, kite],
        vec![rainy, umbrella],
        vec![sunny, sunglasses],
        vec![sunny, windy, sunglasses, kite],
        vec![sunny, sunglasses],
        vec![cold, coat],
        vec![windy, kite],
        vec![rainy, cold, umbrella, coat],
    ];
    let data = TwoViewDataset::from_transactions(vocab, &transactions).with_name("weather");

    println!(
        "dataset: {} transactions, {} + {} items",
        data.n_transactions(),
        data.vocab().n_left(),
        data.vocab().n_right()
    );

    // One engine session: candidates are mined once here and reused by
    // every fit and query below.
    let engine = Engine::builder().dataset(data).minsup(1).build()?;
    println!(
        "engine: {} cached candidates ({:.2} ms mining)",
        engine.stats().n_candidates,
        engine.stats().build_mine_ms
    );

    // Fit a translation table with TRANSLATOR-SELECT(1), as a job.
    let model = engine
        .fit(Algorithm::Select(SelectConfig::builder().k(1).build()))
        .join()?;
    let data = engine.dataset();
    println!(
        "\ntranslation table ({} rules, L% = {:.1}):",
        model.table.len(),
        model.compression_pct()
    );
    for (i, rule) in model.table.iter().enumerate() {
        println!("  {}. {}", i + 1, rule.display(data.vocab()));
    }

    // Translate the left view (an interactive-priority job) and
    // reconstruct losslessly with the batched correction rows.
    let t = 1; // rainy+cold day
    let predicted = &engine.translate(model.table.clone(), Side::Left).join()?[t];
    let correction = &translate::correction_rows(data, &model.table, Side::Left)[t];
    let reconstructed = translate::apply_correction(predicted, correction);
    println!("\ntransaction {t}:");
    println!(
        "  left view : {}",
        data.transaction_items(t).display(data.vocab())
    );
    print!("  predicted right:");
    for local in predicted.iter() {
        print!(
            " {}",
            data.vocab()
                .name(data.vocab().global_id(Side::Right, local))
        );
    }
    println!();
    println!("  corrections needed: {} item(s)", correction.len());
    assert_eq!(
        &reconstructed,
        data.row(Side::Right, t),
        "translation is lossless"
    );
    println!("  reconstruction: exact (lossless by construction)");

    // The MDL score lets you compare arbitrary hand-written tables too —
    // also served as a job.
    let handmade = TranslationTable::from_rules([TranslationRule::new(
        ItemSet::from_items([rainy]),
        ItemSet::from_items([umbrella]),
        Direction::Both,
    )]);
    let score = engine.evaluate(handmade).join()?;
    println!(
        "\nhand-written 1-rule table: L% = {:.1} (model found: {:.1})",
        score.compression_pct(),
        model.compression_pct()
    );
    println!(
        "engine served {} jobs; re-mining inside fits: {:.1} ms (0 = cache reuse)",
        engine.stats().jobs_submitted,
        engine.stats().fit_mine_ms
    );
    Ok(())
}
