//! The paper's introductory scenario: music tracks described by semantic
//! annotations (emotions, usages, song qualities) on one side and musical
//! content (genres, instruments, vocals) on the other — which emotions are
//! evoked by which types of music?
//!
//! Uses the CAL500 corpus analogue and prints the associations TRANSLATOR
//! discovers, including every rule involving `Genre:Rock` (the paper's
//! Fig. 6 drill-down).
//!
//! Run with: `cargo run --release --example music_emotions`

use twoview::data::corpus::PaperDataset;
use twoview::eval::figures::{rules_containing, top_rules};
use twoview::prelude::*;

fn main() -> Result<(), Error> {
    let generated = PaperDataset::Cal500.generate();
    let data = &generated.dataset;
    println!(
        "CAL500 analogue: {} tracks, {} semantic items | {} music items",
        data.n_transactions(),
        data.vocab().n_left(),
        data.vocab().n_right()
    );

    let minsup = PaperDataset::Cal500.minsup_for(data.n_transactions());
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()?;
    let model = engine
        .fit(Algorithm::Select(
            SelectConfig::builder().k(1).minsup(minsup).build(),
        ))
        .join()?;
    println!(
        "\nTRANSLATOR-SELECT(1): {} rules, compression L% = {:.2}\n",
        model.table.len(),
        model.compression_pct()
    );

    println!("strongest associations (first rules added):");
    for r in top_rules(data, &model.table, 5) {
        println!("  {}   [c+ = {:.2}, supp = {}]", r.text, r.cplus, r.support);
    }

    println!("\nrules involving Genre:Rock (cf. paper Fig. 6):");
    let rock = rules_containing(data, &model.table, "Genre:Rock");
    if rock.is_empty() {
        println!("  (none in this synthetic instance — the planted concepts");
        println!("   are sampled over the whole vocabulary; rerun other items)");
    }
    for r in rock {
        println!("  {}   [c+ = {:.2}, supp = {}]", r.text, r.cplus, r.support);
    }

    // Which semantic items are most connected to the music side?
    let mut uses: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for rule in model.table.iter() {
        for i in rule.left.iter() {
            *uses.entry(data.vocab().name(i).to_string()).or_default() += 1;
        }
    }
    let mut ranked: Vec<(String, usize)> = uses.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("\nmost rule-active semantic descriptors:");
    for (name, count) in ranked.into_iter().take(5) {
        println!("  {name}: {count} rule(s)");
    }
    Ok(())
}
