//! Beyond two views (paper §7 future work): the paper's medical-domain
//! motivation with *three* descriptor spaces over the same persons —
//! demographics, medical conditions, lifestyle. Which views explain each
//! other, and through which rules?
//!
//! Run with: `cargo run --release --example multiview_health`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twoview::core::multiview::fit_multiview;
use twoview::data::multiview::MultiViewDataset;
use twoview::prelude::*;

fn main() {
    // Synthesize 600 persons. Age drives both medical conditions and
    // lifestyle; lifestyle and conditions are linked only through age.
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 600;
    let (mut demo, mut med, mut life) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..n {
        let senior = rng.gen_bool(0.4);
        let urban = rng.gen_bool(0.5);
        demo.push(vec![if senior { 1 } else { 0 }, if urban { 2 } else { 3 }]);
        let mut m = Vec::new();
        if senior && rng.gen_bool(0.75) {
            m.push(0); // hypertension
        }
        if senior && rng.gen_bool(0.55) {
            m.push(1); // arthritis
        }
        if !senior && rng.gen_bool(0.12) {
            m.push(2); // sports-injury
        }
        med.push(m);
        let mut l = Vec::new();
        if !senior && rng.gen_bool(0.7) {
            l.push(0); // gym
        }
        if senior && rng.gen_bool(0.6) {
            l.push(1); // gardening
        }
        if rng.gen_bool(0.3) {
            l.push(2); // reading
        }
        life.push(l);
    }

    let mv = MultiViewDataset::new(vec![
        (
            "demo".into(),
            vec![
                "age<65".into(),
                "age>=65".into(),
                "urban".into(),
                "rural".into(),
            ],
            demo,
        ),
        (
            "medical".into(),
            vec![
                "hypertension".into(),
                "arthritis".into(),
                "sports-injury".into(),
            ],
            med,
        ),
        (
            "lifestyle".into(),
            vec!["gym".into(), "gardening".into(), "reading".into()],
            life,
        ),
    ])
    .expect("valid multi-view data");

    println!(
        "{} persons, {} views: {}",
        mv.n_objects(),
        mv.n_views(),
        (0..mv.n_views())
            .map(|v| mv.view_name(v))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let model = fit_multiview(&mv, &SelectConfig::builder().k(1).minsup(5).build());

    println!("\npairwise association strengths (100 - L%):");
    let k = mv.n_views();
    let matrix = model.association_matrix(k);
    print!("{:>12}", " ");
    for v in 0..k {
        print!("{:>12}", mv.view_name(v));
    }
    println!();
    for (a, row) in matrix.iter().enumerate() {
        print!("{:>12}", mv.view_name(a));
        for cell in row {
            print!("{cell:>12.1}");
        }
        println!();
    }

    for (a, b, pair_model) in &model.pair_models {
        println!(
            "\n{} ~ {} ({} rules, L% = {:.1}):",
            mv.view_name(*a),
            mv.view_name(*b),
            pair_model.table.len(),
            pair_model.compression_pct()
        );
        let pair_data = mv.pair(*a, *b);
        for rule in pair_model.table.iter().take(3) {
            println!("  {}", rule.display(pair_data.vocab()));
        }
    }

    println!("\nexpected shape: demo~medical and demo~lifestyle couple strongly;");
    println!("medical~lifestyle is weaker (only linked through age).");
}
