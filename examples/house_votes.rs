//! The House dataset walk-through: fit a model, watch the construction
//! trace (the paper's Fig. 2), and verify the lossless-translation
//! guarantee transaction by transaction.
//!
//! Run with: `cargo run --release --example house_votes`

use twoview::core::translate;
use twoview::data::corpus::PaperDataset;
use twoview::prelude::*;

fn main() -> Result<(), Error> {
    let data = PaperDataset::House.generate().dataset;
    println!(
        "House analogue: {} congressmen, {} + {} vote/party items",
        data.n_transactions(),
        data.vocab().n_left(),
        data.vocab().n_right()
    );

    let minsup = PaperDataset::House.minsup_for(data.n_transactions());
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()?;
    let model = engine
        .fit(Algorithm::Select(
            SelectConfig::builder().k(1).minsup(minsup).build(),
        ))
        .join()?;

    // Construction trace: the first rules capture the most structure.
    println!("\nconstruction trace (first 8 rules):");
    println!(
        "{:>4}  {:>9}  {:>9}  {:>7}  rule",
        "#", "gain", "L(D,T)", "|U|+|E|"
    );
    for step in model.trace.iter().take(8) {
        println!(
            "{:>4}  {:>9.1}  {:>9.1}  {:>7}  {}",
            step.rule_index + 1,
            step.gain,
            step.l_total,
            step.uncovered_left + step.uncovered_right + step.errors_left + step.errors_right,
            step.rule.display(data.vocab())
        );
    }
    println!(
        "... {} rules total, final L% = {:.2}",
        model.table.len(),
        model.compression_pct()
    );

    // Lossless translation: both directions, every transaction.
    assert_eq!(
        translate::check_lossless(&data, &model.table),
        None,
        "translation must be lossless"
    );
    println!(
        "\nlossless check: all {} transactions reconstruct exactly, both directions",
        data.n_transactions()
    );

    // How much of the right view does the left view predict?
    let mut predicted = 0usize;
    let mut actual = 0usize;
    for t in 0..data.n_transactions() {
        let p = translate::translate_transaction(&data, &model.table, Side::Left, t);
        predicted += p.intersection_len(data.row(Side::Right, t));
        actual += data.row(Side::Right, t).len();
    }
    println!(
        "left-to-right translation predicts {predicted} of {actual} right-view ones ({:.1}%)",
        100.0 * predicted as f64 / actual as f64
    );
    Ok(())
}
