//! Reproduction of the paper's **Fig. 1**: translating a toy two-view
//! dataset with a two-rule translation table, showing the intermediate
//! translated views and both correction tables.
//!
//! Run with: `cargo run --release --example paper_fig1`

use twoview::core::translate;
use twoview::prelude::*;

fn render_row(data: &TwoViewDataset, side: Side, bm: &twoview::data::bitmap::Bitmap) -> String {
    let vocab = data.vocab();
    let names: Vec<&str> = bm
        .iter()
        .map(|l| vocab.name(vocab.global_id(side, l)))
        .collect();
    format!("{{{}}}", names.join(" "))
}

fn main() {
    // A toy dataset in the spirit of the paper's Fig. 1: left items A,B,C,
    // right items L,U,S,P,Q.
    let vocab = Vocabulary::new(["A", "B", "C"], ["L", "U", "S", "P", "Q"]);
    let data = TwoViewDataset::from_transactions(
        vocab,
        &[
            vec![0, 1, 3, 4],    // A B | L U     (rule 1 applies cleanly)
            vec![2, 6, 7],       // C   | P Q     (rule 2 errs: predicts S)
            vec![2, 5],          // C   | S       (rule 2 applies cleanly)
            vec![0, 1, 3, 4],    // A B | L U
            vec![0, 1, 2, 4, 5], // A B C | U S   (rule 1 errs: predicts L)
        ],
    );
    let table = TranslationTable::from_rules([
        TranslationRule::new(
            ItemSet::from_items([0, 1]),
            ItemSet::from_items([3, 4]),
            Direction::Both,
        ),
        TranslationRule::new(
            ItemSet::from_items([2]),
            ItemSet::from_items([5]),
            Direction::Forward,
        ),
    ]);

    println!("translation table T:");
    for rule in table.iter() {
        println!("  {}", rule.display(data.vocab()));
    }

    println!(
        "\n{:<14}{:<14}{:<16}{:<14}reconstructed",
        "D_L", "D_R", "D'_R = T(D_L)", "C_R"
    );
    let corrections = translate::correction_rows(&data, &table, Side::Left);
    for (t, correction) in corrections.iter().enumerate() {
        let translated = translate::translate_transaction(&data, &table, Side::Left, t);
        let reconstructed = translate::apply_correction(&translated, correction);
        assert_eq!(&reconstructed, data.row(Side::Right, t));
        println!(
            "{:<14}{:<14}{:<16}{:<14}{}",
            render_row(&data, Side::Left, data.row(Side::Left, t)),
            render_row(&data, Side::Right, data.row(Side::Right, t)),
            render_row(&data, Side::Right, &translated),
            render_row(&data, Side::Right, correction),
            render_row(&data, Side::Right, &reconstructed),
        );
    }

    println!("\nright-to-left direction (only the bidirectional rule fires):");
    println!("{:<14}{:<16}C_L", "D_R", "D'_L = T(D_R)");
    let corrections = translate::correction_rows(&data, &table, Side::Right);
    for (t, correction) in corrections.iter().enumerate() {
        let translated = translate::translate_transaction(&data, &table, Side::Right, t);
        println!(
            "{:<14}{:<16}{}",
            render_row(&data, Side::Right, data.row(Side::Right, t)),
            render_row(&data, Side::Left, &translated),
            render_row(&data, Side::Left, correction),
        );
    }

    // And the MDL accounting of this toy model.
    let score = evaluate_table(&data, &table);
    println!(
        "\nMDL accounting: L(T) = {:.1}, L(C_L|T) = {:.1}, L(C_R|T) = {:.1}",
        score.l_table, score.l_correction_left, score.l_correction_right
    );
    println!(
        "total L(D,T) = {:.1} bits vs L(D,0) = {:.1} bits  (L% = {:.1})",
        score.l_total,
        score.l_empty,
        score.compression_pct()
    );
}
