//! The paper's Elections scenario (Fig. 7): candidate *profiles* (party,
//! age, occupation, …) on the left, answers to the election-engine
//! questionnaire on the right. Which profiles go with which political
//! views, and is the association one-way or two-way?
//!
//! Run with: `cargo run --release --example elections`

use twoview::data::corpus::PaperDataset;
use twoview::eval::figures::top_rules;
use twoview::prelude::*;

fn main() -> Result<(), Error> {
    // Scaled instance for interactive use; the eval binaries run full-size.
    let generated = PaperDataset::Elections.generate_scaled(800);
    let data = &generated.dataset;
    println!(
        "Elections analogue: {} candidates, {} profile items | {} answer items",
        data.n_transactions(),
        data.vocab().n_left(),
        data.vocab().n_right()
    );

    let minsup = PaperDataset::Elections.minsup_for(data.n_transactions());
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()?;
    let model = engine
        .fit(Algorithm::Select(
            SelectConfig::builder().k(1).minsup(minsup).build(),
        ))
        .join()?;
    println!(
        "\nTRANSLATOR-SELECT(1): {} rules, L% = {:.2}",
        model.table.len(),
        model.compression_pct()
    );
    let bidir = model.table.n_bidirectional();
    println!(
        "{bidir} bidirectional, {} unidirectional — both kinds are useful:",
        model.table.len() - bidir
    );
    println!("a one-way rule means other profiles share the same view.\n");

    println!("example rules (cf. paper Fig. 7):");
    for r in top_rules(data, &model.table, 4) {
        println!("  {}   [c+ = {:.2}, supp = {}]", r.text, r.cplus, r.support);
    }

    // Ground truth check: the generator planted these concepts.
    println!("\nplanted ground-truth concepts (for reference):");
    for c in generated.concepts.iter().take(4) {
        println!(
            "  {} {} {}   [occurrence {:.2}, confidence {:.2}]",
            c.left.display(data.vocab()),
            if c.bidirectional { "<->" } else { "->" },
            c.right.display(data.vocab()),
            c.occurrence,
            c.confidence
        );
    }
    Ok(())
}
