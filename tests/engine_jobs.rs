//! Engine job-queue behaviour: N concurrent fits with mixed priorities
//! (one cancelled mid-run) must produce models **bit-identical** to serial
//! runs, and an Interactive job enqueued behind a wall of Batch jobs must
//! start before them. (The runtime crate's unit tests prove the raw
//! scheduling contract with a controlled gate; these tests prove it holds
//! end-to-end through `Engine::fit`.)

use twoview::data::synthetic::{self, StructureSpec, SyntheticSpec};
use twoview::prelude::*;

fn corpus(n: usize, seed: u64) -> TwoViewDataset {
    let spec = SyntheticSpec {
        name: format!("engine-jobs-{seed}"),
        n_transactions: n,
        n_left: 12,
        n_right: 10,
        density_left: 0.3,
        density_right: 0.3,
        structure: StructureSpec::strong(3),
        seed,
    };
    synthetic::generate(&spec).expect("valid spec").dataset
}

/// The mixed-priority concurrency property: submit a batch of fits (SELECT
/// at several k, GREEDY, EXACT) from multiple threads at alternating
/// priorities, cancel one mid-run, and require every completed job to be
/// bit-identical to the corresponding serial `*_candidates` run over the
/// engine's cached candidate set — and the engine to have re-mined nothing.
#[test]
fn concurrent_mixed_priority_fits_are_bit_identical_to_serial() {
    let d = corpus(400, 11);
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .job_executors(3)
        .build()
        .unwrap();
    let cands = engine.candidates().to_vec();
    assert!(!cands.is_empty());

    let select_ks = [1usize, 2, 3, 25];
    let algorithms: Vec<Algorithm> = select_ks
        .iter()
        .map(|&k| Algorithm::Select(SelectConfig::builder().k(k).minsup(2).build()))
        .chain([
            Algorithm::Greedy(GreedyConfig::builder().minsup(2).build()),
            Algorithm::Exact(
                ExactConfig::builder()
                    .max_nodes(20_000)
                    .max_rules(2)
                    .seed_minsup(Some(2))
                    .threads(2)
                    .build(),
            ),
        ])
        .collect();

    // Submit everything concurrently from one thread per job, priorities
    // alternating, plus one victim fit cancelled as soon as it starts.
    let (handles, victim) = std::thread::scope(|s| {
        let engine = &engine;
        let submitters: Vec<_> = algorithms
            .iter()
            .enumerate()
            .map(|(i, alg)| {
                let alg = alg.clone();
                s.spawn(move || {
                    let priority = if i % 2 == 0 {
                        Priority::Interactive
                    } else {
                        Priority::Batch
                    };
                    engine.fit_with(alg, priority)
                })
            })
            .collect();
        let victim = engine.fit(Algorithm::Select(SelectConfig::builder().minsup(2).build()));
        victim.wait_started();
        victim.cancel();
        let handles: Vec<_> = submitters.into_iter().map(|t| t.join().unwrap()).collect();
        (handles, victim)
    });

    // The cancelled job either wound down cooperatively (no partial model
    // exists anywhere) or raced to completion — in which case it too must
    // be bit-identical to serial.
    match victim.join() {
        Err(JobError::Cancelled) => {}
        Ok(model) => {
            let serial = twoview::core::select::translator_select_candidates(
                &d,
                &SelectConfig::builder().minsup(2).build(),
                &cands,
            );
            assert_eq!(model.table, serial.table, "raced-to-completion victim");
        }
        Err(other) => panic!("victim neither cancelled nor completed: {other:?}"),
    }

    for (alg, handle) in algorithms.iter().zip(handles) {
        let model = handle.join().unwrap_or_else(|e| {
            panic!("{} failed: {e}", alg.label());
        });
        let serial = match alg {
            Algorithm::Select(cfg) => {
                twoview::core::select::translator_select_candidates(&d, cfg, &cands)
            }
            Algorithm::Greedy(cfg) => {
                twoview::core::greedy::translator_greedy_candidates(&d, cfg, &cands)
            }
            Algorithm::Exact(cfg) => translator_exact_seeded(&d, cfg, &cands),
        };
        assert_eq!(model.table, serial.table, "{} differs", alg.label());
        assert!(
            (model.score.l_total - serial.score.l_total).abs() < 1e-9,
            "{} score differs",
            alg.label()
        );
    }

    let stats = engine.stats();
    assert_eq!(
        stats.fit_mine_ms, 0.0,
        "every fit must reuse the cached candidates (no re-mining)"
    );
    assert!(stats.fits_completed >= algorithms.len() as u64);
}

/// The scheduling property end-to-end: with a single executor occupied by
/// a long-running batch fit, an Interactive fit submitted *after* K Batch
/// fits must start before every one of them.
#[test]
fn interactive_fit_starts_before_earlier_batch_fits() {
    // A corpus large enough that the occupying fit is still running while
    // the rest of the submissions (microseconds) land in the queue.
    let d = corpus(600, 5);
    let engine = Engine::builder()
        .dataset(d)
        .minsup(2)
        .job_executors(1)
        .build()
        .unwrap();

    let occupier = engine.fit(Algorithm::Select(
        SelectConfig::builder().k(1).minsup(2).build(),
    ));
    let batch: Vec<_> = (0..4)
        .map(|_| {
            engine.fit_with(
                Algorithm::Select(SelectConfig::builder().k(2).minsup(2).build()),
                Priority::Batch,
            )
        })
        .collect();
    let interactive = engine.fit_with(
        Algorithm::Select(SelectConfig::builder().k(3).minsup(2).build()),
        Priority::Interactive,
    );

    occupier.join().unwrap();
    interactive.wait();
    let i_start = interactive
        .start_index()
        .expect("interactive fit must have started");
    interactive.join().unwrap();
    for (k, handle) in batch.into_iter().enumerate() {
        handle.wait();
        let b_start = handle.start_index().expect("batch fit must have started");
        assert!(
            i_start < b_start,
            "interactive started at {i_start}, batch job {k} at {b_start}"
        );
        handle.join().unwrap();
    }
}
