//! Golden-shape tests: the qualitative findings of the paper that any
//! faithful reproduction must preserve, checked end-to-end.

use twoview::data::corpus::PaperDataset;
use twoview::data::synthetic::{generate, StructureSpec, SyntheticSpec};
use twoview::prelude::*;

fn spec(structure: StructureSpec, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: "shape".into(),
        n_transactions: 400,
        n_left: 15,
        n_right: 12,
        density_left: 0.25,
        density_right: 0.25,
        structure,
        seed,
    }
}

#[test]
fn structured_data_compresses_structure_free_data_does_not() {
    // The paper: "if there is little or no structure connecting the two
    // views, this will be reflected in the attained compression ratios."
    let structured = generate(&spec(StructureSpec::strong(4), 11))
        .unwrap()
        .dataset;
    let noise = generate(&spec(StructureSpec::none(), 11)).unwrap().dataset;

    let m_structured =
        translator_select(&structured, &SelectConfig::builder().k(1).minsup(2).build());
    let m_noise = translator_select(&noise, &SelectConfig::builder().k(1).minsup(2).build());

    assert!(
        m_structured.compression_pct() < 85.0,
        "structured: {}",
        m_structured.compression_pct()
    );
    assert!(
        m_noise.compression_pct() > m_structured.compression_pct() + 5.0,
        "noise {} vs structured {}",
        m_noise.compression_pct(),
        m_structured.compression_pct()
    );
}

#[test]
fn translator_recovers_planted_concepts() {
    let out = generate(&spec(StructureSpec::strong(3), 21)).unwrap();
    let model = translator_select(
        &out.dataset,
        &SelectConfig::builder().k(1).minsup(2).build(),
    );
    // For each planted concept, some fitted rule must overlap it on both
    // sides (the greedy model may split or merge concepts, but it cannot
    // miss them entirely).
    for (ci, concept) in out.concepts.iter().enumerate() {
        let hit = model.table.iter().any(|r| {
            !r.left.intersect(&concept.left).is_empty()
                && !r.right.intersect(&concept.right).is_empty()
        });
        assert!(hit, "concept {ci} ({:?}) not recovered", concept);
    }
}

#[test]
fn method_quality_ordering_holds() {
    // Paper Table 2: EXACT <= SELECT(1) <= GREEDY in compressed size
    // (modulo small tolerances; GREEDY is occasionally lucky).
    let data = PaperDataset::Wine.generate_scaled(150).dataset;
    let exact = translator_exact_with(
        &data,
        &ExactConfig {
            max_nodes: Some(200_000),
            ..ExactConfig::default()
        },
    );
    let select = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    let greedy = translator_greedy(&data, &GreedyConfig::builder().minsup(1).build());
    assert!(exact.compression_pct() <= select.compression_pct() + 1e-6);
    assert!(select.compression_pct() <= greedy.compression_pct() + 2.0);
}

#[test]
fn number_of_rules_is_far_below_transaction_count() {
    // Paper: "in all cases, there are much fewer rules than there are
    // transactions in the dataset".
    for ds in [PaperDataset::House, PaperDataset::Wine, PaperDataset::Yeast] {
        let data = ds.generate_scaled(400).dataset;
        let minsup = ds.minsup_for(data.n_transactions());
        let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(minsup).build());
        assert!(
            model.table.len() * 2 < data.n_transactions(),
            "{}: {} rules for {} transactions",
            ds.name(),
            model.table.len(),
            data.n_transactions()
        );
    }
}

#[test]
fn compressibility_ranking_follows_planted_strength() {
    // House is the most compressible dataset in the paper, Nursery among
    // the least; the synthetic corpus must reproduce that ordering.
    let house = PaperDataset::House.generate_scaled(300).dataset;
    let nursery = PaperDataset::Nursery.generate_scaled(300).dataset;
    let mh = translator_select(
        &house,
        &SelectConfig::builder()
            .minsup(PaperDataset::House.minsup_for(300))
            .build(),
    );
    let mn = translator_select(
        &nursery,
        &SelectConfig::builder()
            .minsup(PaperDataset::Nursery.minsup_for(300))
            .build(),
    );
    assert!(
        mh.compression_pct() + 10.0 < mn.compression_pct(),
        "House {} vs Nursery {}",
        mh.compression_pct(),
        mn.compression_pct()
    );
}

#[test]
fn bidirectional_rules_appear_for_symmetric_concepts() {
    // With all-bidirectional planted structure, the model must contain
    // bidirectional rules (the paper stresses both kinds are useful).
    let mut st = StructureSpec::strong(4);
    st.bidir_fraction = 1.0;
    let data = generate(&spec(st, 31)).unwrap().dataset;
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    assert!(
        model.table.n_bidirectional() > 0,
        "no bidirectional rules in {:?}",
        model.table.rules()
    );
}

#[test]
fn unidirectional_rules_appear_for_asymmetric_concepts() {
    let mut st = StructureSpec::strong(4);
    st.bidir_fraction = 0.0;
    let data = generate(&spec(st, 41)).unwrap().dataset;
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    let uni = model.table.len() - model.table.n_bidirectional();
    assert!(uni > 0, "no unidirectional rules");
}
