//! Persistence suite: crash-safe snapshots end to end.
//!
//! The properties proved here, per the persistence contract
//! (`twoview::core::persist`):
//!
//! * **round-trip identity** — a warm-started engine (loaded from
//!   `snapshot_dir`) is bit-identical to the cold-started engine that
//!   wrote the snapshot, under every tidset representation mode, with
//!   `build_mine_ms == 0` and `fit_mine_ms == 0` on the warm path;
//! * **hardened loading** — version skew, truncation at every section
//!   boundary, and arbitrary byte damage are all rejected as
//!   recoverable errors: the builder falls back to re-mining and the
//!   recovered model is bit-identical, with the rejection counted in
//!   [`EngineStats`] (`snapshots_rejected`);
//! * **torn/corrupt/failed writes** — the `snapshot.torn`,
//!   `snapshot.corrupt` and `snapshot.write_fail` fault points plant
//!   exactly the damage a crash or bit rot would, and the next start
//!   recovers without panicking, then heals the snapshot;
//! * **concurrent saves** — saving while fits are running (and while
//!   other saves race to the same path) never corrupts the file: the
//!   last atomic rename wins and loads clean.
//!
//! Tidset mode and the fault registry are process-global, so every test
//! serialises on one mutex and restores global state before returning.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use twoview::core::persist::{self, ENGINE_SNAPSHOT_FILE};
use twoview::data::synthetic::{self, StructureSpec, SyntheticSpec};
use twoview::prelude::*;
use twoview::runtime::faults::{self, points, FaultPlan};

static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock_globals() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn chaos_seed() -> u64 {
    std::env::var("TWOVIEW_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

fn corpus(n: usize, seed: u64) -> TwoViewDataset {
    let spec = SyntheticSpec {
        name: format!("engine-persist-{seed}"),
        n_transactions: n,
        n_left: 12,
        n_right: 10,
        density_left: 0.3,
        density_right: 0.3,
        structure: StructureSpec::strong(3),
        seed,
    };
    synthetic::generate(&spec).expect("valid spec").dataset
}

/// Fresh scratch directory under the system temp dir; removed by
/// `Scratch::drop` (best effort).
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "twoview-engine-persist-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn snap(&self) -> PathBuf {
        self.0.join(ENGINE_SNAPSHOT_FILE)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_with_dir(data: &TwoViewDataset, dir: &Path) -> Engine {
    Engine::builder()
        .dataset(data.clone())
        .minsup(2)
        .snapshot_dir(dir)
        .build()
        .expect("engine builds")
}

fn fit_select1(engine: &Engine) -> TranslatorModel {
    engine
        .fit(Algorithm::Select(
            SelectConfig::builder().k(1).minsup(2).build(),
        ))
        .join()
        .expect("fit completes")
}

fn assert_bit_identical(a: &TranslatorModel, b: &TranslatorModel) {
    assert_eq!(a.table, b.table);
    assert_eq!(a.score.l_total.to_bits(), b.score.l_total.to_bits());
    assert_eq!(
        a.score.l_correction_left.to_bits(),
        b.score.l_correction_left.to_bits()
    );
    assert_eq!(
        a.score.l_correction_right.to_bits(),
        b.score.l_correction_right.to_bits()
    );
    assert_eq!(a.score.correction_ones, b.score.correction_ones);
}

/// Round-trip identity under every tidset representation: the snapshot
/// stores seed tidsets repr-tagged, so a warm start under any mode
/// reproduces the cold engine exactly — candidates, seeds, model, and
/// the `fit_mine_ms == 0` cache-reuse invariant.
#[test]
fn snapshot_roundtrip_identical_across_tidset_modes() {
    let _guard = lock_globals();
    faults::clear();
    let data = corpus(400, 23);

    for (mode, tag) in [
        (TidsetMode::Adaptive, "adaptive"),
        (TidsetMode::ForceSparse, "sparse"),
        (TidsetMode::ForceDense, "dense"),
        (TidsetMode::ForceRuns, "runs"),
    ] {
        set_tidset_mode(mode);
        let scratch = Scratch::new(&format!("roundtrip-{tag}"));

        let cold = build_with_dir(&data, scratch.path());
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.snapshots_loaded, 0, "{tag}: first build is cold");
        assert_eq!(cold_stats.snapshots_rejected, 0);
        assert!(
            scratch.snap().exists(),
            "{tag}: cold build saved a snapshot"
        );
        let cold_model = fit_select1(&cold);
        let cold_cands = cold.candidates().to_vec();
        drop(cold);

        let warm = build_with_dir(&data, scratch.path());
        let stats = warm.stats();
        assert_eq!(stats.snapshots_loaded, 1, "{tag}: second build warm-starts");
        assert_eq!(stats.snapshots_rejected, 0);
        assert_eq!(stats.build_mine_ms, 0.0, "{tag}: warm start skips mining");
        assert!(stats.seed_cache_warm, "{tag}: snapshot seeds install warm");
        assert_eq!(warm.candidates(), cold_cands.as_slice());

        let warm_model = fit_select1(&warm);
        assert_bit_identical(&warm_model, &cold_model);
        assert_eq!(
            warm.stats().fit_mine_ms,
            0.0,
            "{tag}: warm fits reuse the loaded cache"
        );
    }
    set_tidset_mode(TidsetMode::Adaptive);
}

/// Version skew and truncation at *every* section boundary (and the
/// bytes in between) are rejected; the builder recovers by re-mining
/// and the recovered engine is bit-identical.
#[test]
fn version_skew_and_truncation_rejected_with_fallback() {
    let _guard = lock_globals();
    faults::clear();
    let data = corpus(300, 31);
    let scratch = Scratch::new("skew");

    let cold = build_with_dir(&data, scratch.path());
    let reference = fit_select1(&cold);
    drop(cold);
    let good = std::fs::read(scratch.snap()).unwrap();

    // Version skew: bump the header version in place.
    let mut skewed = good.clone();
    skewed[8..12].copy_from_slice(&2u32.to_le_bytes());
    std::fs::write(scratch.snap(), &skewed).unwrap();
    let err = persist::read_engine_snapshot(&scratch.snap(), &data).unwrap_err();
    assert_eq!(err.kind(), "version_skew");

    let engine = build_with_dir(&data, scratch.path());
    let stats = engine.stats();
    assert_eq!(stats.snapshots_loaded, 0);
    assert_eq!(stats.snapshots_rejected, 1, "skew is counted, not fatal");
    assert_bit_identical(&fit_select1(&engine), &reference);
    drop(engine);

    // Truncation at every section boundary, plus probes inside each
    // payload: never Ok, never a panic.
    let report = persist::inspect(&scratch.snap()).unwrap();
    // (the cold rebuild above healed the file; re-read it)
    let good = std::fs::read(scratch.snap()).unwrap();
    assert!(report.intact());
    let mut cuts: Vec<usize> = vec![0, 8, 12, 16, good.len() - 12, good.len() - 1];
    for s in &report.sections {
        cuts.push(s.offset.saturating_sub(12)); // before the section header
        cuts.push(s.offset); // after tag+len, before payload
        cuts.push(s.offset + s.payload_len / 2); // mid-payload
        cuts.push(s.offset + s.payload_len); // before the section CRC
    }
    for cut in cuts {
        std::fs::write(scratch.snap(), &good[..cut]).unwrap();
        let err = persist::read_engine_snapshot(&scratch.snap(), &data)
            .expect_err("truncated snapshot must never load");
        assert!(
            matches!(
                err.kind(),
                "truncated" | "checksum" | "malformed" | "bad_magic"
            ),
            "cut at {cut}: unexpected rejection {err}"
        );
    }

    // One full build over a truncated file to close the loop: rejected,
    // re-mined, bit-identical, and the snapshot healed for next time.
    std::fs::write(scratch.snap(), &good[..good.len() / 2]).unwrap();
    let engine = build_with_dir(&data, scratch.path());
    assert_eq!(engine.stats().snapshots_rejected, 1);
    assert_bit_identical(&fit_select1(&engine), &reference);
    drop(engine);
    let healed = build_with_dir(&data, scratch.path());
    assert_eq!(healed.stats().snapshots_loaded, 1);
}

/// A snapshot from a *different* dataset (same shape, different
/// content) is rejected by the per-column fingerprints.
#[test]
fn snapshot_from_other_dataset_rejected() {
    let _guard = lock_globals();
    faults::clear();
    let data = corpus(300, 41);
    let other = corpus(300, 42); // same dims, different content
    let scratch = Scratch::new("identity");

    drop(build_with_dir(&other, scratch.path())); // snapshot of `other`
    let err = persist::read_engine_snapshot(&scratch.snap(), &data).unwrap_err();
    assert_eq!(err.kind(), "dataset_mismatch");

    let engine = build_with_dir(&data, scratch.path());
    let stats = engine.stats();
    assert_eq!(stats.snapshots_loaded, 0);
    assert_eq!(stats.snapshots_rejected, 1);
}

/// The chaos drill: seeded torn writes, bit corruption and write
/// failures. Every damaged start falls back to re-mining with a
/// bit-identical model, zero panics, and the following start heals.
#[test]
fn torn_and_corrupt_snapshots_recover_bit_identically() {
    let _guard = lock_globals();
    let seed = chaos_seed();
    let data = corpus(400, 51);

    // Fault-free reference, computed before any fault is configured.
    faults::clear();
    let clean = Engine::builder()
        .dataset(data.clone())
        .minsup(2)
        .build()
        .unwrap();
    let reference = fit_select1(&clean);
    drop(clean);

    for (point, label) in [
        (points::SNAPSHOT_TORN, "torn"),
        (points::SNAPSHOT_CORRUPT, "corrupt"),
    ] {
        let scratch = Scratch::new(&format!("chaos-{label}"));

        // Cold build whose snapshot save is damaged in flight.
        faults::configure(FaultPlan::new().point(point, 1.0, seed));
        let engine = build_with_dir(&data, scratch.path());
        faults::clear();
        assert_bit_identical(&fit_select1(&engine), &reference);
        drop(engine);
        assert!(
            scratch.snap().exists(),
            "{label}: the damaged file still lands at the final path"
        );
        assert!(
            persist::read_engine_snapshot(&scratch.snap(), &data).is_err(),
            "{label}: the damaged snapshot must not load"
        );

        // Next start: rejected, re-mined, bit-identical — and the cold
        // rebuild heals the snapshot.
        let recovered = build_with_dir(&data, scratch.path());
        let stats = recovered.stats();
        assert_eq!(stats.snapshots_loaded, 0, "{label}");
        assert_eq!(stats.snapshots_rejected, 1, "{label}");
        assert_bit_identical(&fit_select1(&recovered), &reference);
        drop(recovered);

        // Third start: warm from the healed snapshot.
        let warm = build_with_dir(&data, scratch.path());
        assert_eq!(warm.stats().snapshots_loaded, 1, "{label}: healed");
        assert_eq!(warm.stats().build_mine_ms, 0.0, "{label}");
        assert_bit_identical(&fit_select1(&warm), &reference);
    }

    // write_fail: the save errors out, the build does not; nothing lands
    // on disk and the engine serves normally.
    let scratch = Scratch::new("chaos-write-fail");
    faults::configure(FaultPlan::new().point(points::SNAPSHOT_WRITE_FAIL, 1.0, seed));
    let engine = build_with_dir(&data, scratch.path());
    faults::clear();
    assert!(!scratch.snap().exists(), "failed save leaves no file");
    assert_bit_identical(&fit_select1(&engine), &reference);
    let err = {
        faults::configure(FaultPlan::new().point(points::SNAPSHOT_WRITE_FAIL, 1.0, seed));
        let e = engine.save_snapshot(scratch.snap()).unwrap_err();
        faults::clear();
        e
    };
    assert!(
        matches!(e_kind(&err), "io"),
        "explicit save surfaces the error"
    );
}

fn e_kind(err: &twoview::Error) -> &'static str {
    match err {
        twoview::Error::Snapshot(s) => s.kind(),
        _ => "not-a-snapshot-error",
    }
}

/// `Engine::load_snapshot` is the strict path: a valid file yields a
/// serving engine with the stored config; any failure surfaces as
/// `Error::Snapshot` instead of silently re-mining.
#[test]
fn explicit_load_snapshot_is_strict() {
    let _guard = lock_globals();
    faults::clear();
    let data = corpus(300, 61);
    let scratch = Scratch::new("strict");

    let cold = build_with_dir(&data, scratch.path());
    let reference = fit_select1(&cold);
    let cands = cold.candidates().to_vec();
    drop(cold);

    let engine = Engine::load_snapshot(scratch.snap(), data.clone()).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.snapshots_loaded, 1);
    assert_eq!(stats.base_minsup, 2);
    assert_eq!(stats.build_mine_ms, 0.0);
    assert_eq!(engine.candidates(), cands.as_slice());
    assert_bit_identical(&fit_select1(&engine), &reference);
    drop(engine);

    // Strictness: a damaged file is an error, not a fallback.
    let mut bytes = std::fs::read(scratch.snap()).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(scratch.snap(), &bytes).unwrap();
    let err = Engine::load_snapshot(scratch.snap(), data.clone()).unwrap_err();
    assert!(
        matches!(err, twoview::Error::Snapshot(_)),
        "strict load surfaces SnapshotError, got {err}"
    );
}

/// Saving while fits are running — and while other saves race to the
/// same path — never corrupts the snapshot: writes are atomic renames,
/// so the final file is always one complete save and warm-starts
/// bit-identically.
#[test]
fn concurrent_save_while_fitting_is_safe() {
    let _guard = lock_globals();
    faults::clear();
    let data = corpus(400, 71);
    let scratch = Scratch::new("concurrent");

    let engine = std::sync::Arc::new(build_with_dir(&data, scratch.path()));
    let reference = fit_select1(&engine);

    let snap = scratch.snap();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let engine = std::sync::Arc::clone(&engine);
            let snap = snap.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    engine.save_snapshot(&snap).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let engine = std::sync::Arc::clone(&engine);
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..3 {
                    let model = engine
                        .fit(Algorithm::Select(
                            SelectConfig::builder().k(1).minsup(2).build(),
                        ))
                        .join()
                        .expect("fit under concurrent saves");
                    assert_eq!(model.table, reference.table);
                }
            });
        }
    });

    // No half-written file can ever be observed: the survivor loads
    // clean and warm-starts bit-identically.
    let report = persist::inspect(&scratch.snap()).unwrap();
    assert!(report.intact(), "racing saves leave an intact snapshot");
    drop(engine);
    let warm = build_with_dir(&data, scratch.path());
    assert_eq!(warm.stats().snapshots_loaded, 1);
    assert_bit_identical(&fit_select1(&warm), &reference);

    // The unique-temp-name discipline leaves no stragglers behind.
    let leftovers: Vec<_> = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n != ENGINE_SNAPSHOT_FILE)
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
}

/// Timing of the spec's headline claim: warm start must be dramatically
/// cheaper than cold start on a corpus where mining is nontrivial.
/// (perfsuite gates the real numbers; this is the functional floor.)
#[test]
fn warm_start_skips_mining_entirely() {
    let _guard = lock_globals();
    faults::clear();
    let data = corpus(600, 81);
    let scratch = Scratch::new("warm-timing");

    let cold = build_with_dir(&data, scratch.path());
    let cold_ms = cold.stats().build_mine_ms;
    assert!(cold_ms > 0.0, "cold build mines");
    drop(cold);

    let warm = build_with_dir(&data, scratch.path());
    assert_eq!(warm.stats().build_mine_ms, 0.0, "warm build skips mining");
    assert_eq!(warm.stats().snapshots_loaded, 1);
}
