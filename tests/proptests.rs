//! Property-based tests over the core invariants of the reproduction.
//!
//! These check, on randomly generated datasets and models:
//! * bitmaps agree with a `HashSet` reference model;
//! * translation is lossless for *any* table;
//! * the incremental cover state always matches a from-scratch rebuild and
//!   the standalone TRANSLATE scheme;
//! * the gain of a rule equals the actual drop in total encoded size;
//! * the miners agree with brute-force enumeration;
//! * the exact search returns the true best rule.

use proptest::prelude::*;
use std::collections::HashSet;

use twoview::core::exact::{best_rule, brute_force_best_rule, ExactConfig};
use twoview::core::select::{translator_select_candidates, SelectConfig};
use twoview::core::{translate, CoverState, RowCoverState};
use twoview::mining::closed::brute_force_closed;
use twoview::mining::eclat::brute_force_frequent;
use twoview::prelude::*;

// ---------------------------------------------------------------- bitmaps

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_matches_hashset_model(
        a in proptest::collection::vec(0usize..200, 0..60),
        b in proptest::collection::vec(0usize..200, 0..60),
    ) {
        let ba = Bitmap::from_indices(200, a.iter().copied());
        let bb = Bitmap::from_indices(200, b.iter().copied());
        let sa: HashSet<usize> = a.iter().copied().collect();
        let sb: HashSet<usize> = b.iter().copied().collect();

        prop_assert_eq!(ba.len(), sa.len());
        let and: HashSet<usize> = sa.intersection(&sb).copied().collect();
        let or: HashSet<usize> = sa.union(&sb).copied().collect();
        let xor: HashSet<usize> = sa.symmetric_difference(&sb).copied().collect();
        let diff: HashSet<usize> = sa.difference(&sb).copied().collect();

        prop_assert_eq!(ba.and(&bb).to_vec(), sorted(&and));
        prop_assert_eq!(ba.or(&bb).to_vec(), sorted(&or));
        prop_assert_eq!(ba.xor(&bb).to_vec(), sorted(&xor));
        prop_assert_eq!(ba.and_not(&bb).to_vec(), sorted(&diff));
        prop_assert_eq!(ba.intersection_len(&bb), and.len());
        prop_assert_eq!(ba.union_len(&bb), or.len());
        prop_assert_eq!(ba.is_subset(&bb), sa.is_subset(&sb));
        prop_assert_eq!(ba.is_disjoint(&bb), sa.is_disjoint(&sb));
    }

    /// Every in-place / non-allocating kernel operation agrees with its
    /// allocating counterpart — the contract the miners and the cover state
    /// rely on after the consolidation onto the `Bitmap` kernel.
    #[test]
    fn bitmap_in_place_ops_match_allocating(
        a in proptest::collection::vec(0usize..200, 0..60),
        b in proptest::collection::vec(0usize..200, 0..60),
        c in proptest::collection::vec(0usize..200, 0..60),
    ) {
        let ba = Bitmap::from_indices(200, a.iter().copied());
        let bb = Bitmap::from_indices(200, b.iter().copied());
        let bc = Bitmap::from_indices(200, c.iter().copied());

        let mut x = ba.clone();
        x.intersect_with(&bb);
        prop_assert_eq!(&x, &ba.and(&bb), "intersect_with");
        let mut x = ba.clone();
        x.union_with(&bb);
        prop_assert_eq!(&x, &ba.or(&bb), "union_with");
        let mut x = ba.clone();
        x.xor_with(&bb);
        prop_assert_eq!(&x, &ba.xor(&bb), "xor_with");
        let mut x = ba.clone();
        x.subtract(&bb);
        prop_assert_eq!(&x, &ba.and_not(&bb), "subtract");

        let mut out = bc.clone(); // stale contents must be overwritten
        ba.and_into(&bb, &mut out);
        prop_assert_eq!(&out, &ba.and(&bb), "and_into");
        let mut copy = Bitmap::new(200);
        copy.copy_from(&ba);
        prop_assert_eq!(&copy, &ba, "copy_from");

        prop_assert_eq!(ba.intersection_len(&bb), ba.and(&bb).len());
        prop_assert_eq!(
            ba.iter_and(&bb).collect::<Vec<_>>(),
            ba.and(&bb).to_vec(),
            "iter_and"
        );
        prop_assert_eq!(
            ba.iter_and_not(&bb).collect::<Vec<_>>(),
            ba.and_not(&bb).to_vec(),
            "iter_and_not"
        );
        prop_assert_eq!(
            ba.and_is_subset(&bb, &bc),
            ba.and(&bb).is_subset(&bc),
            "and_is_subset"
        );

        let weights: Vec<f64> = (0..200).map(|i| (i + 1) as f64).collect();
        let direct: f64 = ba.and_not(&bb).iter().map(|i| weights[i]).sum();
        prop_assert!((ba.difference_weight(&bb, &weights) - direct).abs() < 1e-9);
        let full: f64 = ba.iter().map(|i| weights[i]).sum();
        prop_assert!((ba.weighted_len(&weights) - full).abs() < 1e-9);
    }

    #[test]
    fn itemset_ops_match_sets(
        a in proptest::collection::vec(0u32..30, 0..12),
        b in proptest::collection::vec(0u32..30, 0..12),
    ) {
        let ia = ItemSet::from_items(a.iter().copied());
        let ib = ItemSet::from_items(b.iter().copied());
        let sa: HashSet<u32> = a.iter().copied().collect();
        let sb: HashSet<u32> = b.iter().copied().collect();
        prop_assert_eq!(
            ia.union(&ib).as_slice().to_vec(),
            sorted32(&sa.union(&sb).copied().collect())
        );
        prop_assert_eq!(
            ia.intersect(&ib).as_slice().to_vec(),
            sorted32(&sa.intersection(&sb).copied().collect())
        );
        prop_assert_eq!(ia.is_subset(&ib), sa.is_subset(&sb));
        prop_assert_eq!(ia.is_disjoint(&ib), sa.is_disjoint(&sb));
    }
}

fn sorted(s: &HashSet<usize>) -> Vec<usize> {
    let mut v: Vec<usize> = s.iter().copied().collect();
    v.sort_unstable();
    v
}

fn sorted32(s: &HashSet<u32>) -> Vec<u32> {
    let mut v: Vec<u32> = s.iter().copied().collect();
    v.sort_unstable();
    v
}

// ------------------------------------------------- datasets + rules strategy

/// A random small two-view dataset: 3-5 left items, 3-5 right items,
/// 4-20 transactions with ~40% density.
fn dataset_strategy() -> impl Strategy<Value = TwoViewDataset> {
    (3usize..=5, 3usize..=5, 4usize..=20, 0u64..10_000).prop_map(|(nl, nr, n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = Vocabulary::unnamed(nl, nr);
        let txs: Vec<Vec<ItemId>> = (0..n)
            .map(|_| {
                (0..(nl + nr) as ItemId)
                    .filter(|_| rng.gen_bool(0.4))
                    .collect()
            })
            .collect();
        TwoViewDataset::from_transactions(vocab, &txs)
    })
}

/// Random rules valid for a dataset of the given dimensions (only occurring
/// itemsets are interesting, but validity must hold for any rule).
fn rules_for(data: &TwoViewDataset, seed: u64, k: usize) -> Vec<TranslationRule> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = data.vocab();
    (0..k)
        .filter_map(|_| {
            let nl = rng.gen_range(1..=2.min(vocab.n_left()));
            let nr = rng.gen_range(1..=2.min(vocab.n_right()));
            let left: ItemSet = (0..nl)
                .map(|_| rng.gen_range(0..vocab.n_left()) as ItemId)
                .collect();
            let right: ItemSet = (0..nr)
                .map(|_| (vocab.n_left() + rng.gen_range(0..vocab.n_right())) as ItemId)
                .collect();
            // Only itemsets occurring in the data are eligible (paper: rules
            // must occur); skip others.
            if data.support_count(&left) == 0 || data.support_count(&right) == 0 {
                return None;
            }
            let dir = match rng.gen_range(0..3) {
                0 => Direction::Forward,
                1 => Direction::Backward,
                _ => Direction::Both,
            };
            Some(TranslationRule::new(left, right, dir))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translation_is_always_lossless(
        data in dataset_strategy(),
        seed in 0u64..1_000,
    ) {
        let rules = rules_for(&data, seed, 4);
        let table = TranslationTable::from_rules(rules);
        prop_assert_eq!(translate::check_lossless(&data, &table), None);
    }

    #[test]
    fn cover_state_matches_translate_and_rebuild(
        data in dataset_strategy(),
        seed in 0u64..1_000,
    ) {
        let rules = rules_for(&data, seed, 4);
        let mut state = CoverState::new(&data);
        for r in &rules {
            state.apply_rule(r.clone());
        }
        // Internal consistency.
        prop_assert_eq!(state.verify(1e-6), None);
        // Corrections equal the XOR corrections of standalone TRANSLATE
        // (batched: one direction-restricted pass per side).
        let table = state.table().clone();
        let right_corrections = translate::correction_rows(&data, &table, Side::Left);
        let left_corrections = translate::correction_rows(&data, &table, Side::Right);
        for t in 0..data.n_transactions() {
            prop_assert_eq!(
                state.correction_row(Side::Right, t),
                right_corrections[t].clone()
            );
            prop_assert_eq!(
                state.correction_row(Side::Left, t),
                left_corrections[t].clone()
            );
        }
    }

    #[test]
    fn gain_equals_actual_length_drop(
        data in dataset_strategy(),
        seed in 0u64..1_000,
    ) {
        let rules = rules_for(&data, seed, 5);
        let mut state = CoverState::new(&data);
        for r in rules {
            let predicted = state.rule_gain(&r);
            let before = state.total_length();
            state.apply_rule(r);
            let actual = before - state.total_length();
            prop_assert!(
                (predicted - actual).abs() < 1e-6,
                "predicted {} vs actual {}", predicted, actual
            );
        }
    }

    /// The columnar cover state and the row-major reference implementation
    /// are interchangeable: for any random rule sequence, per-rule gains,
    /// all encoded-length totals, tub columns and reconstructed correction
    /// rows agree, and the columnar invariants hold throughout.
    #[test]
    fn columnar_cover_state_matches_row_reference(
        data in dataset_strategy(),
        seed in 0u64..1_000,
    ) {
        let rules = rules_for(&data, seed, 5);
        let mut col = CoverState::new(&data);
        let mut row = RowCoverState::new(&data);
        prop_assert!((col.total_length() - row.total_length()).abs() < 1e-9);
        for r in &rules {
            let lt = data.support_set(&r.left);
            let rt = data.support_set(&r.right);
            let gc = col.pair_gains(&r.left, &r.right, &lt, &rt);
            let gr = row.pair_gains(&r.left, &r.right, &lt, &rt);
            for (a, b) in gc.iter().zip(gr) {
                prop_assert!((a - b).abs() < 1e-6, "gain {} vs {}", a, b);
            }
            col.apply_rule(r.clone());
            row.apply_rule(r.clone());
            prop_assert!((col.total_length() - row.total_length()).abs() < 1e-6);
            for side in Side::BOTH {
                prop_assert!(
                    (col.l_correction(side) - row.l_correction(side)).abs() < 1e-6
                );
                prop_assert_eq!(col.n_uncovered(side), row.n_uncovered(side));
                prop_assert_eq!(col.n_errors(side), row.n_errors(side));
            }
        }
        // verify() also cross-checks tub columns and correction rows
        // against a RowCoverState rebuilt from the same table.
        prop_assert_eq!(col.verify(1e-6), None);
    }

    /// SELECT is model-identical across refresh thread counts and with the
    /// rub round-pruning on or off.
    #[test]
    fn select_identical_across_threads_and_rub(data in dataset_strategy(), k in 1usize..4) {
        let mined = twoview::mining::mine_closed_twoview(
            &data,
            &MinerConfig::builder().minsup(1).build(),
        );
        let base = translator_select_candidates(
            &data,
            &SelectConfig { n_threads: Some(1), ..SelectConfig::builder().k(k).minsup(1).build() },
            &mined.candidates,
        );
        for cfg in [
            SelectConfig { n_threads: Some(4), ..SelectConfig::builder().k(k).minsup(1).build() },
            SelectConfig { use_rub: false, n_threads: Some(1), ..SelectConfig::builder().k(k).minsup(1).build() },
            // Gate off => the rub-prune branch really runs on this tiny data.
            SelectConfig { rub_cost_gate: false, n_threads: Some(1), ..SelectConfig::builder().k(k).minsup(1).build() },
            SelectConfig { rub_cost_gate: false, n_threads: Some(4), ..SelectConfig::builder().k(k).minsup(1).build() },
            SelectConfig { use_rub: false, gain_cache: false, ..SelectConfig::builder().k(k).minsup(1).build() },
        ] {
            let other = translator_select_candidates(&data, &cfg, &mined.candidates);
            prop_assert_eq!(&base.table, &other.table);
            prop_assert!((base.score.l_total - other.score.l_total).abs() < 1e-9);
        }
    }

    #[test]
    fn miners_match_brute_force(data in dataset_strategy(), minsup in 1usize..4) {
        let cfg = MinerConfig::builder().minsup(minsup).build();
        let fast = twoview::mining::mine_frequent(&data, &cfg);
        let slow = brute_force_frequent(&data, &cfg);
        prop_assert_eq!(canon(&fast.itemsets), canon(&slow));

        let fast_closed = twoview::mining::mine_closed(&data, &cfg);
        let slow_closed = brute_force_closed(&data, &cfg);
        prop_assert_eq!(canon(&fast_closed.itemsets), canon(&slow_closed));
    }

    #[test]
    fn exact_search_is_optimal(data in dataset_strategy()) {
        let state = CoverState::new(&data);
        let cfg = ExactConfig { candidate_seed_minsup: None, ..ExactConfig::default() };
        let fast = best_rule(&state, &cfg);
        let slow = brute_force_best_rule(&state);
        match (fast.best, slow) {
            (Some((_, fg)), Some((_, sg))) => prop_assert!((fg - sg).abs() < 1e-9),
            (None, None) => {}
            (f, s) => prop_assert!(false, "disagreement: {:?} vs {:?}", f, s),
        }
    }

    #[test]
    fn model_scores_are_internally_consistent(
        data in dataset_strategy(),
        seed in 0u64..1_000,
    ) {
        let rules = rules_for(&data, seed, 3);
        let table = TranslationTable::from_rules(rules);
        let score = evaluate_table(&data, &table);
        prop_assert!(
            (score.l_total - (score.l_table + score.l_correction_left + score.l_correction_right))
                .abs() < 1e-6
        );
        prop_assert!(score.correction_ones <= score.total_cells);
        // Empty table scores exactly 100%.
        let empty = evaluate_table(&data, &TranslationTable::new());
        if empty.l_empty > 0.0 {
            prop_assert!((empty.compression_pct() - 100.0).abs() < 1e-9);
        }
    }
}

fn canon(v: &[twoview::mining::FrequentItemset]) -> Vec<(Vec<ItemId>, usize)> {
    let mut out: Vec<(Vec<ItemId>, usize)> = v
        .iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    out.sort();
    out
}

// ------------------------------------------- runtime thread determinism

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SELECT, GREEDY, EXACT, and the eclat/closed miners all produce
    /// bit-identical output across thread counts {1, 2, max} through the
    /// persistent pool, and SELECT additionally across the pool vs the
    /// legacy `std::thread::scope` refresh path.
    #[test]
    fn algorithms_identical_across_thread_counts(
        data in dataset_strategy(),
        k in 1usize..3,
    ) {
        use twoview::core::exact::translator_exact_with;
        use twoview::core::greedy::{translator_greedy, GreedyConfig};
        use twoview::core::select::translator_select;
        let max_t = twoview::runtime::configured_threads().max(4);
        let thread_counts = [1usize, 2, max_t];

        // Miners: itemset lists must match exactly, order included.
        let mcfg = |t: usize| MinerConfig {
            n_threads: Some(t),
            ..MinerConfig::builder().minsup(1).build()
        };
        let base_freq = twoview::mining::mine_frequent(&data, &mcfg(1));
        let base_closed = twoview::mining::mine_closed(&data, &mcfg(1));
        for &t in &thread_counts[1..] {
            let freq = twoview::mining::mine_frequent(&data, &mcfg(t));
            prop_assert_eq!(&freq.itemsets, &base_freq.itemsets, "eclat, {} threads", t);
            let closed = twoview::mining::mine_closed(&data, &mcfg(t));
            prop_assert_eq!(&closed.itemsets, &base_closed.itemsets, "closed, {} threads", t);
        }

        // SELECT: serial vs pool vs legacy scoped refresh.
        let select_base = translator_select(
            &data,
            &SelectConfig { n_threads: Some(1), ..SelectConfig::builder().k(k).minsup(1).build() },
        );
        for &t in &thread_counts[1..] {
            for legacy_scope in [false, true] {
                let model = translator_select(
                    &data,
                    &SelectConfig {
                        n_threads: Some(t),
                        legacy_scope,
                        ..SelectConfig::builder().k(k).minsup(1).build()
                    },
                );
                prop_assert_eq!(
                    &model.table, &select_base.table,
                    "SELECT, {} threads, legacy_scope={}", t, legacy_scope
                );
                prop_assert!((model.score.l_total - select_base.score.l_total).abs() < 1e-9);
            }
        }

        // GREEDY: threaded candidate mining feeds the sequential filter.
        let greedy_base = translator_greedy(
            &data,
            &GreedyConfig { n_threads: Some(1), ..GreedyConfig::builder().minsup(1).build() },
        );
        for &t in &thread_counts[1..] {
            let model = translator_greedy(
                &data,
                &GreedyConfig { n_threads: Some(t), ..GreedyConfig::builder().minsup(1).build() },
            );
            prop_assert_eq!(&model.table, &greedy_base.table, "GREEDY, {} threads", t);
        }

        // EXACT: uncapped parallel root fan-out (shared-bound pruning)
        // must return the same rules, tie-breaking included.
        let exact_base = translator_exact_with(
            &data,
            &ExactConfig { n_threads: Some(1), ..ExactConfig::default() },
        );
        for &t in &thread_counts[1..] {
            let model = translator_exact_with(
                &data,
                &ExactConfig { n_threads: Some(t), ..ExactConfig::default() },
            );
            prop_assert_eq!(&model.table, &exact_base.table, "EXACT, {} threads", t);
            prop_assert!((model.score.l_total - exact_base.score.l_total).abs() < 1e-9);
        }
    }
}
