//! Chaos suite: the serving substrate under deterministic injected
//! faults (`twoview_runtime::faults`).
//!
//! The properties proved here, per the robustness contract:
//!
//! * **no hangs** — every submitted handle resolves within a generous
//!   wall-clock bound, whatever faults fire;
//! * **the queue drains** — after the storm, a clean job still runs;
//! * **bit-identical recovery** — any fit that ultimately succeeds
//!   (after retries, executor deaths, degraded caches) equals the
//!   fault-free model byte for byte;
//! * **supervision** — executors killed at dispatch are respawned and
//!   counted.
//!
//! The fault registry is process-global, so every test serialises on
//! one mutex and clears the registry before returning. Seeds come from
//! `TWOVIEW_CHAOS_SEED` (default 1); CI runs the suite under two fixed
//! seeds plus a faults-off pass.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use twoview::data::synthetic::{self, StructureSpec, SyntheticSpec};
use twoview::prelude::*;
use twoview::runtime::faults::{self, points, FaultPlan};
use twoview::runtime::JobQueue;

static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock_faults() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn chaos_seed() -> u64 {
    std::env::var("TWOVIEW_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

fn corpus(n: usize, seed: u64) -> TwoViewDataset {
    let spec = SyntheticSpec {
        name: format!("engine-chaos-{seed}"),
        n_transactions: n,
        n_left: 12,
        n_right: 10,
        density_left: 0.3,
        density_right: 0.3,
        structure: StructureSpec::strong(3),
        seed,
    };
    synthetic::generate(&spec).expect("valid spec").dataset
}

const JOIN_BOUND: Duration = Duration::from_secs(120);

/// The headline chaos property: N concurrent mixed-priority fits under
/// a seeded random `FaultPlan` — checkpoint panics, executor deaths, a
/// failed cache warm — with retries enabled. Every handle resolves,
/// every successful fit is bit-identical to the fault-free model, and
/// the queue drains clean afterwards.
#[test]
fn concurrent_fits_under_fault_plan_no_hangs_and_bit_identical() {
    let _guard = lock_faults();
    let seed = chaos_seed();
    let d = corpus(400, 11);

    // Fault-free references, computed before any fault is configured.
    faults::clear();
    let clean = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .build()
        .unwrap();
    let cands = clean.candidates().to_vec();
    assert!(!cands.is_empty());
    drop(clean);
    let select_cfgs: Vec<SelectConfig> = (1..=3)
        .map(|k| SelectConfig::builder().k(k).minsup(2).build())
        .collect();
    let greedy_cfg = GreedyConfig::builder().minsup(2).build();
    let select_refs: Vec<TranslatorModel> = select_cfgs
        .iter()
        .map(|cfg| twoview::core::select::translator_select_candidates(&d, cfg, &cands))
        .collect();
    let greedy_ref = twoview::core::greedy::translator_greedy_candidates(&d, &greedy_cfg, &cands);

    // The storm: low-probability checkpoint panics and executor deaths,
    // plus a warm that always fails (every base-minsup SELECT fit runs
    // degraded) and occasionally-failing construction mining.
    faults::configure(
        FaultPlan::new()
            .point(points::MINE_PANIC, 0.2, seed)
            .point(points::CACHE_WARM_FAIL, 1.0, seed)
            .point(points::SELECT_CHECKPOINT_PANIC, 0.01, seed.wrapping_add(1))
            .point(points::GREEDY_CHECKPOINT_PANIC, 0.01, seed.wrapping_add(2))
            .point(points::EXECUTOR_DIE, 0.02, seed.wrapping_add(3)),
    );

    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .job_executors(3)
        .retry_policy(RetryPolicy::new(8, Duration::from_millis(1)))
        .build()
        .expect("build must survive transient mine faults via retry");

    // 12 mixed-priority fits: 3 rounds of (SELECT k=1..3, GREEDY).
    let jobs: Vec<(usize, JobHandle<TranslatorModel>)> = (0..12)
        .map(|i| {
            let which = i % 4;
            let priority = if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let alg = if which < 3 {
                Algorithm::Select(select_cfgs[which].clone())
            } else {
                Algorithm::Greedy(greedy_cfg.clone())
            };
            (which, engine.fit_with(alg, priority))
        })
        .collect();

    let start = Instant::now();
    let mut ok = 0usize;
    let mut exhausted = 0usize;
    for (which, handle) in jobs {
        let result = handle
            .join_timeout(JOIN_BOUND)
            .unwrap_or_else(|_| panic!("handle hung past {JOIN_BOUND:?}"));
        match result {
            Ok(model) => {
                ok += 1;
                let reference = if which < 3 {
                    &select_refs[which]
                } else {
                    &greedy_ref
                };
                assert_eq!(
                    model.table, reference.table,
                    "fit {which} survived faults but differs from the clean model"
                );
                assert!((model.score.l_total - reference.score.l_total).abs() < 1e-9);
            }
            // Retries exhausted on a persistently-unlucky draw sequence:
            // an acceptable *reported* failure, never a wrong model.
            Err(JobError::Panicked(msg)) => {
                exhausted += 1;
                assert!(
                    msg.contains("injected fault"),
                    "only injected faults may fail a chaos fit: {msg}"
                );
            }
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(
        start.elapsed() < JOIN_BOUND,
        "joins must resolve well under the bound"
    );
    assert!(ok > 0, "at least one fit must survive the storm");

    let stats = engine.stats();
    assert!(!stats.seed_cache_warm, "warm was injected to fail");
    assert!(
        stats.fits_degraded >= 1,
        "base-minsup SELECT fits must have taken the degraded path"
    );
    let fired: u64 = faults::snapshot().iter().map(|(_, _, f)| f).sum();
    assert!(fired > 0, "the plan must actually have fired");

    // Queue drains clean: faults off, one more fit, bit-identical.
    faults::clear();
    let model = engine
        .fit(Algorithm::Select(select_cfgs[0].clone()))
        .join_timeout(JOIN_BOUND)
        .expect("clean fit resolves")
        .expect("clean fit succeeds");
    assert_eq!(model.table, select_refs[0].table);
    println!(
        "chaos seed {seed}: {ok} ok, {exhausted} retry-exhausted, \
         {} retried, {} degraded, {} respawned",
        stats.jobs_retried, stats.fits_degraded, stats.executors_respawned
    );
}

/// Supervision: executors killed at dispatch (fault `executor.die`) are
/// respawned, the requeued jobs all complete, and nothing hangs.
#[test]
fn executor_death_respawns_and_jobs_complete() {
    let _guard = lock_faults();
    let seed = chaos_seed();
    faults::configure(FaultPlan::new().point(points::EXECUTOR_DIE, 0.5, seed));
    let q = JobQueue::new(2);
    let handles: Vec<_> = (0..30)
        .map(|i| q.submit(Priority::Batch, move |_ctx| Ok(i)))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let got = h
            .join_timeout(JOIN_BOUND)
            .unwrap_or_else(|_| panic!("job {i} hung"))
            .unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        assert_eq!(got, i);
    }
    let stats = q.stats();
    assert!(
        stats.executors_respawned >= 1,
        "p=0.5 over 30 dispatches: at least one executor death expected, got {stats:?}"
    );
    faults::clear();
}

/// Graceful degradation: a failed seed-cache warm must not fail the
/// engine or any fit — base-minsup SELECT runs the uncached recompute
/// path and the model stays bit-identical.
#[test]
fn failed_cache_warm_degrades_without_changing_the_model() {
    let _guard = lock_faults();
    let d = corpus(300, 7);
    faults::clear();
    let clean = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .build()
        .unwrap();
    let cfg = SelectConfig::builder().k(1).minsup(2).build();
    let reference = clean.fit(Algorithm::Select(cfg.clone())).join().unwrap();
    assert!(clean.stats().seed_cache_warm);
    drop(clean);

    faults::configure(FaultPlan::new().point(points::CACHE_WARM_FAIL, 1.0, 0));
    let degraded = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .build()
        .unwrap();
    let model = degraded.fit(Algorithm::Select(cfg)).join().unwrap();
    assert_eq!(model.table, reference.table);
    assert!((model.score.l_total - reference.score.l_total).abs() < 1e-12);
    let stats = degraded.stats();
    assert!(!stats.seed_cache_warm);
    assert_eq!(stats.fits_degraded, 1);
    assert_eq!(stats.fit_mine_ms, 0.0, "degradation is not re-mining");
    faults::clear();
}

/// Construction-time mining is retried like any transient failure: find
/// a seed whose deterministic draw sequence is fail-then-succeed and
/// require the build to recover; with retries disabled the same seed
/// must surface the injected panic as an error.
#[test]
fn transient_mine_fault_retried_during_build() {
    let _guard = lock_faults();
    let d = corpus(120, 3);
    // Probe the real draw sequence for `mine.panic` at p=0.5 per seed
    // (the harness is deterministic, so this is a pure computation).
    let seed = (0..256)
        .find(|&s| {
            faults::configure(FaultPlan::new().point(points::MINE_PANIC, 0.5, s));
            let first = faults::should_fire(points::MINE_PANIC);
            let second = faults::should_fire(points::MINE_PANIC);
            first && !second
        })
        .expect("some seed draws fire-then-pass");

    faults::configure(FaultPlan::new().point(points::MINE_PANIC, 0.5, seed));
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .retry_policy(RetryPolicy::new(2, Duration::from_millis(1)))
        .build()
        .expect("attempt 2 must succeed");
    assert!(!engine.candidates().is_empty());
    drop(engine);

    faults::configure(FaultPlan::new().point(points::MINE_PANIC, 0.5, seed));
    let err = Engine::builder()
        .dataset(d)
        .minsup(2)
        .build()
        .expect_err("no retries: the injected mine panic must surface");
    assert!(err.to_string().contains("injected fault"), "got: {err}");
    faults::clear();
}

/// The Drop audit, end-to-end: dropping an engine with queued and
/// in-flight fits neither hangs the drop nor any outstanding handle —
/// in-flight jobs wind down via cancellation at their next checkpoint.
#[test]
fn dropping_engine_with_inflight_fits_never_hangs() {
    let _guard = lock_faults();
    faults::clear();
    let d = corpus(600, 5);
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .job_executors(1)
        .build()
        .unwrap();
    let cands = engine.candidates().to_vec();
    let cfg = SelectConfig::builder().k(2).minsup(2).build();
    let handles: Vec<_> = (0..4)
        .map(|_| engine.fit(Algorithm::Select(cfg.clone())))
        .collect();
    handles[0].wait_started();
    let drop_started = Instant::now();
    drop(engine);
    assert!(
        drop_started.elapsed() < Duration::from_secs(30),
        "drop must cancel in-flight work, not await natural completion"
    );
    let reference = twoview::core::select::translator_select_candidates(&d, &cfg, &cands);
    for (i, h) in handles.into_iter().enumerate() {
        match h
            .join_timeout(JOIN_BOUND)
            .unwrap_or_else(|_| panic!("handle {i} hung after engine drop"))
        {
            // The running fit may have raced past its last checkpoint.
            Ok(model) => assert_eq!(model.table, reference.table),
            Err(JobError::Cancelled) => {}
            Err(other) => panic!("handle {i}: unexpected {other:?}"),
        }
    }
}
