//! Integration tests for the baseline methods on corpus data, including
//! the comparative claims the paper's Table 3 rests on.

use twoview::baselines::{
    krimp, magnum_opus_rules, mine_association_rules, reremi_redescriptions, AssocConfig,
    KrimpConfig, MagnumConfig, ReremiConfig,
};
use twoview::data::corpus::PaperDataset;
use twoview::eval::avg_max_confidence;
use twoview::prelude::*;

fn wine() -> TwoViewDataset {
    PaperDataset::Wine.generate().dataset
}

#[test]
fn association_rules_explode_relative_to_translator() {
    let data = wine();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    let assoc = mine_association_rules(&data, &AssocConfig::new(2, 0.5));
    assert!(
        assoc.total_rules > 10 * model.table.len(),
        "AR {} vs |T| {}",
        assoc.total_rules,
        model.table.len()
    );
}

#[test]
fn magnum_rules_are_individually_strong_but_less_compressive() {
    let data = wine();
    let magnum = magnum_opus_rules(&data, &MagnumConfig::default());
    assert!(!magnum.rules.is_empty());
    let table = magnum.to_translation_table();
    // High average confidence (the paper: "MAGNUM OPUS achieves good
    // average c+").
    assert!(avg_max_confidence(&data, &table) > 0.5);
    // But compression is worse than TRANSLATOR's.
    let translator = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    let magnum_score = evaluate_table(&data, &table);
    assert!(magnum_score.compression_pct() > translator.compression_pct());
}

#[test]
fn reremi_rules_are_bidirectional_and_accurate() {
    let data = wine();
    let res = reremi_redescriptions(&data, &ReremiConfig::default());
    assert!(!res.redescriptions.is_empty());
    for r in &res.redescriptions {
        assert!(r.jaccard >= 0.2);
        let tl = data.support_set(&r.left);
        let tr = data.support_set(&r.right);
        assert!((r.jaccard - tl.jaccard(&tr)).abs() < 1e-12);
    }
    // All converted rules are bidirectional; the conversion preserves count.
    let table = res.to_translation_table();
    assert_eq!(table.len(), res.redescriptions.len());
    assert_eq!(table.n_bidirectional(), table.len());
}

#[test]
fn krimp_compresses_its_own_objective_but_not_translation() {
    let data = PaperDataset::Wine.generate_scaled(150).dataset;
    let km = krimp(&data, &KrimpConfig::new(2));
    // KRIMP improves over the singleton-only code table on its own score...
    assert!(km.l_total < km.l_baseline);
    // ...but as a translation table it is far from TRANSLATOR (the paper's
    // central comparison).
    let translator = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    let km_table = km.to_translation_table(data.vocab());
    let km_score = evaluate_table(&data, &km_table);
    assert!(
        km_score.compression_pct() > translator.compression_pct(),
        "krimp {} vs translator {}",
        km_score.compression_pct(),
        translator.compression_pct()
    );
}

#[test]
fn krimp_usage_accounting_is_exact() {
    let data = PaperDataset::Wine.generate_scaled(120).dataset;
    let km = krimp(&data, &KrimpConfig::new(2));
    // Recompute covers from scratch with the final code table and compare
    // usage counts.
    let mut expected: std::collections::HashMap<ItemSet, usize> =
        km.entries.iter().map(|e| (e.items.clone(), 0)).collect();
    let order: Vec<&twoview::baselines::krimp::CodeTableEntry> = km.entries.iter().collect();
    for t in 0..data.n_transactions() {
        let mut remaining = data.transaction_items(t);
        for e in &order {
            if e.items.is_subset(&remaining) {
                *expected.get_mut(&e.items).unwrap() += 1;
                remaining = ItemSet::from_items(remaining.iter().filter(|i| !e.items.contains(*i)));
                if remaining.is_empty() {
                    break;
                }
            }
        }
        assert!(remaining.is_empty(), "cover incomplete at t={t}");
    }
    for e in &km.entries {
        assert_eq!(
            expected[&e.items], e.usage,
            "usage mismatch for {:?}",
            e.items
        );
    }
}

#[test]
fn magnum_bidirectional_merging_on_symmetric_data() {
    // Construct data where the association is perfectly symmetric: the
    // merged output must contain a Both-direction rule.
    let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
    let mut txs = Vec::new();
    for i in 0..60 {
        if i % 2 == 0 {
            txs.push(vec![0, 2]);
        } else {
            txs.push(vec![1, 3]);
        }
    }
    let data = TwoViewDataset::from_transactions(vocab, &txs);
    let res = magnum_opus_rules(&data, &MagnumConfig::default());
    assert!(res.rules.iter().any(|r| r.direction == Direction::Both));
}

#[test]
fn baselines_run_on_every_scaled_corpus_dataset() {
    for ds in [
        PaperDataset::House,
        PaperDataset::Yeast,
        PaperDataset::Tictactoe,
    ] {
        let data = ds.generate_scaled(150).dataset;
        let magnum = magnum_opus_rules(&data, &MagnumConfig::default());
        let reremi = reremi_redescriptions(&data, &ReremiConfig::default());
        let km = krimp(&data, &KrimpConfig::new(3));
        // Conversions must produce scoreable tables.
        for table in [
            magnum.to_translation_table(),
            reremi.to_translation_table(),
            km.to_translation_table(data.vocab()),
        ] {
            let score = evaluate_table(&data, &table);
            assert!(score.l_total.is_finite(), "{}: non-finite score", ds.name());
        }
    }
}
