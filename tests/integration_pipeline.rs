//! End-to-end integration tests: corpus generation → mining → TRANSLATOR
//! fitting → scoring, across crate boundaries.

use twoview::core::translate;
use twoview::data::corpus::PaperDataset;
use twoview::prelude::*;

fn wine() -> TwoViewDataset {
    PaperDataset::Wine.generate().dataset
}

#[test]
fn select_fits_wine_and_is_lossless() {
    let data = wine();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    assert!(model.table.len() > 5, "Wine has plenty of structure");
    assert!(model.compression_pct() < 90.0);
    assert_eq!(translate::check_lossless(&data, &model.table), None);
    // Score decomposition holds.
    let s = &model.score;
    assert!((s.l_total - (s.l_table + s.l_correction_left + s.l_correction_right)).abs() < 1e-6);
}

#[test]
fn greedy_and_select_agree_on_score_accounting() {
    let data = wine();
    for model in [
        translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build()),
        translator_greedy(&data, &GreedyConfig::builder().minsup(2).build()),
    ] {
        // Re-evaluating the fitted table from scratch gives the same score.
        let fresh = evaluate_table(&data, &model.table);
        assert!(
            (fresh.l_total - model.score.l_total).abs() < 1e-6,
            "incremental vs fresh: {} vs {}",
            model.score.l_total,
            fresh.l_total
        );
        assert_eq!(fresh.correction_ones, model.score.correction_ones);
    }
}

#[test]
fn fitting_is_deterministic_across_runs() {
    let data = wine();
    let a = translator_select(&data, &SelectConfig::builder().k(25).minsup(2).build());
    let b = translator_select(&data, &SelectConfig::builder().k(25).minsup(2).build());
    assert_eq!(a.table, b.table);
    let a = translator_greedy(&data, &GreedyConfig::builder().minsup(2).build());
    let b = translator_greedy(&data, &GreedyConfig::builder().minsup(2).build());
    assert_eq!(a.table, b.table);
}

#[test]
fn every_fitted_rule_occurs_in_the_data() {
    // The paper's search space only contains rules whose joint itemset
    // occurs at least once.
    let data = wine();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    for rule in model.table.iter() {
        let joint = rule.left.union(&rule.right);
        assert!(
            data.support_count(&joint) >= 1,
            "rule {:?} never occurs",
            rule
        );
    }
}

#[test]
fn trace_reconstructs_final_score() {
    let data = wine();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    let last = model.trace.last().expect("non-empty trace");
    assert!((last.l_total - model.score.l_total).abs() < 1e-6);
    assert_eq!(model.trace.len(), model.table.len());
    // Gains recorded in the trace sum to the total compression achieved.
    let gain_sum: f64 = model.trace.iter().map(|s| s.gain).sum();
    assert!(
        (gain_sum - (model.score.l_empty - model.score.l_total)).abs() < 1e-6,
        "gains {} vs drop {}",
        gain_sum,
        model.score.l_empty - model.score.l_total
    );
}

#[test]
fn exact_capped_never_loses_to_select1() {
    // With candidate seeding, a node-capped EXACT picks at least the
    // SELECT(1)-best rule every iteration.
    let data = PaperDataset::Wine.generate_scaled(120).dataset;
    let exact = translator_exact_with(
        &data,
        &ExactConfig {
            max_nodes: Some(50_000),
            ..ExactConfig::default()
        },
    );
    let select = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    assert!(
        exact.compression_pct() <= select.compression_pct() + 1e-6,
        "exact {} vs select {}",
        exact.compression_pct(),
        select.compression_pct()
    );
}

#[test]
fn io_roundtrip_preserves_fitting_results() {
    let data = PaperDataset::House.generate_scaled(150).dataset;
    let mut buf = Vec::new();
    twoview::data::io::write_dataset(&data, &mut buf).unwrap();
    let reloaded = twoview::data::io::read_dataset(&buf[..]).unwrap();
    let a = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    let b = translator_select(&reloaded, &SelectConfig::builder().k(1).minsup(2).build());
    assert_eq!(a.table, b.table);
    assert!((a.score.l_total - b.score.l_total).abs() < 1e-9);
}

#[test]
fn larger_k_is_never_dramatically_worse() {
    // SELECT(k) trades optimality for speed; the paper reports nearly
    // identical compression for k=1 vs k=25.
    let data = wine();
    let k1 = translator_select(&data, &SelectConfig::builder().k(1).minsup(2).build());
    let k25 = translator_select(&data, &SelectConfig::builder().k(25).minsup(2).build());
    assert!(
        (k25.compression_pct() - k1.compression_pct()).abs() < 5.0,
        "k=1: {}, k=25: {}",
        k1.compression_pct(),
        k25.compression_pct()
    );
}

#[test]
fn all_corpus_datasets_generate_and_fit_scaled() {
    for ds in PaperDataset::ALL {
        let data = ds.generate_scaled(200).dataset;
        assert_eq!(data.name(), ds.name());
        let minsup = ds.minsup_for(data.n_transactions()).max(2);
        let model = translator_greedy(&data, &GreedyConfig::builder().minsup(minsup).build());
        assert!(
            model.compression_pct() <= 100.0 + 1e-9,
            "{}: GREEDY inflated to {}",
            ds.name(),
            model.compression_pct()
        );
        assert_eq!(
            translate::check_lossless(&data, &model.table),
            None,
            "{}: lossy translation",
            ds.name()
        );
    }
}
