//! Integration tests for the `twoview` command-line interface, driving the
//! real binary end-to-end: generate → stats → fit → score → translate.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_twoview"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("twoview-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_cli_pipeline() {
    let data_path = tmp("wine.2v");
    let rules_path = tmp("wine.rules");

    // generate
    let out = bin()
        .args([
            "generate",
            "wine",
            "--rows",
            "178",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("178 transactions"), "{stdout}");

    // stats
    let out = bin()
        .args(["stats", data_path.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|D|"), "{stdout}");
    assert!(stdout.contains("35, 33"), "{stdout}");

    // fit
    let out = bin()
        .args([
            "fit",
            data_path.to_str().unwrap(),
            "--minsup",
            "2",
            "--out",
            rules_path.to_str().unwrap(),
        ])
        .output()
        .expect("run fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fitted"), "{stdout}");

    // score
    let out = bin()
        .args([
            "score",
            data_path.to_str().unwrap(),
            rules_path.to_str().unwrap(),
        ])
        .output()
        .expect("run score");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("L%"), "{stdout}");

    // translate
    let out = bin()
        .args([
            "translate",
            data_path.to_str().unwrap(),
            rules_path.to_str().unwrap(),
            "--limit",
            "2",
        ])
        .output()
        .expect("run translate");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("precision"), "{stdout}");

    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&rules_path);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn unknown_dataset_fails() {
    let out = bin()
        .args(["generate", "nonexistent"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn greedy_and_exact_methods_work() {
    let data_path = tmp("tiny.2v");
    let out = bin()
        .args([
            "generate",
            "wine",
            "--rows",
            "60",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());
    for method in ["greedy", "select"] {
        let out = bin()
            .args([
                "fit",
                data_path.to_str().unwrap(),
                "--method",
                method,
                "--minsup",
                "2",
            ])
            .output()
            .expect("fit");
        assert!(
            out.status.success(),
            "{method}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&data_path);
}
