//! The README / `lib.rs` quickstart, pinned as an integration test: the
//! weather ↔ activities toy dataset must compress below 100% under
//! TRANSLATOR-SELECT(1), and the selected rules must describe the planted
//! cross-view association.

use twoview::prelude::*;

fn weather_activities() -> TwoViewDataset {
    let vocab = Vocabulary::new(
        ["rainy", "sunny", "windy"],
        ["umbrella", "sunglasses", "kite"],
    );
    TwoViewDataset::from_transactions(
        vocab,
        &[
            vec![0, 3], // rainy -> umbrella
            vec![0, 3],
            vec![0, 2, 3, 5], // rainy+windy -> umbrella+kite
            vec![1, 4],       // sunny -> sunglasses
            vec![1, 4],
            vec![1, 2, 4, 5],
        ],
    )
}

#[test]
fn quickstart_select_compresses_below_100pct() {
    let data = weather_activities();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    assert!(
        model.compression_pct() < 100.0,
        "expected compression, got L% = {}",
        model.compression_pct()
    );
    assert!(
        !model.table.is_empty(),
        "compression below 100% requires at least one selected rule"
    );
    // The rules must actually translate: re-evaluating the selected table
    // from scratch reproduces the model's own score.
    let score = evaluate_table(&data, &model.table);
    assert!((score.compression_pct() - model.compression_pct()).abs() < 1e-9);
}

#[test]
fn quickstart_engine_session_matches_free_function() {
    // The lib.rs / README quickstart, pinned: an Engine session serves the
    // same model as the one-shot free function, plus translation queries.
    let data = weather_activities();
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(1)
        .build()
        .expect("engine build");
    let model = engine
        .fit(Algorithm::Select(SelectConfig::builder().k(1).build()))
        .join()
        .expect("fit job");
    let direct = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    assert_eq!(model.table, direct.table);
    assert!(model.compression_pct() < 100.0);

    let translated = engine
        .translate(model.table.clone(), Side::Left)
        .join()
        .expect("translate job");
    assert_eq!(translated.len(), engine.dataset().n_transactions());
    assert_eq!(engine.stats().fit_mine_ms, 0.0, "fit must reuse the cache");
}

#[test]
fn quickstart_rules_display_with_item_names() {
    let data = weather_activities();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    for rule in model.table.iter() {
        let rendered = format!("{}", rule.display(data.vocab()));
        assert!(
            rendered.contains('{') && rendered.contains('}'),
            "rule rendering looks wrong: {rendered}"
        );
    }
}

#[test]
fn quickstart_greedy_and_exact_also_compress() {
    let data = weather_activities();
    let greedy = translator_greedy(&data, &GreedyConfig::builder().minsup(1).build());
    assert!(greedy.compression_pct() <= 100.0);
    let exact = translator_exact(&data);
    assert!(exact.compression_pct() <= 100.0);
    // EXACT is per-iteration optimal: it can never end up worse than the
    // candidate-restricted SELECT on the same data.
    let select = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
    assert!(exact.compression_pct() <= select.compression_pct() + 1e-9);
}
