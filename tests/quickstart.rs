//! The README / `lib.rs` quickstart, pinned as an integration test: the
//! weather ↔ activities toy dataset must compress below 100% under
//! TRANSLATOR-SELECT(1), and the selected rules must describe the planted
//! cross-view association.

use twoview::prelude::*;

fn weather_activities() -> TwoViewDataset {
    let vocab = Vocabulary::new(
        ["rainy", "sunny", "windy"],
        ["umbrella", "sunglasses", "kite"],
    );
    TwoViewDataset::from_transactions(
        vocab,
        &[
            vec![0, 3], // rainy -> umbrella
            vec![0, 3],
            vec![0, 2, 3, 5], // rainy+windy -> umbrella+kite
            vec![1, 4],       // sunny -> sunglasses
            vec![1, 4],
            vec![1, 2, 4, 5],
        ],
    )
}

#[test]
fn quickstart_select_compresses_below_100pct() {
    let data = weather_activities();
    let model = translator_select(&data, &SelectConfig::new(1, 1));
    assert!(
        model.compression_pct() < 100.0,
        "expected compression, got L% = {}",
        model.compression_pct()
    );
    assert!(
        !model.table.is_empty(),
        "compression below 100% requires at least one selected rule"
    );
    // The rules must actually translate: re-evaluating the selected table
    // from scratch reproduces the model's own score.
    let score = evaluate_table(&data, &model.table);
    assert!((score.compression_pct() - model.compression_pct()).abs() < 1e-9);
}

#[test]
fn quickstart_rules_display_with_item_names() {
    let data = weather_activities();
    let model = translator_select(&data, &SelectConfig::new(1, 1));
    for rule in model.table.iter() {
        let rendered = format!("{}", rule.display(data.vocab()));
        assert!(
            rendered.contains('{') && rendered.contains('}'),
            "rule rendering looks wrong: {rendered}"
        );
    }
}

#[test]
fn quickstart_greedy_and_exact_also_compress() {
    let data = weather_activities();
    let greedy = translator_greedy(&data, &GreedyConfig::new(1));
    assert!(greedy.compression_pct() <= 100.0);
    let exact = translator_exact(&data);
    assert!(exact.compression_pct() <= 100.0);
    // EXACT is per-iteration optimal: it can never end up worse than the
    // candidate-restricted SELECT on the same data.
    let select = translator_select(&data, &SelectConfig::new(1, 1));
    assert!(exact.compression_pct() <= select.compression_pct() + 1e-9);
}
