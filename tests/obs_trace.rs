//! Observability suite: the JSON-lines trace and the metric registry
//! (`twoview_runtime::obs`) exercised through real engine fits.
//!
//! Properties proved here:
//!
//! * **schema** — every trace line parses as JSON, ids are unique,
//!   every non-root parent references a recorded span, spans carry
//!   `dur_us` and events do not;
//! * **determinism** — one worker thread and one executor produce the
//!   same span tree (names, kinds, parent structure, non-timing
//!   fields) on repeated runs, modulo timestamps and raw ids;
//! * **bit-identical models** — tracing on vs off never changes a fit;
//! * **one source of truth** — after a chaos storm, `EngineStats`, the
//!   registry snapshot deltas, and the trace's retry/degradation event
//!   counts all agree exactly.
//!
//! The trace sink and fault registry are process-global, so every test
//! serialises on one mutex, uses snapshot *deltas* (the registry is
//! never reset), and uninstalls the sink before returning.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use twoview::data::synthetic::{self, StructureSpec, SyntheticSpec};
use twoview::prelude::*;
use twoview::runtime::faults::{self, points, FaultPlan};
use twoview::runtime::obs;

static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock_obs() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn corpus(n: usize, seed: u64) -> TwoViewDataset {
    let spec = SyntheticSpec {
        name: format!("obs-trace-{seed}"),
        n_transactions: n,
        n_left: 12,
        n_right: 10,
        density_left: 0.3,
        density_right: 0.3,
        structure: StructureSpec::strong(3),
        seed,
    };
    synthetic::generate(&spec).expect("valid spec").dataset
}

const JOIN_BOUND: Duration = Duration::from_secs(120);

/// A `Write` sink backed by shared memory, so tests can read back what
/// the per-thread trace buffers drained.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        let bytes = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8(bytes.clone()).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON parser — enough to *strictly* validate trace lines
// without pulling in a dependency.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek().ok_or("unexpected end")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value()?;
            if map.insert(key, val).is_some() {
                return Err("duplicate key".into());
            }
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or("bad escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.i += 4;
                        }
                        c => return Err(format!("bad escape \\{}", c as char)),
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (trace output is UTF-8).
                    let rest = std::str::from_utf8(&self.s[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unexpected end")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }
}

/// One parsed trace record with the required envelope extracted.
struct Record {
    kind: String,
    id: u64,
    parent: u64,
    thread: u64,
    name: String,
    dur_us: Option<u64>,
    fields: BTreeMap<String, Json>,
}

fn parse_trace(text: &str) -> Vec<Record> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let Json::Obj(map) = Parser::parse(line).unwrap_or_else(|e| {
                panic!("trace line is not valid JSON ({e}): {line}");
            }) else {
                panic!("trace line is not an object: {line}");
            };
            let get_u64 = |key: &str| -> u64 {
                match map.get(key) {
                    Some(Json::Num(n)) => *n as u64,
                    other => panic!("{key} missing or non-numeric ({other:?}): {line}"),
                }
            };
            let get_str = |key: &str| -> String {
                match map.get(key) {
                    Some(Json::Str(s)) => s.clone(),
                    other => panic!("{key} missing or non-string ({other:?}): {line}"),
                }
            };
            assert!(
                map.contains_key("start_us"),
                "record lacks start_us: {line}"
            );
            let fields = match map.get("fields") {
                Some(Json::Obj(f)) => f.clone(),
                None => BTreeMap::new(),
                other => panic!("fields is not an object ({other:?}): {line}"),
            };
            Record {
                kind: get_str("kind"),
                id: get_u64("id"),
                parent: get_u64("parent"),
                thread: get_u64("thread"),
                name: get_str("name"),
                dur_us: match map.get("dur_us") {
                    Some(Json::Num(n)) => Some(*n as u64),
                    None => None,
                    other => panic!("dur_us non-numeric ({other:?}): {line}"),
                },
                fields,
            }
        })
        .collect()
}

fn count_events(records: &[Record], name: &str) -> u64 {
    records
        .iter()
        .filter(|r| r.kind == "event" && r.name == name)
        .count() as u64
}

/// Runs one traced SELECT fit and returns the captured trace text.
fn traced_select_fit(d: &TwoViewDataset, k: usize) -> (TranslatorModel, String) {
    let buf = SharedBuf::new();
    obs::trace_to_writer(Box::new(buf.clone()));
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .build()
        .unwrap();
    let cfg = SelectConfig::builder().k(k).minsup(2).build();
    let model = engine
        .fit(Algorithm::Select(cfg))
        .join_timeout(JOIN_BOUND)
        .expect("fit resolves")
        .expect("fit succeeds");
    drop(engine);
    obs::trace_off();
    (model, buf.contents())
}

/// Schema: every line parses, ids are unique, parents reference
/// recorded spans, spans (and only spans) carry `dur_us`, and the
/// lifecycle names we instrument all show up.
#[test]
fn trace_schema_parses_nests_and_has_unique_ids() {
    let _guard = lock_obs();
    faults::clear();
    let d = corpus(200, 11);

    let buf = SharedBuf::new();
    obs::trace_to_writer(Box::new(buf.clone()));
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .build()
        .unwrap();
    let select_cfg = SelectConfig::builder().k(2).minsup(2).build();
    let greedy_cfg = GreedyConfig::builder().minsup(2).build();
    let h1 = engine.fit(Algorithm::Select(select_cfg));
    let h2 = engine.fit(Algorithm::Greedy(greedy_cfg));
    h1.join_timeout(JOIN_BOUND).unwrap().unwrap();
    h2.join_timeout(JOIN_BOUND).unwrap().unwrap();
    drop(engine);
    obs::trace_off();

    let records = parse_trace(&buf.contents());
    assert!(
        records.len() >= 8,
        "expected a build + two fits worth of records, got {}",
        records.len()
    );

    let mut seen_ids = std::collections::BTreeSet::new();
    let mut span_ids = std::collections::BTreeSet::new();
    for r in &records {
        assert!(
            r.kind == "span" || r.kind == "event",
            "unknown kind {:?}",
            r.kind
        );
        assert!(!r.name.is_empty(), "empty record name");
        assert!(r.thread >= 1, "thread ids start at 1");
        assert!(seen_ids.insert(r.id), "duplicate record id {}", r.id);
        match r.kind.as_str() {
            "span" => {
                assert!(r.dur_us.is_some(), "span {} lacks dur_us", r.name);
                span_ids.insert(r.id);
            }
            _ => assert!(r.dur_us.is_none(), "event {} carries dur_us", r.name),
        }
    }
    for r in &records {
        if r.parent != 0 {
            assert!(
                span_ids.contains(&r.parent),
                "{} {} has dangling parent {}",
                r.kind,
                r.name,
                r.parent
            );
        }
    }

    // Nesting: solver spans must sit under the job span, on its thread.
    let by_id: BTreeMap<u64, &Record> = records.iter().map(|r| (r.id, r)).collect();
    for r in &records {
        if r.name == "select.run" || r.name == "greedy.run" {
            let job = by_id
                .get(&r.parent)
                .unwrap_or_else(|| panic!("{} has no parent span", r.name));
            assert_eq!(job.name, "job.run", "{} must nest under job.run", r.name);
            assert_eq!(job.thread, r.thread, "child crossed threads");
        }
    }

    for expected in [
        "engine.build.mine",
        "engine.cache.warm",
        "mine.closed",
        "job.run",
        "select.run",
        "greedy.run",
    ] {
        assert!(
            records
                .iter()
                .any(|r| r.kind == "span" && r.name == expected),
            "missing span {expected}"
        );
    }
    assert!(
        count_events(&records, "job.enqueue") >= 2,
        "both fits must record an enqueue event"
    );
}

/// Determinism: one worker thread + one executor ⇒ the same span tree
/// (kinds, names, parent structure, non-timing fields) every run, once
/// raw ids and thread ids are normalised by first appearance.
#[test]
fn span_tree_deterministic_with_one_thread() {
    let _guard = lock_obs();
    faults::clear();
    let d = corpus(150, 11);

    // Wall-clock-dependent fields are excluded from the comparison;
    // everything else (counts, flags, lanes) must be stable.
    const TIMING_FIELDS: &[&str] = &["queue_wait_us"];

    // (kind, name, normalised parent, normalised thread, stable fields).
    type Shape = (String, String, u64, u64, Vec<(String, Json)>);

    let shape = |_run: usize| -> Vec<Shape> {
        let buf = SharedBuf::new();
        obs::trace_to_writer(Box::new(buf.clone()));
        let engine = Engine::builder()
            .dataset(d.clone())
            .minsup(2)
            .threads(1)
            .job_executors(1)
            .build()
            .unwrap();
        let cfg = SelectConfig::builder().k(1).minsup(2).build();
        engine
            .fit(Algorithm::Select(cfg))
            .join_timeout(JOIN_BOUND)
            .unwrap()
            .unwrap();
        drop(engine);
        obs::trace_off();

        let records = parse_trace(&buf.contents());
        let mut id_norm = BTreeMap::new();
        let mut thread_norm = BTreeMap::new();
        records
            .iter()
            .map(|r| {
                let next_id = id_norm.len() as u64 + 1;
                let id = *id_norm.entry(r.id).or_insert(next_id);
                debug_assert!(id <= next_id);
                let next_thread = thread_norm.len() as u64 + 1;
                let thread = *thread_norm.entry(r.thread).or_insert(next_thread);
                let parent = id_norm.get(&r.parent).copied().unwrap_or(0);
                let fields: Vec<(String, Json)> = r
                    .fields
                    .iter()
                    .filter(|(k, _)| !TIMING_FIELDS.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                (r.kind.clone(), r.name.clone(), parent, thread, fields)
            })
            .collect()
    };

    let first = shape(0);
    let second = shape(1);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "single-threaded span tree must be identical modulo timestamps"
    );
}

/// The observer effect, bounded at zero: tracing on vs off yields
/// bit-identical models.
#[test]
fn models_bit_identical_with_tracing_on_and_off() {
    let _guard = lock_obs();
    faults::clear();
    let d = corpus(250, 13);

    obs::trace_off();
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .build()
        .unwrap();
    let cfg = SelectConfig::builder().k(2).minsup(2).build();
    let plain = engine
        .fit(Algorithm::Select(cfg))
        .join_timeout(JOIN_BOUND)
        .unwrap()
        .unwrap();
    drop(engine);

    let (traced, trace) = traced_select_fit(&d, 2);
    assert!(!trace.is_empty(), "tracing was on; the sink must see data");
    assert_eq!(plain.table, traced.table, "tracing must not perturb fits");
    assert_eq!(
        plain.score.l_total.to_bits(),
        traced.score.l_total.to_bits(),
        "scores must match to the bit"
    );
}

/// One source of truth, proved three ways: after a chaos storm the
/// `EngineStats` view, the registry snapshot delta, and the trace's
/// event counts agree exactly on retries, degradations, and respawns.
#[test]
fn chaos_storm_trace_and_registry_and_stats_agree() {
    let _guard = lock_obs();
    faults::clear();
    let seed = 1u64;
    let d = corpus(300, 11);

    let buf = SharedBuf::new();
    obs::trace_to_writer(Box::new(buf.clone()));
    let before = obs::snapshot();

    // The engine_chaos storm: a warm that always fails (every base-minsup
    // SELECT fit degrades), low-probability checkpoint panics and
    // executor deaths, with retries to ride them out.
    faults::configure(
        FaultPlan::new()
            .point(points::MINE_PANIC, 0.2, seed)
            .point(points::CACHE_WARM_FAIL, 1.0, seed)
            .point(points::SELECT_CHECKPOINT_PANIC, 0.01, seed.wrapping_add(1))
            .point(points::GREEDY_CHECKPOINT_PANIC, 0.01, seed.wrapping_add(2))
            .point(points::EXECUTOR_DIE, 0.02, seed.wrapping_add(3)),
    );
    let engine = Engine::builder()
        .dataset(d.clone())
        .minsup(2)
        .job_executors(3)
        .retry_policy(RetryPolicy::new(8, Duration::from_millis(1)))
        .build()
        .expect("build survives transient mine faults via retry");

    let select_cfgs: Vec<SelectConfig> = (1..=3)
        .map(|k| SelectConfig::builder().k(k).minsup(2).build())
        .collect();
    let greedy_cfg = GreedyConfig::builder().minsup(2).build();
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let which = i % 4;
            let priority = if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let alg = if which < 3 {
                Algorithm::Select(select_cfgs[which].clone())
            } else {
                Algorithm::Greedy(greedy_cfg.clone())
            };
            engine.fit_with(alg, priority)
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let result = h
            .join_timeout(JOIN_BOUND)
            .unwrap_or_else(|_| panic!("handle {i} hung past {JOIN_BOUND:?}"));
        if let Err(e) = result {
            assert!(
                e.to_string().contains("injected fault"),
                "only injected faults may fail a chaos fit: {e}"
            );
        }
    }
    faults::clear();

    let stats = engine.stats();
    let after = obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);

    // View 1 vs view 2: EngineStats is a view over the same registry
    // cells the snapshot reads — the two must agree exactly.
    assert_eq!(delta("engine.jobs_retried"), stats.jobs_retried);
    assert_eq!(delta("engine.fits_degraded"), stats.fits_degraded);
    assert_eq!(delta("engine.fits_completed"), stats.fits_completed);
    assert_eq!(delta("engine.jobs_submitted"), stats.jobs_submitted);
    assert_eq!(delta("queue.jobs_rejected"), stats.jobs_rejected);
    assert_eq!(delta("queue.jobs_shed"), stats.jobs_shed);
    assert_eq!(delta("queue.jobs_timed_out"), stats.jobs_timed_out);
    assert_eq!(
        delta("queue.executors_respawned"),
        stats.executors_respawned
    );
    assert!(
        stats.fits_degraded >= 1,
        "the failed warm must degrade base-minsup SELECT fits"
    );

    // View 3: the trace. Executor threads drain their buffers when each
    // job's span closes, so after joining every handle the sink holds
    // every lifecycle event.
    drop(engine);
    obs::trace_off();
    let records = parse_trace(&buf.contents());
    assert_eq!(
        count_events(&records, "job.retry"),
        stats.jobs_retried,
        "trace retry events must match the retry counter"
    );
    assert_eq!(
        count_events(&records, "engine.degraded"),
        stats.fits_degraded,
        "trace degradation events must match the degradation counter"
    );
    assert_eq!(
        count_events(&records, "executor.respawn"),
        stats.executors_respawned,
        "trace respawn events must match the respawn counter"
    );
    assert_eq!(
        count_events(&records, "job.enqueue"),
        stats.jobs_submitted,
        "every submitted job must record an enqueue event"
    );
}
