//! Property tests for the search bounds of TRANSLATOR-EXACT (paper §5.2)
//! and for the prediction API.
//!
//! The bounds are the load-bearing part of the exact search: if `rub` or
//! `qub` ever undershot a true gain, the "exact" search could prune the
//! optimum away silently. These tests enumerate random rules on random
//! data and verify domination directly.

use proptest::prelude::*;

use twoview::core::{bounds, predict, translate, CoverState};
use twoview::prelude::*;

fn random_dataset(nl: usize, nr: usize, n: usize, seed: u64, density: f64) -> TwoViewDataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::unnamed(nl, nr);
    let txs: Vec<Vec<ItemId>> = (0..n)
        .map(|_| {
            (0..(nl + nr) as ItemId)
                .filter(|_| rng.gen_bool(density))
                .collect()
        })
        .collect();
    TwoViewDataset::from_transactions(vocab, &txs)
}

/// All occurring single/pair itemset combinations on each side (small
/// enough to enumerate, big enough to exercise the bounds).
fn occurring_pairs(data: &TwoViewDataset) -> Vec<(ItemSet, ItemSet)> {
    let vocab = data.vocab();
    let mut lefts: Vec<ItemSet> = Vec::new();
    let left_ids: Vec<ItemId> = vocab.items_on(Side::Left).collect();
    for (i, &a) in left_ids.iter().enumerate() {
        lefts.push(ItemSet::singleton(a));
        for &b in &left_ids[i + 1..] {
            lefts.push(ItemSet::from_items([a, b]));
        }
    }
    let mut rights: Vec<ItemSet> = Vec::new();
    let right_ids: Vec<ItemId> = vocab.items_on(Side::Right).collect();
    for (i, &a) in right_ids.iter().enumerate() {
        rights.push(ItemSet::singleton(a));
        for &b in &right_ids[i + 1..] {
            rights.push(ItemSet::from_items([a, b]));
        }
    }
    let mut out = Vec::new();
    for l in &lefts {
        if data.support_count(l) == 0 {
            continue;
        }
        for r in &rights {
            if data.support_count(r) == 0 {
                continue;
            }
            out.push((l.clone(), r.clone()));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `rub` and `qub` dominate the true gains of every direction, at the
    /// empty model and after a rule has been applied.
    #[test]
    fn bounds_dominate_true_gains(seed in 0u64..2_000) {
        let data = random_dataset(4, 4, 15, seed, 0.4);
        let mut state = CoverState::new(&data);

        for round in 0..2 {
            let mut best: Option<TranslationRule> = None;
            let mut best_gain = 0.0f64;
            for (left, right) in occurring_pairs(&data) {
                let lt = data.support_set(&left);
                let rt = data.support_set(&right);
                let gains = state.pair_gains(&left, &right, &lt, &rt);

                // The shared bound helpers (paper §5.2) every TRANSLATOR
                // algorithm prunes with.
                let qub = bounds::qub(state.codes(), &data, &left, &right);
                let rub = bounds::rub(&state, &left, &right, &lt, &rt);
                // They must match the paper formulas computed longhand.
                let len_l: f64 = left.iter().map(|i| state.codes().item(i)).sum();
                let len_r: f64 = right.iter().map(|i| state.codes().item(i)).sum();
                let l_bidir = len_l + len_r + 1.0;
                let qub_direct = lt.len() as f64 * len_r + rt.len() as f64 * len_l - l_bidir;
                let sum_l: f64 = lt.iter().map(|t| state.uncovered_weight(Side::Right, t)).sum();
                let sum_r: f64 = rt.iter().map(|t| state.uncovered_weight(Side::Left, t)).sum();
                let rub_direct = sum_l + sum_r - l_bidir;
                prop_assert!((qub - qub_direct).abs() < 1e-9);
                prop_assert!((rub - rub_direct).abs() < 1e-9);

                for (gain, dir) in gains.into_iter().zip(Direction::ALL) {
                    prop_assert!(
                        qub + 1e-9 >= gain,
                        "round {}: qub {} < gain {} for {:?} {:?} {:?}",
                        round, qub, gain, left, right, dir
                    );
                    prop_assert!(
                        rub + 1e-9 >= gain,
                        "round {}: rub {} < gain {} for {:?} {:?} {:?}",
                        round, rub, gain, left, right, dir
                    );
                    if gain > best_gain {
                        best_gain = gain;
                        best = Some(TranslationRule::new(left.clone(), right.clone(), dir));
                    }
                }
            }
            // Apply the best rule (if any) and re-check in the new state.
            match best {
                Some(rule) => state.apply_rule(rule),
                None => break,
            }
            let _ = round;
        }
    }

    /// Prediction counts tie out with the cover state's U/E accounting.
    #[test]
    fn prediction_errors_match_cover_state(seed in 0u64..2_000) {
        let data = random_dataset(4, 4, 12, seed, 0.4);
        let mut state = CoverState::new(&data);
        // Apply up to two best single-pair rules.
        for _ in 0..2 {
            let mut best: Option<(TranslationRule, f64)> = None;
            for (left, right) in occurring_pairs(&data) {
                if left.len() != 1 || right.len() != 1 {
                    continue;
                }
                let lt = data.support_set(&left);
                let rt = data.support_set(&right);
                let gains = state.pair_gains(&left, &right, &lt, &rt);
                for (gain, dir) in gains.into_iter().zip(Direction::ALL) {
                    if gain > best.as_ref().map_or(0.0, |(_, g)| *g) {
                        best = Some((TranslationRule::new(left.clone(), right.clone(), dir), gain));
                    }
                }
            }
            match best {
                Some((rule, _)) => state.apply_rule(rule),
                None => break,
            }
        }
        let table = state.table().clone();

        // From the left: false positives = |E_R|, false negatives = |U_R|.
        let q = predict::prediction_quality(&data, &table, Side::Left);
        prop_assert_eq!(q.false_positives, state.n_errors(Side::Right));
        prop_assert_eq!(q.false_negatives, state.n_uncovered(Side::Right));
        let q = predict::prediction_quality(&data, &table, Side::Right);
        prop_assert_eq!(q.false_positives, state.n_errors(Side::Left));
        prop_assert_eq!(q.false_negatives, state.n_uncovered(Side::Left));

        // And in-sample predict_row agrees with TRANSLATE everywhere.
        for t in 0..data.n_transactions() {
            prop_assert_eq!(
                predict::predict_row(&data, &table, Side::Left, data.row(Side::Left, t)),
                translate::translate_transaction(&data, &table, Side::Left, t)
            );
        }
    }
}
