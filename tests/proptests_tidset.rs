//! Property tests for the adaptive sparse/dense [`Tidset`] representation.
//!
//! Two layers of guarantees are checked on random inputs:
//!
//! * **kernel equivalence** — every `Tidset` operation agrees with the
//!   dense [`Bitmap`] reference for *all four* operand representation
//!   combinations (sparse×sparse, sparse×dense, dense×sparse,
//!   dense×dense), over random op sequences and with set sizes
//!   straddling the promotion/demotion threshold at ±1; the
//!   floating-point kernels (`weighted_len`, `difference_weight`) and
//!   `fingerprint` must be **bit-identical**, not just close;
//! * **model identity** — SELECT / GREEDY / EXACT fit bit-identical
//!   models under [`TidsetMode::ForceSparse`], `ForceDense`, and
//!   `Adaptive`: the representation is an invisible performance detail,
//!   enforced the same way the columnar≡row and thread-count identities
//!   are.
//!
//! The tidset mode is process-global, so every test that flips it (or
//! asserts a concrete representation) serializes through one mutex and
//! restores `Adaptive` on exit.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

use twoview::core::exact::{translator_exact_with, ExactConfig};
use twoview::core::greedy::{translator_greedy, GreedyConfig};
use twoview::core::select::{translator_select, SelectConfig};
use twoview::data::tidset::sparse_limit;
use twoview::prelude::*;

static MODE_LOCK: Mutex<()> = Mutex::new(());

struct ModeGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ModeGuard {
    fn lock() -> ModeGuard {
        let guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_tidset_mode(TidsetMode::Adaptive);
        ModeGuard(guard)
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_tidset_mode(TidsetMode::Adaptive);
    }
}

/// Both representations of one index set.
fn variants(universe: usize, indices: &[usize]) -> [Tidset; 2] {
    let t = Tidset::from_indices(universe, indices.iter().copied());
    [t.to_sparse(), t.to_dense()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every kernel op, over every representation combination, agrees with
    /// the Bitmap reference; fp kernels and fingerprints bit-identically.
    #[test]
    fn tidset_kernels_match_bitmap_for_all_repr_combos(
        a in proptest::collection::vec(0usize..320, 0..80),
        b in proptest::collection::vec(0usize..320, 0..80),
        c in proptest::collection::vec(0usize..320, 0..40),
    ) {
        let universe = 320;
        let (ba, bb, bc) = (
            Bitmap::from_indices(universe, a.iter().copied()),
            Bitmap::from_indices(universe, b.iter().copied()),
            Bitmap::from_indices(universe, c.iter().copied()),
        );
        let weights: Vec<f64> = (0..universe)
            .map(|i| ((i * 31 + 7) % 97) as f64 * 0.0625)
            .collect();
        for ta in variants(universe, &a) {
            prop_assert_eq!(ta.len(), ba.len());
            prop_assert_eq!(ta.to_vec(), ba.to_vec());
            prop_assert_eq!(ta.first(), ba.first());
            prop_assert_eq!(
                ta.weighted_len(&weights).to_bits(),
                ba.weighted_len(&weights).to_bits(),
                "weighted_len must be bit-identical"
            );
            prop_assert_eq!(ta.fingerprint(), ba.fingerprint());
            for tb in variants(universe, &b) {
                prop_assert_eq!(ta.intersection_len(&tb), ba.intersection_len(&bb));
                prop_assert_eq!(ta.union_len(&tb), ba.union_len(&bb));
                prop_assert_eq!(ta.difference_len(&tb), ba.difference_len(&bb));
                prop_assert_eq!(ta.and(&tb).to_vec(), ba.and(&bb).to_vec());
                prop_assert_eq!(ta.difference(&tb).to_vec(), ba.and_not(&bb).to_vec());
                prop_assert_eq!(ta.is_subset(&tb), ba.is_subset(&bb));
                prop_assert_eq!(ta.is_disjoint(&tb), ba.is_disjoint(&bb));
                prop_assert_eq!(
                    ta.difference_weight(&tb, &weights).to_bits(),
                    ba.difference_weight(&bb, &weights).to_bits(),
                    "difference_weight must be bit-identical"
                );
                let mut union = ta.clone();
                union.union_with(&tb);
                prop_assert_eq!(union.to_vec(), ba.or(&bb).to_vec());
                let mut inter = ta.clone();
                inter.intersect_with(&tb);
                prop_assert_eq!(inter.to_vec(), ba.and(&bb).to_vec());
                let mut diff = ta.clone();
                diff.subtract(&tb);
                prop_assert_eq!(diff.to_vec(), ba.and_not(&bb).to_vec());
                for tc in variants(universe, &c) {
                    prop_assert_eq!(
                        ta.and_and_not_len(&tb, &tc),
                        ba.and_and_not_len(&bb, &bc),
                        "and_and_not_len"
                    );
                    prop_assert_eq!(
                        ta.and_not_not_len(&tb, &tc),
                        ba.and_not_not_len(&bb, &bc),
                        "and_not_not_len"
                    );
                    prop_assert_eq!(
                        ta.and_is_subset(&tb, &tc),
                        ba.and_is_subset(&bb, &bc),
                        "and_is_subset"
                    );
                }
            }
        }
    }

    /// Random op sequences (intersect / union / subtract) applied to a
    /// sparse-seeded and a dense-seeded accumulator stay equal to the
    /// Bitmap reference throughout — promotions and demotions included.
    #[test]
    fn tidset_random_op_sequences_match_reference(
        seedset in proptest::collection::vec(0usize..640, 0..30),
        ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(0usize..640, 0..60)),
            1..12
        ),
    ) {
        let universe = 640;
        let mut sparse_acc = Tidset::from_indices(universe, seedset.iter().copied()).to_sparse();
        let mut dense_acc = sparse_acc.to_dense();
        let mut reference = Bitmap::from_indices(universe, seedset.iter().copied());
        for (op, operand) in &ops {
            // Alternate the operand representation too.
            let t = Tidset::from_indices(universe, operand.iter().copied());
            let t = if *op % 2 == 0 { t.to_sparse() } else { t.to_dense() };
            let bm = Bitmap::from_indices(universe, operand.iter().copied());
            match op {
                0 => {
                    sparse_acc.intersect_with(&t);
                    dense_acc.intersect_with(&t);
                    reference.intersect_with(&bm);
                }
                1 => {
                    sparse_acc.union_with(&t);
                    dense_acc.union_with(&t);
                    reference.union_with(&bm);
                }
                _ => {
                    sparse_acc.subtract(&t);
                    dense_acc.subtract(&t);
                    reference.subtract(&bm);
                }
            }
            prop_assert_eq!(sparse_acc.to_vec(), reference.to_vec());
            prop_assert_eq!(dense_acc.to_vec(), reference.to_vec());
            prop_assert_eq!(&sparse_acc, &dense_acc, "repr-independent equality");
            prop_assert_eq!(sparse_acc.fingerprint(), dense_acc.fingerprint());
        }
    }

    /// Adaptive promotion/demotion flips exactly at the threshold: sets of
    /// cardinality `limit ± 1` and `limit` land on the expected side, and
    /// every kernel result is unchanged either way.
    #[test]
    fn threshold_boundaries_are_exact(universe in 64usize..2048, offset in 0usize..7) {
        let _guard = ModeGuard::lock();
        let limit = sparse_limit(universe);
        for card in [limit.saturating_sub(1), limit, (limit + 1).min(universe)] {
            if card > universe {
                continue;
            }
            let indices: Vec<usize> = (0..card).map(|i| (i + offset) % universe).collect();
            let t = Tidset::from_indices(universe, indices.iter().copied());
            prop_assert_eq!(t.len(), indices.len(), "offset rotation stays unique");
            prop_assert_eq!(
                t.is_sparse(),
                card <= limit,
                "card {} vs limit {}", card, limit
            );
            // Crossing the boundary via union promotes; shrinking via
            // intersection demotes.
            let mut grown = t.clone();
            grown.union_with(&Tidset::full(universe).to_dense());
            prop_assert_eq!(grown.len(), universe);
            prop_assert_eq!(grown.is_sparse(), universe <= limit);
            let shrunk = grown.and(&Tidset::from_indices(universe, [offset]));
            prop_assert!(shrunk.is_sparse());
            prop_assert_eq!(shrunk.to_vec(), vec![offset]);
        }
    }
}

/// A small random dataset with planted structure for the model-identity
/// checks.
fn mode_identity_dataset(seed: u64, n: usize) -> TwoViewDataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::unnamed(6, 5);
    let txs: Vec<Vec<ItemId>> = (0..n)
        .map(|_| {
            let mut t: Vec<ItemId> = (0..11).filter(|_| rng.gen_bool(0.25)).collect();
            if rng.gen_bool(0.4) {
                // Planted association {0,1} <-> {6,7}.
                t.extend([0, 1, 6, 7]);
                t.sort_unstable();
                t.dedup();
            }
            t
        })
        .collect();
    TwoViewDataset::from_transactions(vocab, &txs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SELECT, GREEDY and EXACT fit bit-identical models under
    /// forced-sparse, forced-dense, and adaptive tidset modes. The dataset
    /// is rebuilt under each mode so columns, mining intersections, cover
    /// columns and seed caches all take that representation end to end.
    #[test]
    fn models_identical_across_tidset_modes(seed in 0u64..500, n in 8usize..40) {
        let _guard = ModeGuard::lock();
        let fit_all = || {
            let data = mode_identity_dataset(seed, n);
            let select = translator_select(
                &data,
                &SelectConfig::builder().k(2).minsup(1).build(),
            );
            let greedy = translator_greedy(&data, &GreedyConfig::builder().minsup(1).build());
            let exact = translator_exact_with(
                &data,
                &ExactConfig { max_rules: Some(3), ..ExactConfig::default() },
            );
            (select, greedy, exact)
        };
        set_tidset_mode(TidsetMode::Adaptive);
        let (sel_a, gre_a, exa_a) = fit_all();
        set_tidset_mode(TidsetMode::ForceDense);
        let (sel_d, gre_d, exa_d) = fit_all();
        set_tidset_mode(TidsetMode::ForceSparse);
        let (sel_s, gre_s, exa_s) = fit_all();
        set_tidset_mode(TidsetMode::Adaptive);

        for (label, a, other) in [
            ("select dense", &sel_a, &sel_d),
            ("select sparse", &sel_a, &sel_s),
            ("greedy dense", &gre_a, &gre_d),
            ("greedy sparse", &gre_a, &gre_s),
            ("exact dense", &exa_a, &exa_d),
            ("exact sparse", &exa_a, &exa_s),
        ] {
            prop_assert_eq!(&a.table, &other.table, "{} table", label);
            prop_assert!(
                (a.score.l_total - other.score.l_total).abs() < 1e-12,
                "{} score {} vs {}", label, a.score.l_total, other.score.l_total
            );
        }
    }

    /// Mining enumerates identical candidate lists (order included) under
    /// all three modes, and the seed tidsets fingerprint identically.
    #[test]
    fn mining_identical_across_tidset_modes(seed in 0u64..500, n in 8usize..40) {
        let _guard = ModeGuard::lock();
        let mine = || {
            let data = mode_identity_dataset(seed, n);
            let cands = mine_closed_twoview(
                &data,
                &MinerConfig::builder().minsup(1).build(),
            ).candidates;
            let prints: Vec<(u64, u64)> = cands
                .iter()
                .map(|c| {
                    (
                        data.support_set(&c.left).fingerprint(),
                        data.support_set(&c.right).fingerprint(),
                    )
                })
                .collect();
            (cands, prints)
        };
        set_tidset_mode(TidsetMode::Adaptive);
        let (cands_a, prints_a) = mine();
        set_tidset_mode(TidsetMode::ForceDense);
        let (cands_d, prints_d) = mine();
        set_tidset_mode(TidsetMode::ForceSparse);
        let (cands_s, prints_s) = mine();
        set_tidset_mode(TidsetMode::Adaptive);
        prop_assert_eq!(&cands_a, &cands_d);
        prop_assert_eq!(&cands_a, &cands_s);
        prop_assert_eq!(&prints_a, &prints_d, "fingerprints are repr-independent");
        prop_assert_eq!(&prints_a, &prints_s);
    }
}
