//! Property tests for the adaptive sparse/dense/runs [`Tidset`]
//! representation and the SIMD/scalar merge kernels beneath it.
//!
//! Two layers of guarantees are checked on random inputs:
//!
//! * **kernel equivalence** — every `Tidset` operation agrees with the
//!   dense [`Bitmap`] reference for *all nine* operand representation
//!   combinations (sparse/dense/runs × sparse/dense/runs), over random
//!   op sequences and with set sizes straddling the promotion/demotion
//!   threshold at ±1; the floating-point kernels (`weighted_len`,
//!   `difference_weight`) and `fingerprint` must be **bit-identical**,
//!   not just close. The SSE2 block-merge kernels must agree with the
//!   scalar gallop reference on the same inputs.
//! * **model identity** — SELECT / GREEDY / EXACT fit bit-identical
//!   models under [`TidsetMode::ForceSparse`], `ForceDense`,
//!   `ForceRuns`, and `Adaptive`, and under both kernel paths: the
//!   representation is an invisible performance detail, enforced the
//!   same way the columnar≡row and thread-count identities are.
//!
//! The tidset mode and kernel path are process-global, so every test
//! that flips either (or asserts a concrete representation) serializes
//! through one mutex and restores the defaults on exit.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

use twoview::core::exact::{translator_exact_with, ExactConfig};
use twoview::core::greedy::{translator_greedy, GreedyConfig};
use twoview::core::select::{translator_select, SelectConfig};
use twoview::data::simd_merge::{set_kernel_path, KernelPath};
use twoview::data::tidset::sparse_limit;
use twoview::prelude::*;

static MODE_LOCK: Mutex<()> = Mutex::new(());

struct ModeGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ModeGuard {
    fn lock() -> ModeGuard {
        let guard = MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_tidset_mode(TidsetMode::Adaptive);
        set_kernel_path(KernelPath::Simd);
        ModeGuard(guard)
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_tidset_mode(TidsetMode::Adaptive);
        set_kernel_path(KernelPath::Simd);
    }
}

/// All three representations of one index set.
fn variants(universe: usize, indices: &[usize]) -> [Tidset; 3] {
    let t = Tidset::from_indices(universe, indices.iter().copied());
    [t.to_sparse(), t.to_dense(), t.to_runs()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every kernel op, over every representation combination, agrees with
    /// the Bitmap reference; fp kernels and fingerprints bit-identically.
    /// Operands mix scattered tids with clustered blocks so the runs
    /// representation sees both degenerate (all-singleton) and favourable
    /// (few long runs) inputs.
    #[test]
    fn tidset_kernels_match_bitmap_for_all_repr_combos(
        a in proptest::collection::vec(0usize..320, 0..80),
        b in proptest::collection::vec(0usize..320, 0..80),
        c in proptest::collection::vec(0usize..320, 0..40),
        block in 0usize..200,
    ) {
        let universe = 320;
        // Plant clustered blocks so runs×{sparse,dense,runs} arms see
        // genuine multi-element runs, not just singletons.
        let mut b = b;
        let mut c = c;
        b.extend(block..block + 24);
        c.extend(block + 40..block + 60);
        let (ba, bb, bc) = (
            Bitmap::from_indices(universe, a.iter().copied()),
            Bitmap::from_indices(universe, b.iter().copied()),
            Bitmap::from_indices(universe, c.iter().copied()),
        );
        let weights: Vec<f64> = (0..universe)
            .map(|i| ((i * 31 + 7) % 97) as f64 * 0.0625)
            .collect();
        for ta in variants(universe, &a) {
            prop_assert_eq!(ta.len(), ba.len());
            prop_assert_eq!(ta.to_vec(), ba.to_vec());
            prop_assert_eq!(ta.first(), ba.first());
            prop_assert_eq!(
                ta.weighted_len(&weights).to_bits(),
                ba.weighted_len(&weights).to_bits(),
                "weighted_len must be bit-identical"
            );
            prop_assert_eq!(ta.fingerprint(), ba.fingerprint());
            for tb in variants(universe, &b) {
                prop_assert_eq!(ta.intersection_len(&tb), ba.intersection_len(&bb));
                prop_assert_eq!(ta.union_len(&tb), ba.union_len(&bb));
                prop_assert_eq!(ta.difference_len(&tb), ba.difference_len(&bb));
                prop_assert_eq!(ta.and(&tb).to_vec(), ba.and(&bb).to_vec());
                prop_assert_eq!(ta.difference(&tb).to_vec(), ba.and_not(&bb).to_vec());
                prop_assert_eq!(
                    ta.iter_difference(&tb).collect::<Vec<_>>(),
                    ba.and_not(&bb).to_vec()
                );
                prop_assert_eq!(ta.is_subset(&tb), ba.is_subset(&bb));
                prop_assert_eq!(ta.is_disjoint(&tb), ba.is_disjoint(&bb));
                prop_assert_eq!(
                    ta.difference_weight(&tb, &weights).to_bits(),
                    ba.difference_weight(&bb, &weights).to_bits(),
                    "difference_weight must be bit-identical"
                );
                let mut union = ta.clone();
                union.union_with(&tb);
                prop_assert_eq!(union.to_vec(), ba.or(&bb).to_vec());
                let mut inter = ta.clone();
                inter.intersect_with(&tb);
                prop_assert_eq!(inter.to_vec(), ba.and(&bb).to_vec());
                let mut diff = ta.clone();
                diff.subtract(&tb);
                prop_assert_eq!(diff.to_vec(), ba.and_not(&bb).to_vec());
                for tc in variants(universe, &c) {
                    prop_assert_eq!(
                        ta.and_and_not_len(&tb, &tc),
                        ba.and_and_not_len(&bb, &bc),
                        "and_and_not_len"
                    );
                    prop_assert_eq!(
                        ta.and_not_not_len(&tb, &tc),
                        ba.and_not_not_len(&bb, &bc),
                        "and_not_not_len"
                    );
                    prop_assert_eq!(
                        ta.and_is_subset(&tb, &tc),
                        ba.and_is_subset(&bb, &bc),
                        "and_is_subset"
                    );
                }
            }
        }
    }

    /// Random op sequences (intersect / union / subtract) applied to a
    /// sparse-, dense-, and runs-seeded accumulator stay equal to the
    /// Bitmap reference throughout — promotions and demotions included.
    #[test]
    fn tidset_random_op_sequences_match_reference(
        seedset in proptest::collection::vec(0usize..640, 0..30),
        ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(0usize..640, 0..60)),
            1..12
        ),
    ) {
        let universe = 640;
        let mut sparse_acc = Tidset::from_indices(universe, seedset.iter().copied()).to_sparse();
        let mut dense_acc = sparse_acc.to_dense();
        let mut runs_acc = sparse_acc.to_runs();
        let mut reference = Bitmap::from_indices(universe, seedset.iter().copied());
        for (k, (op, operand)) in ops.iter().enumerate() {
            // Cycle the operand representation too.
            let t = Tidset::from_indices(universe, operand.iter().copied());
            let t = match k % 3 {
                0 => t.to_sparse(),
                1 => t.to_dense(),
                _ => t.to_runs(),
            };
            let bm = Bitmap::from_indices(universe, operand.iter().copied());
            match op {
                0 => {
                    sparse_acc.intersect_with(&t);
                    dense_acc.intersect_with(&t);
                    runs_acc.intersect_with(&t);
                    reference.intersect_with(&bm);
                }
                1 => {
                    sparse_acc.union_with(&t);
                    dense_acc.union_with(&t);
                    runs_acc.union_with(&t);
                    reference.union_with(&bm);
                }
                _ => {
                    sparse_acc.subtract(&t);
                    dense_acc.subtract(&t);
                    runs_acc.subtract(&t);
                    reference.subtract(&bm);
                }
            }
            prop_assert_eq!(sparse_acc.to_vec(), reference.to_vec());
            prop_assert_eq!(dense_acc.to_vec(), reference.to_vec());
            prop_assert_eq!(runs_acc.to_vec(), reference.to_vec());
            prop_assert_eq!(&sparse_acc, &dense_acc, "repr-independent equality");
            prop_assert_eq!(&sparse_acc, &runs_acc, "repr-independent equality");
            prop_assert_eq!(sparse_acc.fingerprint(), dense_acc.fingerprint());
            prop_assert_eq!(sparse_acc.fingerprint(), runs_acc.fingerprint());
        }
    }

    /// Adaptive promotion/demotion flips exactly at the threshold.
    /// Scattered (stride-2) sets never compress, so their sparse/dense
    /// flip sits exactly at `sparse_limit`; the same cardinalities laid
    /// out consecutively compress to one run and take the runs
    /// representation on either side of that boundary.
    #[test]
    fn threshold_boundaries_are_exact(universe in 64usize..2048, offset in 0usize..7) {
        let _guard = ModeGuard::lock();
        let limit = sparse_limit(universe);
        for card in [limit - 1, limit, limit + 1] {
            // Stride-2: every element is its own run (runs = card > card/4
            // and > limit), so the runs breakeven never fires here.
            let indices: Vec<usize> = (0..card).map(|i| 2 * i + offset).collect();
            prop_assert!(*indices.last().unwrap() < universe);
            let t = Tidset::from_indices(universe, indices.iter().copied());
            prop_assert_eq!(t.len(), card);
            prop_assert_eq!(
                t.is_sparse(),
                card <= limit,
                "card {} vs limit {}", card, limit
            );
            prop_assert_eq!(!t.is_sparse() && !t.is_runs(), card > limit, "dense side");
            // Consecutive layout: one run, at most card/4 runs for
            // card >= 4 (limit >= 4 always), so runs wins on both sides
            // of the sparse/dense boundary.
            let consec = Tidset::from_indices(universe, offset..offset + card);
            if card >= 4 {
                prop_assert!(consec.is_runs(), "consecutive card {} takes runs", card);
            } else {
                // Below 4 elements one run exceeds card/4 — sparse wins.
                prop_assert!(consec.is_sparse(), "tiny card {} stays sparse", card);
            }
            prop_assert_eq!(consec.len(), card);
            prop_assert_eq!(consec.to_vec(), (offset..offset + card).collect::<Vec<_>>());
            // Crossing the boundary via union lands on runs (the full
            // set is one run); shrinking via intersection demotes to
            // sparse (a singleton is one run > 1/4 elements).
            let mut grown = t.clone();
            grown.union_with(&Tidset::full(universe).to_dense());
            prop_assert_eq!(grown.len(), universe);
            prop_assert!(grown.is_runs(), "full set compresses to one run");
            let shrunk = grown.and(&Tidset::from_indices(universe, [offset]));
            prop_assert!(shrunk.is_sparse());
            prop_assert_eq!(shrunk.to_vec(), vec![offset]);
        }
    }

    /// The SSE2 block-merge kernels agree exactly with the scalar gallop
    /// reference on the same inputs — intersection, difference, subset,
    /// and the counted variants — across list-size skews that exercise
    /// both the block loop and the gallop dispatch.
    #[test]
    fn simd_and_scalar_kernel_paths_agree(
        a in proptest::collection::vec(0usize..4096, 0..600),
        b in proptest::collection::vec(0usize..4096, 0..600),
        clustered in 0usize..2,
    ) {
        let _guard = ModeGuard::lock();
        set_tidset_mode(TidsetMode::ForceSparse);
        let universe = 8192;
        let mut a = a;
        if clustered == 1 {
            // Long shared block: matched lanes spill across block
            // boundaries and the final partial block carries matches.
            a.extend(1000..1300);
        }
        let ta = Tidset::from_indices(universe, a.iter().copied());
        let tb = Tidset::from_indices(universe, b.iter().copied());
        let run = |path: KernelPath| {
            set_kernel_path(path);
            (
                ta.and(&tb).to_vec(),
                ta.difference(&tb).to_vec(),
                ta.intersection_len(&tb),
                ta.difference_len(&tb),
                ta.is_subset(&tb),
                ta.and(&tb).fingerprint(),
            )
        };
        let simd = run(KernelPath::Simd);
        let scalar = run(KernelPath::Scalar);
        prop_assert_eq!(simd, scalar, "SIMD and scalar kernels must agree");
    }
}

/// A small random dataset with planted structure for the model-identity
/// checks.
fn mode_identity_dataset(seed: u64, n: usize) -> TwoViewDataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::unnamed(6, 5);
    let txs: Vec<Vec<ItemId>> = (0..n)
        .map(|_| {
            let mut t: Vec<ItemId> = (0..11).filter(|_| rng.gen_bool(0.25)).collect();
            if rng.gen_bool(0.4) {
                // Planted association {0,1} <-> {6,7}.
                t.extend([0, 1, 6, 7]);
                t.sort_unstable();
                t.dedup();
            }
            t
        })
        .collect();
    TwoViewDataset::from_transactions(vocab, &txs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SELECT, GREEDY and EXACT fit bit-identical models under
    /// forced-sparse, forced-dense, forced-runs, and adaptive tidset
    /// modes, and under the scalar kernel path. The dataset is rebuilt
    /// under each mode so columns, mining intersections, cover columns
    /// and seed caches all take that representation end to end.
    #[test]
    fn models_identical_across_tidset_modes(seed in 0u64..500, n in 8usize..40) {
        let _guard = ModeGuard::lock();
        let fit_all = || {
            let data = mode_identity_dataset(seed, n);
            let select = translator_select(
                &data,
                &SelectConfig::builder().k(2).minsup(1).build(),
            );
            let greedy = translator_greedy(&data, &GreedyConfig::builder().minsup(1).build());
            let exact = translator_exact_with(
                &data,
                &ExactConfig { max_rules: Some(3), ..ExactConfig::default() },
            );
            (select, greedy, exact)
        };
        set_tidset_mode(TidsetMode::Adaptive);
        let (sel_a, gre_a, exa_a) = fit_all();
        set_tidset_mode(TidsetMode::ForceDense);
        let (sel_d, gre_d, exa_d) = fit_all();
        set_tidset_mode(TidsetMode::ForceSparse);
        let (sel_s, gre_s, exa_s) = fit_all();
        set_tidset_mode(TidsetMode::ForceRuns);
        let (sel_r, gre_r, exa_r) = fit_all();
        set_tidset_mode(TidsetMode::Adaptive);
        set_kernel_path(KernelPath::Scalar);
        let (sel_k, gre_k, exa_k) = fit_all();
        set_kernel_path(KernelPath::Simd);

        for (label, a, other) in [
            ("select dense", &sel_a, &sel_d),
            ("select sparse", &sel_a, &sel_s),
            ("select runs", &sel_a, &sel_r),
            ("select scalar-kernel", &sel_a, &sel_k),
            ("greedy dense", &gre_a, &gre_d),
            ("greedy sparse", &gre_a, &gre_s),
            ("greedy runs", &gre_a, &gre_r),
            ("greedy scalar-kernel", &gre_a, &gre_k),
            ("exact dense", &exa_a, &exa_d),
            ("exact sparse", &exa_a, &exa_s),
            ("exact runs", &exa_a, &exa_r),
            ("exact scalar-kernel", &exa_a, &exa_k),
        ] {
            prop_assert_eq!(&a.table, &other.table, "{} table", label);
            prop_assert!(
                (a.score.l_total - other.score.l_total).abs() < 1e-12,
                "{} score {} vs {}", label, a.score.l_total, other.score.l_total
            );
        }
    }

    /// Mining enumerates identical candidate lists (order included) under
    /// all four modes, and the seed tidsets fingerprint identically.
    #[test]
    fn mining_identical_across_tidset_modes(seed in 0u64..500, n in 8usize..40) {
        let _guard = ModeGuard::lock();
        let mine = || {
            let data = mode_identity_dataset(seed, n);
            let cands = mine_closed_twoview(
                &data,
                &MinerConfig::builder().minsup(1).build(),
            ).candidates;
            let prints: Vec<(u64, u64)> = cands
                .iter()
                .map(|c| {
                    (
                        data.support_set(&c.left).fingerprint(),
                        data.support_set(&c.right).fingerprint(),
                    )
                })
                .collect();
            (cands, prints)
        };
        set_tidset_mode(TidsetMode::Adaptive);
        let (cands_a, prints_a) = mine();
        set_tidset_mode(TidsetMode::ForceDense);
        let (cands_d, prints_d) = mine();
        set_tidset_mode(TidsetMode::ForceSparse);
        let (cands_s, prints_s) = mine();
        set_tidset_mode(TidsetMode::ForceRuns);
        let (cands_r, prints_r) = mine();
        set_tidset_mode(TidsetMode::Adaptive);
        prop_assert_eq!(&cands_a, &cands_d);
        prop_assert_eq!(&cands_a, &cands_s);
        prop_assert_eq!(&cands_a, &cands_r);
        prop_assert_eq!(&prints_a, &prints_d, "fingerprints are repr-independent");
        prop_assert_eq!(&prints_a, &prints_s);
        prop_assert_eq!(&prints_a, &prints_r, "runs fingerprints are repr-independent");
    }
}
