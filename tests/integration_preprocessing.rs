//! End-to-end preprocessing pipeline test: raw attribute-value data →
//! discretisation (paper §6: five equal-height bins, one item per
//! categorical value) → balanced two-view split → TRANSLATOR.
//!
//! This mirrors exactly how the paper prepared the UCI/LUCS-KDD datasets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use twoview::data::discretize::{AttributeTable, Column, PAPER_BINS};
use twoview::data::split::split_into_views;
use twoview::prelude::*;

/// Builds an abalone-like attribute table: numeric measurements plus a
/// categorical sex column, where large specimens have many rings (a real
/// association the pipeline must surface).
fn abalone_like(n: usize, seed: u64) -> AttributeTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut length = Vec::with_capacity(n);
    let mut weight = Vec::with_capacity(n);
    let mut rings = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    for _ in 0..n {
        let size: f64 = rng.gen_range(0.1..1.0);
        length.push(Some(size));
        weight.push(Some(size * 2.0 + rng.gen_range(-0.05..0.05)));
        rings.push(Some((size * 20.0 + rng.gen_range(-1.0..1.0)).round()));
        sex.push(Some(["M", "F", "I"][rng.gen_range(0..3usize)].to_string()));
    }
    let mut t = AttributeTable::new();
    t.add_column("length", Column::Numeric(length)).unwrap();
    t.add_column("weight", Column::Numeric(weight)).unwrap();
    t.add_column("rings", Column::Numeric(rings)).unwrap();
    t.add_column("sex", Column::Categorical(sex)).unwrap();
    t
}

#[test]
fn pipeline_produces_fittable_two_view_data() {
    let table = abalone_like(400, 7);
    let bin = table.binarize(PAPER_BINS).unwrap();
    // 3 numeric columns x 5 bins + 3 sex values = 18 items.
    assert_eq!(bin.item_names.len(), 18);
    assert!(bin.rows.iter().all(|r| r.len() == 4), "one item per column");

    let data = split_into_views(&bin.item_names, &bin.rows).unwrap();
    assert_eq!(data.vocab().n_items(), 18);
    let (dl, dr) = (data.density(Side::Left), data.density(Side::Right));
    assert!((dl - dr).abs() < 0.08, "balanced split: {dl:.3} vs {dr:.3}");

    // The planted length<->weight<->rings correlation must be discoverable.
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(5).build());
    assert!(
        model.compression_pct() < 90.0,
        "correlated bins must compress: {}",
        model.compression_pct()
    );
    assert!(!model.table.is_empty());
}

#[test]
fn equal_height_bins_have_equal_supports() {
    let table = abalone_like(500, 9);
    let bin = table.binarize(PAPER_BINS).unwrap();
    let data = split_into_views(&bin.item_names, &bin.rows).unwrap();
    // Continuous columns (no ties) should cover ~100 of 500 objects per
    // bin; the integer-valued `rings` column legitimately deviates because
    // equal-height binning collapses tied quantiles.
    for name in &bin.item_names {
        if name.starts_with("length:bin") || name.starts_with("weight:bin") {
            let id = data.vocab().id_of(name).unwrap();
            let supp = data.support(id);
            assert!(
                (80..=120).contains(&supp),
                "{name}: support {supp} not near 100"
            );
        }
    }
}

#[test]
fn discretization_is_deterministic() {
    let a = abalone_like(150, 3).binarize(PAPER_BINS).unwrap();
    let b = abalone_like(150, 3).binarize(PAPER_BINS).unwrap();
    assert_eq!(a.item_names, b.item_names);
    assert_eq!(a.rows, b.rows);
}

#[test]
fn uncorrelated_attributes_do_not_compress() {
    // Independent random columns: after the pipeline, TRANSLATOR should
    // find (almost) nothing.
    let mut rng = StdRng::seed_from_u64(11);
    let n = 300;
    let mut t = AttributeTable::new();
    for c in 0..4 {
        let vals: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen::<f64>())).collect();
        t.add_column(format!("rand{c}"), Column::Numeric(vals))
            .unwrap();
    }
    let bin = t.binarize(PAPER_BINS).unwrap();
    let data = split_into_views(&bin.item_names, &bin.rows).unwrap();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(5).build());
    assert!(
        model.compression_pct() > 95.0,
        "random data compressed to {}",
        model.compression_pct()
    );
}
