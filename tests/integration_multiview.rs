//! Integration tests for the multi-view extension (paper §7 future work)
//! and the holdout-evaluated significant-rules baseline, on corpus-derived
//! data.

use twoview::baselines::{magnum_opus_rules, magnum_opus_rules_holdout, MagnumConfig};
use twoview::core::multiview::fit_multiview;
use twoview::data::corpus::PaperDataset;
use twoview::data::multiview::MultiViewDataset;
use twoview::data::sample::holdout_split;
use twoview::prelude::*;

/// Builds a 3-view dataset by splitting House's left view in half and
/// keeping the right view whole: views 0 and 1 both couple to view 2
/// through the planted concepts, and to each other via party/vote links.
fn house_three_views() -> MultiViewDataset {
    let data = PaperDataset::House.generate_scaled(300).dataset;
    let vocab = data.vocab();
    let nl = vocab.n_left();
    let cut = nl / 2;
    let left_a: Vec<String> = (0..cut).map(|l| vocab.name(l as u32).to_string()).collect();
    let left_b: Vec<String> = (cut..nl)
        .map(|l| vocab.name(l as u32).to_string())
        .collect();
    let right: Vec<String> = vocab
        .items_on(Side::Right)
        .map(|i| vocab.name(i).to_string())
        .collect();

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_r = Vec::new();
    for t in 0..data.n_transactions() {
        let lrow = data.row(Side::Left, t);
        rows_a.push(lrow.iter().filter(|&l| l < cut).collect::<Vec<_>>());
        rows_b.push(
            lrow.iter()
                .filter(|&l| l >= cut)
                .map(|l| l - cut)
                .collect::<Vec<_>>(),
        );
        rows_r.push(data.row(Side::Right, t).iter().collect::<Vec<_>>());
    }
    MultiViewDataset::new(vec![
        ("profile".into(), left_a, rows_a),
        ("votes-a".into(), left_b, rows_b),
        ("votes-b".into(), right, rows_r),
    ])
    .expect("valid 3-view data")
}

#[test]
fn multiview_fit_produces_scoreable_pairs() {
    let mv = house_three_views();
    let model = fit_multiview(&mv, &SelectConfig::builder().k(1).minsup(5).build());
    assert_eq!(model.pair_models.len(), 3);
    for (a, b, m) in &model.pair_models {
        assert!(
            m.compression_pct() <= 100.0 + 1e-9,
            "pair ({a},{b}) inflated: {}",
            m.compression_pct()
        );
    }
    // At least one pair must exhibit real structure (the planted concepts
    // span the original left/right boundary).
    let best = model
        .pair_models
        .iter()
        .map(|(_, _, m)| m.compression_pct())
        .fold(f64::INFINITY, f64::min);
    assert!(best < 95.0, "no structured pair found: best {best}");
}

#[test]
fn multiview_pair_projection_round_trips_rules() {
    let mv = house_three_views();
    let pair = mv.pair(0, 2);
    let model = translator_select(&pair, &SelectConfig::builder().k(1).minsup(5).build());
    // Rules fitted on the projection use the prefixed vocabulary.
    for rule in model.table.iter() {
        for i in rule.left.iter() {
            assert!(pair.vocab().name(i).starts_with("profile:"));
        }
        for i in rule.right.iter() {
            assert!(pair.vocab().name(i).starts_with("votes-b:"));
        }
    }
}

#[test]
fn holdout_and_bonferroni_magnum_agree_on_strong_structure() {
    let data = PaperDataset::House.generate_scaled(400).dataset;
    let bonferroni = magnum_opus_rules(&data, &MagnumConfig::default());
    let holdout = magnum_opus_rules_holdout(&data, &MagnumConfig::default(), 0.5, 17);
    assert!(!bonferroni.rules.is_empty());
    assert!(!holdout.rules.is_empty());
    // Both protocols must find some of the same strong pairs.
    let bonferroni_pairs: std::collections::HashSet<_> = bonferroni
        .rules
        .iter()
        .map(|r| (r.left.clone(), r.right.clone()))
        .collect();
    let overlap = holdout
        .rules
        .iter()
        .filter(|r| bonferroni_pairs.contains(&(r.left.clone(), r.right.clone())))
        .count();
    assert!(
        overlap > 0,
        "protocols found disjoint rule sets ({} vs {})",
        bonferroni.rules.len(),
        holdout.rules.len()
    );
}

#[test]
fn holdout_split_supports_translator_generalization_check() {
    // Fit on one half, score on the other: compression transfers when the
    // structure is real (the paper's "rules generalize well").
    let data = PaperDataset::House.generate_scaled(400).dataset;
    let (train, test) = holdout_split(&data, 0.5, 23);
    let model = translator_select(&train, &SelectConfig::builder().k(1).minsup(4).build());
    let train_pct = model.compression_pct();
    let test_score = evaluate_table(&test, &model.table);
    assert!(train_pct < 85.0, "train did not compress: {train_pct}");
    assert!(
        test_score.compression_pct() < 95.0,
        "rules failed to generalize: test L% {}",
        test_score.compression_pct()
    );
}
