//! Minimal CLI option parsing shared by the experiment binaries.

use twoview_core::error::Error;
use twoview_data::corpus::PaperDataset;

use crate::tables::RunScale;

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Run profile.
    pub scale: RunScale,
    /// Dataset filter (`None` = the runner's default set).
    pub datasets: Option<Vec<PaperDataset>>,
    /// Remaining free arguments.
    pub free: Vec<String>,
}

/// Parses `--full`, `--quick`, `--smoke`, `--datasets=a,b,c` and free args.
///
/// Unknown `--flags` surface as [`Error::Config`] — the binaries print the
/// message and exit without panicking; they have no other options by
/// design.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Opts, Error> {
    let mut opts = Opts {
        scale: RunScale::quick(),
        datasets: None,
        free: Vec::new(),
    };
    for arg in args {
        if arg == "--full" {
            opts.scale = RunScale::full();
        } else if arg == "--quick" {
            opts.scale = RunScale::quick();
        } else if arg == "--smoke" {
            opts.scale = RunScale::smoke();
        } else if let Some(list) = arg.strip_prefix("--datasets=") {
            let mut ds = Vec::new();
            for name in list.split(',').filter(|s| !s.is_empty()) {
                match PaperDataset::by_name(name) {
                    Some(d) => ds.push(d),
                    None => return Err(Error::config(format!("unknown dataset: {name}"))),
                }
            }
            opts.datasets = Some(ds);
        } else if arg.starts_with("--") {
            return Err(Error::config(format!(
                "unknown option {arg}; known: --full --quick --smoke --datasets=a,b,c"
            )));
        } else {
            opts.free.push(arg);
        }
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_profiles_and_datasets() {
        let o = parse(["--full".to_string(), "--datasets=wine,house".to_string()]).unwrap();
        assert_eq!(o.scale.max_transactions, usize::MAX);
        assert_eq!(
            o.datasets,
            Some(vec![PaperDataset::Wine, PaperDataset::House])
        );
    }

    #[test]
    fn rejects_unknown_flag_and_dataset() {
        assert!(parse(["--nope".to_string()]).is_err());
        assert!(parse(["--datasets=zzz".to_string()]).is_err());
    }

    #[test]
    fn free_args_pass_through() {
        let o = parse(["house".to_string()]).unwrap();
        assert_eq!(o.free, vec!["house"]);
    }
}
