//! Table 3: TRANSLATOR vs Magnum-Opus-style significant rules vs
//! ReReMi-style redescriptions vs KRIMP — plus the raw association-rule
//! explosion count the paper reports in §6.3.
//!
//! Every baseline's output is converted to a translation table and scored
//! with the paper's MDL criteria, exactly as the paper does.

use std::time::Instant;

use twoview_baselines::{
    krimp, magnum_opus_rules, mine_association_rules, reremi_redescriptions, AssocConfig,
    KrimpConfig, MagnumConfig, ReremiConfig,
};
use twoview_core::{translator_select, SelectConfig, TranslationTable};
use twoview_data::corpus::PaperDataset;
use twoview_data::prelude::*;

use crate::metrics::{format_runtime, max_confidence, MethodMetrics};
use crate::report::{fnum, inum, Align, TextTable};
use crate::tables::RunScale;

/// The default dataset set for Table 3 (kept to sizes where all four
/// methods finish in minutes; `--datasets` overrides).
pub const TABLE3_DEFAULT: [PaperDataset; 6] = [
    PaperDataset::House,
    PaperDataset::Cal500,
    PaperDataset::Mammals,
    PaperDataset::Wine,
    PaperDataset::Yeast,
    PaperDataset::Tictactoe,
];

/// All four rule sets fitted on one dataset, plus their metric rows.
pub struct Table3Block {
    /// Dataset.
    pub dataset: PaperDataset,
    /// Metric rows: TRANSLATOR, MAGNUM-OPUS-style, REREMI-style, KRIMP.
    pub rows: Vec<MethodMetrics>,
    /// The fitted tables, parallel to `rows` (used by Figs. 3–7).
    pub tables: Vec<TranslationTable>,
    /// Number of raw cross-view association rules at thresholds matched to
    /// the TRANSLATOR output (the pattern-explosion count).
    pub assoc_rule_count: usize,
}

/// Runs the Table 3 comparison on one generated dataset.
pub fn table3_block(dataset: PaperDataset, scale: &RunScale) -> Table3Block {
    let data = dataset.generate_scaled(scale.max_transactions).dataset;
    let minsup = dataset.minsup_for(data.n_transactions());

    let mut rows = Vec::new();
    let mut tables = Vec::new();

    // TRANSLATOR-SELECT(1): the representative configuration of the paper.
    let start = Instant::now();
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(minsup).build());
    let translator_runtime = start.elapsed();
    let translator_table = model.table.clone();
    rows.push(MethodMetrics::for_model(
        "TRANSLATOR",
        &data,
        &model,
        translator_runtime,
    ));
    tables.push(model.table);

    // Magnum-Opus-style significant rule discovery.
    let start = Instant::now();
    let magnum = magnum_opus_rules(&data, &MagnumConfig::default());
    let t = magnum.to_translation_table();
    rows.push(MethodMetrics::for_table(
        "MAGNUM OPUS*",
        &data,
        &t,
        start.elapsed(),
    ));
    tables.push(t);

    // ReReMi-style redescription mining.
    let start = Instant::now();
    let reremi = reremi_redescriptions(&data, &ReremiConfig::default());
    let t = reremi.to_translation_table();
    rows.push(MethodMetrics::for_table(
        "REREMI*",
        &data,
        &t,
        start.elapsed(),
    ));
    tables.push(t);

    // KRIMP on the joint data, code table reinterpreted as rules.
    let start = Instant::now();
    let km = krimp(&data, &krimp_config_for(&data, minsup));
    let t = km.to_translation_table(data.vocab());
    rows.push(MethodMetrics::for_table(
        "KRIMP",
        &data,
        &t,
        start.elapsed(),
    ));
    tables.push(t);

    // Association-rule explosion: thresholds matched to TRANSLATOR's
    // weakest rule, the paper's protocol.
    let assoc_rule_count = if translator_table.is_empty() {
        0
    } else {
        let min_conf = translator_table
            .iter()
            .map(|r| max_confidence(&data, &r.left, &r.right))
            .fold(f64::INFINITY, f64::min)
            .max(0.01);
        let min_supp = translator_table
            .iter()
            .map(|r| data.support_count(&r.left.union(&r.right)))
            .min()
            .unwrap_or(1)
            .max(1);
        let mut cfg = AssocConfig::new(min_supp, min_conf);
        cfg.max_rules = 0; // count only
        mine_association_rules(&data, &cfg).total_rules
    };

    Table3Block {
        dataset,
        rows,
        tables,
        assoc_rule_count,
    }
}

/// KRIMP minsup: the paper's per-dataset minsup, further bounded so the
/// candidate set stays tractable on dense joint data.
fn krimp_config_for(data: &TwoViewDataset, minsup: usize) -> KrimpConfig {
    let mut cfg = KrimpConfig::new(minsup.max(data.n_transactions() / 100).max(2));
    cfg.max_candidates = 50_000;
    cfg
}

/// Runs Table 3 on the given datasets.
pub fn table3(datasets: &[PaperDataset], scale: &RunScale) -> Vec<Table3Block> {
    datasets.iter().map(|&ds| table3_block(ds, scale)).collect()
}

/// Renders Table 3 in the paper's layout.
pub fn render_table3(blocks: &[Table3Block]) -> TextTable {
    let mut t = TextTable::new(&[
        ("Dataset", Align::Left),
        ("method", Align::Left),
        ("|T|", Align::Right),
        ("l", Align::Right),
        ("|C|%", Align::Right),
        ("c+", Align::Right),
        ("L%", Align::Right),
        ("runtime", Align::Right),
    ]);
    for block in blocks {
        for m in &block.rows {
            t.row([
                block.dataset.name().to_string(),
                m.method.clone(),
                m.n_rules.to_string(),
                fnum(m.avg_len, 1),
                fnum(m.c_pct, 2),
                fnum(m.avg_cplus, 2),
                fnum(m.l_pct, 2),
                format_runtime(m.runtime),
            ]);
        }
        t.row([
            block.dataset.name().to_string(),
            "assoc. rules (raw)".to_string(),
            inum(block.assoc_rule_count),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        t.separator();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_block_smoke() {
        let block = table3_block(PaperDataset::Wine, &RunScale::smoke());
        assert_eq!(block.rows.len(), 4);
        assert_eq!(block.tables.len(), 4);
        let translator = &block.rows[0];
        let krimp_row = &block.rows[3];
        assert_eq!(translator.method, "TRANSLATOR");
        assert!(translator.l_pct < 100.0, "TRANSLATOR must compress Wine");
        // The paper's headline: KRIMP-as-translation-table compresses far
        // worse than TRANSLATOR (often inflating above 100%).
        assert!(
            krimp_row.l_pct > translator.l_pct,
            "KRIMP {} vs TRANSLATOR {}",
            krimp_row.l_pct,
            translator.l_pct
        );
        // Association rules at matched thresholds vastly outnumber |T|.
        assert!(block.assoc_rule_count > translator.n_rules);
        let rendered = render_table3(&[block]).render();
        assert!(rendered.contains("MAGNUM OPUS*"));
        assert!(rendered.contains("assoc. rules"));
    }
}
