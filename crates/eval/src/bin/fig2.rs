//! Regenerates the paper's **Fig. 2**: evolution of uncovered/error counts
//! and encoded lengths while TRANSLATOR-SELECT(1) builds a translation
//! table for House. Writes `target/experiments/fig2.tsv` (plot-ready).

#![forbid(unsafe_code)]

use twoview_data::corpus::PaperDataset;
use twoview_eval::figures::{fig2, render_fig2};
use twoview_eval::report::write_artifact;

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let dataset = opts
        .datasets
        .as_ref()
        .and_then(|d| d.first().copied())
        .unwrap_or(PaperDataset::House);
    let (points, model) = fig2(dataset, &opts.scale);
    println!(
        "Fig. 2: construction of a translation table for {} with TRANSLATOR-SELECT(1)",
        dataset.name()
    );
    println!(
        "final: |T| = {}, L% = {:.2}\n",
        model.table.len(),
        model.compression_pct()
    );
    let table = render_fig2(&points);
    print!("{}", table.render());
    match write_artifact("fig2.tsv", &table.to_tsv()) {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\nwarning: could not write artifact: {e}"),
    }
}
