//! Regenerates the paper's **Table 3**: TRANSLATOR vs Magnum-Opus-style
//! significant rules vs ReReMi-style redescriptions vs KRIMP, all scored as
//! translation tables. Writes `target/experiments/table3.tsv`.

#![forbid(unsafe_code)]

use twoview_data::corpus::PaperDataset;
use twoview_eval::comparison::{render_table3, table3, TABLE3_DEFAULT};
use twoview_eval::report::write_artifact;

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let datasets: Vec<PaperDataset> = opts.datasets.unwrap_or_else(|| TABLE3_DEFAULT.to_vec());
    let blocks = table3(&datasets, &opts.scale);
    let table = render_table3(&blocks);
    println!("Table 3: comparison with Magnum-Opus-style, ReReMi-style and KRIMP baselines");
    println!("(* reimplementations of the published methods; see DESIGN.md section 4)\n");
    print!("{}", table.render());
    match write_artifact("table3.tsv", &table.to_tsv()) {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\nwarning: could not write artifact: {e}"),
    }
}
