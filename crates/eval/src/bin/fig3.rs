//! Regenerates the paper's **Fig. 3**: bipartite rule-set graphs for CAL500
//! and House under TRANSLATOR-SELECT(1), the Magnum-Opus-style baseline and
//! the ReReMi-style baseline. Prints summary statistics and writes DOT
//! files under `target/experiments/` for rendering with Graphviz.

#![forbid(unsafe_code)]

use twoview_data::corpus::PaperDataset;
use twoview_eval::comparison::table3_block;
use twoview_eval::figures::{rule_graph_dot, rule_graph_stats};
use twoview_eval::report::{fnum, write_artifact, Align, TextTable};

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let datasets = opts
        .datasets
        .unwrap_or_else(|| vec![PaperDataset::Cal500, PaperDataset::House]);

    let mut table = TextTable::new(&[
        ("Dataset", Align::Left),
        ("method", Align::Left),
        ("rules", Align::Right),
        ("L items", Align::Right),
        ("R items", Align::Right),
        ("edges", Align::Right),
        ("bidir edges", Align::Right),
        ("avg degree", Align::Right),
    ]);
    for ds in datasets {
        let block = table3_block(ds, &opts.scale);
        let data = ds.generate_scaled(opts.scale.max_transactions).dataset;
        // TRANSLATOR, MAGNUM OPUS*, REREMI* (KRIMP is not part of Fig. 3).
        for (row, t) in block.rows.iter().zip(&block.tables).take(3) {
            let stats = rule_graph_stats(row.method.clone(), &data, t);
            table.row([
                ds.name().to_string(),
                stats.method.clone(),
                stats.n_rules.to_string(),
                stats.left_items_used.to_string(),
                stats.right_items_used.to_string(),
                stats.n_edges.to_string(),
                stats.n_bidirectional_edges.to_string(),
                fnum(stats.avg_degree, 2),
            ]);
            let dot = rule_graph_dot(&data, t, &format!("{} / {}", ds.name(), row.method));
            let fname = format!(
                "fig3_{}_{}.dot",
                ds.name().to_ascii_lowercase(),
                row.method
                    .to_ascii_lowercase()
                    .replace([' ', '*'], "")
                    .replace('(', "_")
                    .replace(')', "")
            );
            if let Err(e) = write_artifact(&fname, &dot) {
                eprintln!("warning: could not write {fname}: {e}");
            }
        }
        table.separator();
    }
    println!("Fig. 3: bipartite rule-set graph statistics (DOT files in target/experiments/)\n");
    print!("{}", table.render());
    match write_artifact("fig3.tsv", &table.to_tsv()) {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\nwarning: could not write artifact: {e}"),
    }
}
