//! Regenerates the paper's **Table 2** (comparison of the three TRANSLATOR
//! search strategies) and writes `target/experiments/table2.tsv`.
//!
//! Default profile subsamples datasets and caps the EXACT search; run with
//! `--full` for paper-scale parameters (expect multi-hour runtimes, exactly
//! as the paper reports).

#![forbid(unsafe_code)]

use twoview_data::corpus::PaperDataset;
use twoview_eval::report::write_artifact;
use twoview_eval::tables::{render_table2, table2};

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let datasets: Vec<PaperDataset> = opts.datasets.unwrap_or_else(|| {
        PaperDataset::SMALL
            .into_iter()
            .chain(PaperDataset::LARGE)
            .collect()
    });
    let rows = table2(&datasets, &opts.scale);
    let table = render_table2(&rows);
    println!("Table 2: TRANSLATOR-EXACT vs -SELECT(1) vs -SELECT(25) vs -GREEDY\n");
    print!("{}", table.render());
    match write_artifact("table2.tsv", &table.to_tsv()) {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\nwarning: could not write artifact: {e}"),
    }
}
