//! Regenerates the paper's **Figs. 4–7**: example rules with named items.
//!
//! * Fig. 4 — top-3 rules on House (TRANSLATOR / Magnum-Opus-style / ReReMi-style)
//! * Fig. 5 — top-3 rules on Mammals (same three methods)
//! * Fig. 6 — all rules containing `Genre:Rock` on CAL500
//! * Fig. 7 — example rules on Elections (TRANSLATOR)
//!
//! Pass a dataset name (`house`, `mammals`, `cal500`, `elections`) to run a
//! single figure; default runs all four.

#![forbid(unsafe_code)]

use twoview_core::{translator_select, SelectConfig};
use twoview_data::corpus::PaperDataset;
use twoview_eval::comparison::table3_block;
use twoview_eval::figures::{rules_containing, top_rules, ExampleRule};
use twoview_eval::tables::RunScale;

fn print_rules(header: &str, rules: &[ExampleRule]) {
    println!("  {header}");
    if rules.is_empty() {
        println!("    (none)");
    }
    for r in rules {
        println!(
            "    {}   [c+ = {:.2}, supp = {}]",
            r.text, r.cplus, r.support
        );
    }
}

fn three_method_figure(ds: PaperDataset, scale: &RunScale, k: usize, title: &str) {
    println!("{title}\n");
    let block = table3_block(ds, scale);
    let data = ds.generate_scaled(scale.max_transactions).dataset;
    for (row, table) in block.rows.iter().zip(&block.tables).take(3) {
        print_rules(&row.method, &top_rules(&data, table, k));
        println!();
    }
}

fn rock_figure(scale: &RunScale) {
    println!("Fig. 6: rules containing 'Genre:Rock' on CAL500\n");
    let block = table3_block(PaperDataset::Cal500, scale);
    let data = PaperDataset::Cal500
        .generate_scaled(scale.max_transactions)
        .dataset;
    for (row, table) in block.rows.iter().zip(&block.tables).take(3) {
        print_rules(&row.method, &rules_containing(&data, table, "Genre:Rock"));
        println!();
    }
}

fn elections_figure(scale: &RunScale) {
    println!("Fig. 7: example rules on Elections (TRANSLATOR-SELECT(1))\n");
    let data = PaperDataset::Elections
        .generate_scaled(scale.max_transactions)
        .dataset;
    let minsup = PaperDataset::Elections.minsup_for(data.n_transactions());
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(minsup).build());
    print_rules("TRANSLATOR", &top_rules(&data, &model.table, 4));
    println!();
}

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let which: Vec<String> = if opts.free.is_empty() {
        vec![
            "house".into(),
            "mammals".into(),
            "cal500".into(),
            "elections".into(),
        ]
    } else {
        opts.free.clone()
    };
    for name in which {
        match name.as_str() {
            "house" => three_method_figure(
                PaperDataset::House,
                &opts.scale,
                3,
                "Fig. 4: top-3 example rules on House",
            ),
            "mammals" => three_method_figure(
                PaperDataset::Mammals,
                &opts.scale,
                3,
                "Fig. 5: top-3 example rules on Mammals",
            ),
            "cal500" => rock_figure(&opts.scale),
            "elections" => elections_figure(&opts.scale),
            other => {
                eprintln!("unknown figure target: {other} (use house|mammals|cal500|elections)");
                std::process::exit(2);
            }
        }
        println!();
    }
}
