//! Regenerates the paper's **Table 1** (dataset properties) over the
//! synthetic corpus and writes `target/experiments/table1.tsv`.

#![forbid(unsafe_code)]

use twoview_eval::report::write_artifact;
use twoview_eval::tables::{render_table1, table1};

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let rows = table1(&opts.scale);
    let table = render_table1(&rows);
    println!("Table 1: dataset properties (synthetic corpus vs paper)\n");
    print!("{}", table.render());
    match write_artifact("table1.tsv", &table.to_tsv()) {
        Ok(p) => eprintln!("\nwrote {}", p.display()),
        Err(e) => eprintln!("\nwarning: could not write artifact: {e}"),
    }
}
