//! Consolidated reproduction report: runs Table 1, Table 2 (configurable
//! dataset set), Table 3, and the Fig. 2 trace, then writes a single
//! markdown report to `target/experiments/report.md` with paper-reported
//! values side by side.
//!
//! This is the binary behind EXPERIMENTS.md; run with `--full` to redo the
//! comparison at paper scale.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use twoview_data::corpus::PaperDataset;
use twoview_eval::comparison::{table3, TABLE3_DEFAULT};
use twoview_eval::figures::{fig2, render_fig2};
use twoview_eval::metrics::format_runtime;
use twoview_eval::report::write_artifact;
use twoview_eval::tables::{table1, table2};

fn main() {
    let opts = twoview_eval::opts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let mut md = String::new();
    let _ = writeln!(md, "# Reproduction report\n");
    let _ = writeln!(
        md,
        "Profile: max {} transactions, exact node cap {:?}.\n",
        opts.scale.max_transactions, opts.scale.exact_node_cap
    );

    // ---------------------------------------------------------- Table 1
    eprintln!("[report] table 1 ...");
    let _ = writeln!(md, "## Table 1 — dataset properties\n");
    let _ = writeln!(
        md,
        "| dataset | |D| | d_L | d_R | L(D,0) measured | L(D,0) paper |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for row in table1(&opts.scale) {
        let p = row.dataset.paper();
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {:.3} | {:.0} | {:.0} |",
            row.dataset.name(),
            row.n,
            row.d_left,
            row.d_right,
            row.l_empty,
            p.l_empty
        );
    }

    // ---------------------------------------------------------- Table 2
    eprintln!("[report] table 2 ...");
    let datasets: Vec<PaperDataset> = opts.datasets.clone().unwrap_or_else(|| {
        vec![
            PaperDataset::Wine,
            PaperDataset::House,
            PaperDataset::Yeast,
            PaperDataset::Tictactoe,
        ]
    });
    let _ = writeln!(md, "\n## Table 2 — search strategies\n");
    let _ = writeln!(
        md,
        "| dataset | method | \\|T\\| | L% | runtime | paper \\|T\\| | paper L% |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for row in table2(&datasets, &opts.scale) {
        let p = row.dataset.paper();
        for cell in &row.cells {
            let (pt, pl) = match cell.method {
                twoview_eval::tables::Table2Method::Select1 => (
                    p.select1_rules.to_string(),
                    format!("{:.2}", p.select1_l_pct),
                ),
                _ => ("—".into(), "—".into()),
            };
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:.2} | {} | {} | {} |",
                row.dataset.name(),
                cell.method.label(),
                cell.n_rules,
                cell.l_pct,
                format_runtime(cell.runtime),
                pt,
                pl
            );
        }
    }

    // ---------------------------------------------------------- Table 3
    eprintln!("[report] table 3 ...");
    let t3_datasets: Vec<PaperDataset> = opts
        .datasets
        .clone()
        .unwrap_or_else(|| TABLE3_DEFAULT[..3].to_vec());
    let _ = writeln!(md, "\n## Table 3 — baseline comparison\n");
    let _ = writeln!(
        md,
        "| dataset | method | \\|T\\| | l | \\|C\\|% | c+ | L% |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for block in table3(&t3_datasets, &opts.scale) {
        for m in &block.rows {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:.1} | {:.2} | {:.2} | {:.2} |",
                block.dataset.name(),
                m.method,
                m.n_rules,
                m.avg_len,
                m.c_pct,
                m.avg_cplus,
                m.l_pct
            );
        }
        let _ = writeln!(
            md,
            "| {} | assoc. rules (raw) | {} | | | | |",
            block.dataset.name(),
            block.assoc_rule_count
        );
    }

    // ------------------------------------------------------------ Fig 2
    eprintln!("[report] fig 2 ...");
    let (points, model) = fig2(PaperDataset::House, &opts.scale);
    let _ = writeln!(
        md,
        "\n## Fig. 2 — House construction trace (SELECT(1), {} rules, L% = {:.2})\n",
        model.table.len(),
        model.compression_pct()
    );
    let _ = writeln!(md, "```");
    let _ = write!(md, "{}", render_fig2(&points).render());
    let _ = writeln!(md, "```");

    match write_artifact("report.md", &md) {
        Ok(p) => {
            println!("{md}");
            eprintln!("wrote {}", p.display());
        }
        Err(e) => {
            println!("{md}");
            eprintln!("warning: could not write artifact: {e}");
        }
    }
}
