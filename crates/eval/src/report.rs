//! Plain-text table rendering and TSV export for experiment runners.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder mirroring the paper's table layout.
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    align: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers and alignments.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        TextTable {
            header: columns.iter().map(|(h, _)| h.to_string()).collect(),
            align: columns.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Appends a separator row (rendered as dashes).
    pub fn separator(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Number of data rows (separators excluded).
    pub fn n_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.align[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<width$}", width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>width$}", width = widths[i]);
                    }
                }
            }
            // Trim the padding of the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                write_row(&mut out, row);
            }
        }
        out
    }

    /// Writes the table as TSV (no separators).
    pub fn to_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in self.rows.iter().filter(|r| !r.is_empty()) {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Directory where runners drop machine-readable outputs.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Writes `content` under `target/experiments/<name>`, creating directories.
pub fn write_artifact(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = experiments_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Reads an artifact back (test helper).
pub fn read_artifact(path: &Path) -> io::Result<String> {
    fs::read_to_string(path)
}

/// Formats a float with `digits` decimals, using the paper's style.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a big integer with thousands separators (paper style `48,842`).
pub fn inum(v: usize) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&[("name", Align::Left), ("value", Align::Right)]);
        t.row(["abc".into(), "1".into()]);
        t.row(["x".into(), "1234".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name  value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "abc       1");
        assert_eq!(lines[3], "x      1234");
    }

    #[test]
    fn separator_rows() {
        let mut t = TextTable::new(&[("a", Align::Left)]);
        t.row(["1".into()]);
        t.separator();
        t.row(["2".into()]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.render().lines().count(), 5);
    }

    #[test]
    fn tsv_skips_separators() {
        let mut t = TextTable::new(&[("a", Align::Left), ("b", Align::Right)]);
        t.row(["1".into(), "2".into()]);
        t.separator();
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(&[("a", Align::Left)]);
        t.row(["1".into(), "2".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(inum(5), "5");
        assert_eq!(inum(48_842), "48,842");
        assert_eq!(inum(2_845_491), "2,845,491");
        assert_eq!(fnum(54.8132, 2), "54.81");
    }
}
