//! Runners for the paper's figures.
//!
//! * **Fig. 2** — evolution of `|U|`, `|E|` and encoded lengths while
//!   SELECT(1) builds a table for House;
//! * **Fig. 3** — bipartite rule-set graphs (rendered as DOT + summary
//!   statistics) — see [`crate::comparison`] for the baseline rule sets;
//! * **Figs. 4–7** — example rules with named items.

use twoview_core::{translator_select, SelectConfig, TranslationTable, TranslatorModel};
use twoview_data::corpus::PaperDataset;
use twoview_data::prelude::*;

use crate::metrics::max_confidence;
use crate::report::{fnum, Align, TextTable};
use crate::tables::RunScale;

// ------------------------------------------------------------------ Fig 2

/// One point of the Fig. 2 series (state after adding rule `i`).
#[derive(Clone, Debug)]
pub struct Fig2Point {
    /// Number of rules in the table (x-axis).
    pub n_rules: usize,
    /// `|U_L|`, `|U_R|` — uncovered ones per side.
    pub uncovered_left: usize,
    /// See `uncovered_left`.
    pub uncovered_right: usize,
    /// `|E_L|`, `|E_R|` — erroneous ones per side.
    pub errors_left: usize,
    /// See `errors_left`.
    pub errors_right: usize,
    /// `L(D_{L→R} | T) = L(C_R | T)`.
    pub l_left_to_right: f64,
    /// `L(D_{L←R} | T) = L(C_L | T)`.
    pub l_right_to_left: f64,
    /// `L(T)`.
    pub l_table: f64,
    /// `L(D_{L↔R}, T)` — the total.
    pub l_total: f64,
}

/// Fig. 2: runs SELECT(1) on the given dataset (House in the paper) and
/// returns the per-rule evolution, including the empty-table point.
pub fn fig2(dataset: PaperDataset, scale: &RunScale) -> (Vec<Fig2Point>, TranslatorModel) {
    let data = dataset.generate_scaled(scale.max_transactions).dataset;
    let minsup = dataset.minsup_for(data.n_transactions());
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(minsup).build());

    let codes = twoview_core::CodeLengths::new(&data);
    let l_empty = codes.empty_model(&data);
    let mut points = vec![Fig2Point {
        n_rules: 0,
        uncovered_left: data.ones(Side::Left),
        uncovered_right: data.ones(Side::Right),
        errors_left: 0,
        errors_right: 0,
        // With an empty table each side's correction table is the data.
        l_left_to_right: data
            .vocab()
            .items_on(Side::Right)
            .map(|i| data.support(i) as f64 * codes.item(i))
            .sum(),
        l_right_to_left: data
            .vocab()
            .items_on(Side::Left)
            .map(|i| data.support(i) as f64 * codes.item(i))
            .sum(),
        l_table: 0.0,
        l_total: l_empty,
    }];
    for step in &model.trace {
        points.push(Fig2Point {
            n_rules: step.rule_index + 1,
            uncovered_left: step.uncovered_left,
            uncovered_right: step.uncovered_right,
            errors_left: step.errors_left,
            errors_right: step.errors_right,
            l_left_to_right: step.l_correction_right,
            l_right_to_left: step.l_correction_left,
            l_table: step.l_table,
            l_total: step.l_total,
        });
    }
    (points, model)
}

/// Renders the Fig. 2 series as a text table (and TSV via
/// [`TextTable::to_tsv`]).
pub fn render_fig2(points: &[Fig2Point]) -> TextTable {
    let mut t = TextTable::new(&[
        ("|T|", Align::Right),
        ("|U_L|", Align::Right),
        ("|U_R|", Align::Right),
        ("|E_L|", Align::Right),
        ("|E_R|", Align::Right),
        ("L(L->R|T)", Align::Right),
        ("L(L<-R|T)", Align::Right),
        ("L(T)", Align::Right),
        ("L(total)", Align::Right),
    ]);
    for p in points {
        t.row([
            p.n_rules.to_string(),
            p.uncovered_left.to_string(),
            p.uncovered_right.to_string(),
            p.errors_left.to_string(),
            p.errors_right.to_string(),
            fnum(p.l_left_to_right, 1),
            fnum(p.l_right_to_left, 1),
            fnum(p.l_table, 1),
            fnum(p.l_total, 1),
        ]);
    }
    t
}

// ------------------------------------------------------------------ Fig 3

/// Summary statistics of a bipartite rule-set graph (the quantitative
/// content of the paper's Fig. 3 visualisations).
#[derive(Clone, Debug)]
pub struct RuleGraphStats {
    /// Method label.
    pub method: String,
    /// Number of rules (middle nodes).
    pub n_rules: usize,
    /// Distinct left items touched by any rule.
    pub left_items_used: usize,
    /// Distinct right items touched by any rule.
    pub right_items_used: usize,
    /// Edges (rule-item incidences).
    pub n_edges: usize,
    /// Edges belonging to bidirectional rules (drawn black in the paper).
    pub n_bidirectional_edges: usize,
    /// Average items per rule.
    pub avg_degree: f64,
}

/// Computes the Fig. 3 graph statistics for one rule set.
pub fn rule_graph_stats(
    method: impl Into<String>,
    data: &TwoViewDataset,
    table: &TranslationTable,
) -> RuleGraphStats {
    let vocab = data.vocab();
    let mut left_used = Bitmap::new(vocab.n_left());
    let mut right_used = Bitmap::new(vocab.n_right());
    let mut edges = 0usize;
    let mut bidir_edges = 0usize;
    for rule in table.iter() {
        let deg = rule.len();
        edges += deg;
        if rule.direction == twoview_core::Direction::Both {
            bidir_edges += deg;
        }
        for i in rule.left.iter() {
            left_used.insert(vocab.local_index(i));
        }
        for i in rule.right.iter() {
            right_used.insert(vocab.local_index(i));
        }
    }
    RuleGraphStats {
        method: method.into(),
        n_rules: table.len(),
        left_items_used: left_used.len(),
        right_items_used: right_used.len(),
        n_edges: edges,
        n_bidirectional_edges: bidir_edges,
        avg_degree: if table.is_empty() {
            0.0
        } else {
            edges as f64 / table.len() as f64
        },
    }
}

/// Emits the bipartite rule graph in Graphviz DOT format, mirroring the
/// paper's drawing: items left/right, rules in the middle, grey edges for
/// unidirectional rules and black for bidirectional ones.
pub fn rule_graph_dot(data: &TwoViewDataset, table: &TranslationTable, title: &str) -> String {
    let vocab = data.vocab();
    let mut out = String::new();
    out.push_str(&format!("graph \"{title}\" {{\n  rankdir=LR;\n"));
    out.push_str("  node [shape=point];\n");
    for (ri, rule) in table.iter().enumerate() {
        let color = if rule.direction == twoview_core::Direction::Both {
            "black"
        } else {
            "grey"
        };
        for i in rule.left.iter() {
            out.push_str(&format!(
                "  \"L:{}\" -- \"r{}\" [color={}];\n",
                vocab.name(i),
                ri,
                color
            ));
        }
        for i in rule.right.iter() {
            out.push_str(&format!(
                "  \"r{}\" -- \"R:{}\" [color={}];\n",
                ri,
                vocab.name(i),
                color
            ));
        }
    }
    out.push_str("}\n");
    out
}

// -------------------------------------------------------------- Figs 4-7

/// A displayable example rule (Figs. 4–7).
#[derive(Clone, Debug)]
pub struct ExampleRule {
    /// Rendered rule text (named items).
    pub text: String,
    /// `c+` of the rule.
    pub cplus: f64,
    /// Absolute support of the joint itemset.
    pub support: usize,
}

/// Extracts the top-`k` rules of a table by construction order (the first
/// rules added are the strongest under greedy compression), rendered with
/// item names.
pub fn top_rules(data: &TwoViewDataset, table: &TranslationTable, k: usize) -> Vec<ExampleRule> {
    table
        .iter()
        .take(k)
        .map(|r| ExampleRule {
            text: format!("{}", r.display(data.vocab())),
            cplus: max_confidence(data, &r.left, &r.right),
            support: data.support_count(&r.left.union(&r.right)),
        })
        .collect()
}

/// Extracts every rule containing the given item (Fig. 6: `Genre:Rock`).
pub fn rules_containing(
    data: &TwoViewDataset,
    table: &TranslationTable,
    item_name: &str,
) -> Vec<ExampleRule> {
    let Some(item) = data.vocab().id_of(item_name) else {
        return Vec::new();
    };
    table
        .iter()
        .filter(|r| r.left.contains(item) || r.right.contains(item))
        .map(|r| ExampleRule {
            text: format!("{}", r.display(data.vocab())),
            cplus: max_confidence(data, &r.left, &r.right),
            support: data.support_count(&r.left.union(&r.right)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoview_core::{Direction, TranslationRule};

    #[test]
    fn fig2_series_starts_at_empty_and_decreases() {
        let (points, model) = fig2(PaperDataset::House, &RunScale::smoke());
        assert_eq!(points.len(), model.table.len() + 1);
        assert_eq!(points[0].n_rules, 0);
        assert_eq!(points[0].errors_left + points[0].errors_right, 0);
        for w in points.windows(2) {
            assert!(w[1].l_total < w[0].l_total, "total length must decrease");
            assert!(w[1].uncovered_right <= w[0].uncovered_right);
            assert!(w[1].errors_right >= w[0].errors_right);
        }
        // The decomposition must always sum up.
        for p in &points {
            assert!((p.l_total - (p.l_left_to_right + p.l_right_to_left + p.l_table)).abs() < 1e-6);
        }
        let rendered = render_fig2(&points).render();
        assert!(rendered.contains("L(T)"));
    }

    #[test]
    fn graph_stats_count_edges() {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        let data = TwoViewDataset::from_transactions(vocab, &[vec![0, 1, 2, 3], vec![0, 2]]);
        let table = TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::from_items([0]),
                ItemSet::from_items([2]),
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::from_items([3]),
                Direction::Forward,
            ),
        ]);
        let stats = rule_graph_stats("test", &data, &table);
        assert_eq!(stats.n_rules, 2);
        assert_eq!(stats.n_edges, 5);
        assert_eq!(stats.n_bidirectional_edges, 2);
        assert_eq!(stats.left_items_used, 2);
        assert_eq!(stats.right_items_used, 2);
        let dot = rule_graph_dot(&data, &table, "toy");
        assert!(dot.contains("\"L:a\" -- \"r0\""));
        assert!(dot.contains("color=grey"));
    }

    #[test]
    fn example_rule_extraction() {
        let vocab = Vocabulary::new(["a"], ["x", "y"]);
        let data = TwoViewDataset::from_transactions(vocab, &[vec![0, 1], vec![0, 1, 2]]);
        let table = TranslationTable::from_rules([TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([1]),
            Direction::Both,
        )]);
        let top = top_rules(&data, &table, 3);
        assert_eq!(top.len(), 1);
        assert!(top[0].text.contains("{a} <-> {x}"));
        assert_eq!(top[0].support, 2);
        assert!((top[0].cplus - 1.0).abs() < 1e-12);
        assert_eq!(rules_containing(&data, &table, "x").len(), 1);
        assert_eq!(rules_containing(&data, &table, "y").len(), 0);
        assert_eq!(rules_containing(&data, &table, "zzz").len(), 0);
    }
}
