//! Runners for the paper's tables (1 and 2; Table 3 lives in
//! [`crate::comparison`] because it needs the baselines).

use std::time::{Duration, Instant};

use twoview_core::{
    translator_exact_with, translator_greedy, translator_select, ExactConfig, GreedyConfig,
    SelectConfig,
};
use twoview_data::corpus::PaperDataset;
use twoview_data::prelude::*;
use twoview_mining::{mine_closed_twoview, MinerConfig};

use crate::metrics::format_runtime;
use crate::report::{fnum, inum, Align, TextTable};

/// Scaling knobs shared by the experiment runners.
///
/// Paper-scale runs of TRANSLATOR-EXACT take hours-to-days (the paper
/// reports 2 days for ChessKRvK), so the default profile subsamples the
/// corpus and caps the exact search; `--full` restores paper-scale
/// parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Subsample each dataset to at most this many transactions.
    pub max_transactions: usize,
    /// Node cap per EXACT iteration (`None` = truly exact).
    pub exact_node_cap: Option<u64>,
    /// Run TRANSLATOR-EXACT at all.
    pub run_exact: bool,
}

impl RunScale {
    /// Laptop-friendly profile (default): subsampled data, capped search.
    /// The candidate seed keeps the capped EXACT at least as good as
    /// SELECT(1) per iteration.
    pub fn quick() -> Self {
        RunScale {
            max_transactions: 1500,
            exact_node_cap: Some(1_000_000),
            run_exact: true,
        }
    }

    /// Paper-scale profile: full datasets, uncapped exact search.
    pub fn full() -> Self {
        RunScale {
            max_transactions: usize::MAX,
            exact_node_cap: None,
            run_exact: true,
        }
    }

    /// Tiny profile for tests and smoke benches.
    pub fn smoke() -> Self {
        RunScale {
            max_transactions: 300,
            exact_node_cap: Some(200_000),
            run_exact: true,
        }
    }
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1 (dataset properties).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset.
    pub dataset: PaperDataset,
    /// Generated `|D|`.
    pub n: usize,
    /// `|I_L|`, `|I_R|`.
    pub n_left: usize,
    /// See `n_left`.
    pub n_right: usize,
    /// Measured densities.
    pub d_left: f64,
    /// See `d_left`.
    pub d_right: f64,
    /// Measured `L(D, ∅)` in bits.
    pub l_empty: f64,
}

/// Computes Table 1 over the generated corpus.
pub fn table1(scale: &RunScale) -> Vec<Table1Row> {
    PaperDataset::ALL
        .into_iter()
        .map(|ds| {
            let data = ds.generate_scaled(scale.max_transactions).dataset;
            let codes = twoview_core::CodeLengths::new(&data);
            Table1Row {
                dataset: ds,
                n: data.n_transactions(),
                n_left: data.vocab().n_left(),
                n_right: data.vocab().n_right(),
                d_left: data.density(Side::Left),
                d_right: data.density(Side::Right),
                l_empty: codes.empty_model(&data),
            }
        })
        .collect()
}

/// Renders Table 1 next to the paper's reported values.
pub fn render_table1(rows: &[Table1Row]) -> TextTable {
    let mut t = TextTable::new(&[
        ("Dataset", Align::Left),
        ("|D|", Align::Right),
        ("|IL|", Align::Right),
        ("|IR|", Align::Right),
        ("dL", Align::Right),
        ("dR", Align::Right),
        ("L(D,0)", Align::Right),
        ("paper L(D,0)", Align::Right),
    ]);
    for r in rows {
        let p = r.dataset.paper();
        t.row([
            r.dataset.name().to_string(),
            inum(r.n),
            r.n_left.to_string(),
            r.n_right.to_string(),
            fnum(r.d_left, 3),
            fnum(r.d_right, 3),
            inum(r.l_empty.round() as usize),
            inum(p.l_empty.round() as usize),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Table 2

/// The four method instances compared in Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Table2Method {
    /// TRANSLATOR-EXACT.
    Exact,
    /// TRANSLATOR-SELECT(1).
    Select1,
    /// TRANSLATOR-SELECT(25).
    Select25,
    /// TRANSLATOR-GREEDY.
    Greedy,
}

impl Table2Method {
    /// All methods in paper column order.
    pub const ALL: [Table2Method; 4] = [
        Table2Method::Exact,
        Table2Method::Select1,
        Table2Method::Select25,
        Table2Method::Greedy,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Table2Method::Exact => "T-EXACT",
            Table2Method::Select1 => "T-SELECT(1)",
            Table2Method::Select25 => "T-SELECT(25)",
            Table2Method::Greedy => "T-GREEDY(1)",
        }
    }
}

/// One measurement cell of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Cell {
    /// The method that produced this cell.
    pub method: Table2Method,
    /// `|T|`.
    pub n_rules: usize,
    /// `L%`.
    pub l_pct: f64,
    /// Fitting wall-clock time (candidate mining included).
    pub runtime: Duration,
    /// Whether a safety valve fired.
    pub truncated: bool,
}

/// One dataset row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Dataset.
    pub dataset: PaperDataset,
    /// The minsup used (scaled from the paper's Table 2 value).
    pub minsup: usize,
    /// `|D|` actually used (after scaling).
    pub n: usize,
    /// Cells for the methods that ran.
    pub cells: Vec<Table2Cell>,
}

/// Runs one method on one generated dataset.
pub fn run_method(
    data: &TwoViewDataset,
    method: Table2Method,
    minsup: usize,
    scale: &RunScale,
) -> Table2Cell {
    let start = Instant::now();
    let (model, truncated) = match method {
        Table2Method::Exact => {
            let cfg = ExactConfig {
                max_nodes: scale.exact_node_cap,
                ..ExactConfig::default()
            };
            let m = translator_exact_with(data, &cfg);
            let tr = m.truncated;
            (m, tr)
        }
        Table2Method::Select1 => {
            let m = translator_select(data, &SelectConfig::builder().k(1).minsup(minsup).build());
            let tr = m.truncated;
            (m, tr)
        }
        Table2Method::Select25 => {
            let m = translator_select(data, &SelectConfig::builder().k(25).minsup(minsup).build());
            let tr = m.truncated;
            (m, tr)
        }
        Table2Method::Greedy => {
            let m = translator_greedy(data, &GreedyConfig::builder().minsup(minsup).build());
            let tr = m.truncated;
            (m, tr)
        }
    };
    Table2Cell {
        method,
        n_rules: model.table.len(),
        l_pct: model.compression_pct(),
        runtime: start.elapsed(),
        truncated,
    }
}

/// Runs Table 2 for the given datasets. EXACT runs only on the small
/// datasets (the paper has no exact results for the large ones either).
pub fn table2(datasets: &[PaperDataset], scale: &RunScale) -> Vec<Table2Row> {
    datasets
        .iter()
        .map(|&ds| {
            let data = ds.generate_scaled(scale.max_transactions).dataset;
            let n = data.n_transactions();
            let minsup = ds.minsup_for(n);
            let small = PaperDataset::SMALL.contains(&ds);
            let mut cells = Vec::new();
            for method in Table2Method::ALL {
                if method == Table2Method::Exact && (!small || !scale.run_exact) {
                    continue;
                }
                eprintln!("[table2] {} / {} ...", ds.name(), method.label());
                let cell = run_method(&data, method, minsup, scale);
                eprintln!(
                    "[table2] {} / {}: |T|={} L%={:.2} ({})",
                    ds.name(),
                    method.label(),
                    cell.n_rules,
                    cell.l_pct,
                    format_runtime(cell.runtime)
                );
                cells.push(cell);
            }
            Table2Row {
                dataset: ds,
                minsup,
                n,
                cells,
            }
        })
        .collect()
}

/// Renders Table 2 rows in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> TextTable {
    let mut t = TextTable::new(&[
        ("Dataset", Align::Left),
        ("msup", Align::Right),
        ("method", Align::Left),
        ("|T|", Align::Right),
        ("L%", Align::Right),
        ("runtime", Align::Right),
        ("note", Align::Left),
    ]);
    for row in rows {
        for cell in &row.cells {
            t.row([
                row.dataset.name().to_string(),
                row.minsup.to_string(),
                cell.method.label().to_string(),
                cell.n_rules.to_string(),
                fnum(cell.l_pct, 2),
                format_runtime(cell.runtime),
                if cell.truncated { "capped" } else { "" }.to_string(),
            ]);
        }
        t.separator();
    }
    t
}

/// Convenience: candidate-count for a dataset at its scaled minsup (used by
/// reports to mirror the paper's "10K-200K candidates" remark).
pub fn candidate_count(data: &TwoViewDataset, minsup: usize) -> usize {
    mine_closed_twoview(data, &MinerConfig::builder().minsup(minsup).build())
        .candidates
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_datasets_and_sane_stats() {
        let rows = table1(&RunScale::smoke());
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert!(r.n > 0 && r.n <= 300);
            assert!(r.d_left > 0.0 && r.d_left < 1.0);
            assert!(r.l_empty > 0.0);
            let p = r.dataset.paper();
            assert_eq!(r.n_left, p.n_left);
            assert_eq!(r.n_right, p.n_right);
        }
        let rendered = render_table1(&rows).render();
        assert!(rendered.contains("Abalone"));
        assert!(rendered.contains("Yeast"));
    }

    #[test]
    fn table2_smoke_on_two_datasets() {
        let scale = RunScale::smoke();
        let rows = table2(&[PaperDataset::Wine, PaperDataset::House], &scale);
        assert_eq!(rows.len(), 2);
        // Wine is SMALL -> 4 methods; House is LARGE -> 3 methods.
        assert_eq!(rows[0].cells.len(), 4);
        assert_eq!(rows[1].cells.len(), 3);
        for row in &rows {
            for cell in &row.cells {
                assert!(cell.l_pct > 0.0 && cell.l_pct <= 100.5, "{cell:?}");
            }
        }
        let rendered = render_table2(&rows).render();
        assert!(rendered.contains("T-GREEDY(1)"));
    }
}
