//! # twoview-eval
//!
//! Evaluation harness: metrics (paper §6) and runners that regenerate every
//! table and figure of the paper's evaluation section.
//!
//! Binaries (all accept `--full` for paper-scale runs; default is a
//! laptop-friendly subsampled profile):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — dataset properties |
//! | `table2`   | Table 2 — EXACT / SELECT(1) / SELECT(25) / GREEDY |
//! | `table3`   | Table 3 — TRANSLATOR vs Magnum-Opus-style vs ReReMi-style vs KRIMP |
//! | `fig2`     | Fig. 2 — construction trace on House |
//! | `fig3`     | Fig. 3 — rule-set graphs for CAL500 & House |
//! | `fig4to7`  | Figs. 4–7 — example rules (House, Mammals, CAL500, Elections) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod figures;
pub mod metrics;
pub mod opts;
pub mod report;
pub mod tables;

pub use metrics::{avg_max_confidence, format_runtime, max_confidence, MethodMetrics};
pub use tables::RunScale;
