//! Evaluation metrics (paper §6, "Evaluation criteria").
//!
//! * `|T|` — number of rules;
//! * `l` — average rule length (items per rule);
//! * `L%` — compression ratio `100 · L(D,T) / L(D,∅)`;
//! * `|C|%` — correction density `100 · |C| / ((|I_L|+|I_R|)·|D|)`;
//! * `c+` — maximum confidence `max{c(X→Y), c(Y→X)}`, averaged over the
//!   rule set;
//! * runtime.

use std::time::Duration;

use twoview_core::{evaluate_table, TranslationTable, TranslatorModel};
use twoview_data::prelude::*;

/// Maximum confidence of a rule: `c+(X ◇ Y) = max{c(X→Y), c(X←Y)}` where
/// `c(X→Y) = |supp(X ∪ Y)| / |supp(X)|` (paper §6).
pub fn max_confidence(data: &TwoViewDataset, left: &ItemSet, right: &ItemSet) -> f64 {
    let sx = data.support_count(left);
    let sy = data.support_count(right);
    let sxy = data.support_count(&left.union(right));
    let fwd = if sx == 0 { 0.0 } else { sxy as f64 / sx as f64 };
    let bwd = if sy == 0 { 0.0 } else { sxy as f64 / sy as f64 };
    fwd.max(bwd)
}

/// Average `c+` over a translation table (0 for an empty table).
pub fn avg_max_confidence(data: &TwoViewDataset, table: &TranslationTable) -> f64 {
    if table.is_empty() {
        return 0.0;
    }
    let total: f64 = table
        .iter()
        .map(|r| max_confidence(data, &r.left, &r.right))
        .sum();
    total / table.len() as f64
}

/// The full metric row reported in the paper's comparison tables.
#[derive(Clone, Debug)]
pub struct MethodMetrics {
    /// Method label (e.g. `T-SELECT(1)`).
    pub method: String,
    /// `|T|`.
    pub n_rules: usize,
    /// Average rule length `l`.
    pub avg_len: f64,
    /// Compression ratio `L%`.
    pub l_pct: f64,
    /// Correction density `|C|%`.
    pub c_pct: f64,
    /// Average maximum confidence `c+`.
    pub avg_cplus: f64,
    /// Wall-clock runtime of the fitting stage.
    pub runtime: Duration,
}

impl MethodMetrics {
    /// Computes the metric row for an arbitrary translation table
    /// (re-evaluating the cover from scratch — works for baseline-derived
    /// tables too).
    pub fn for_table(
        method: impl Into<String>,
        data: &TwoViewDataset,
        table: &TranslationTable,
        runtime: Duration,
    ) -> MethodMetrics {
        let score = evaluate_table(data, table);
        MethodMetrics {
            method: method.into(),
            n_rules: table.len(),
            avg_len: table.avg_rule_length(),
            l_pct: score.compression_pct(),
            c_pct: score.correction_pct(),
            avg_cplus: avg_max_confidence(data, table),
            runtime,
        }
    }

    /// Computes the metric row for a fitted TRANSLATOR model (reuses the
    /// model's final score instead of re-covering).
    pub fn for_model(
        method: impl Into<String>,
        data: &TwoViewDataset,
        model: &TranslatorModel,
        runtime: Duration,
    ) -> MethodMetrics {
        MethodMetrics {
            method: method.into(),
            n_rules: model.table.len(),
            avg_len: model.table.avg_rule_length(),
            l_pct: model.score.compression_pct(),
            c_pct: model.score.correction_pct(),
            avg_cplus: avg_max_confidence(data, &model.table),
            runtime,
        }
    }
}

/// Formats a [`Duration`] the way the paper prints runtimes
/// (`< 1 s`, `42 s`, `8 m 16 s`, `2 h 47 m`, `2 d 1 h`).
pub fn format_runtime(d: Duration) -> String {
    let secs = d.as_secs();
    if d < Duration::from_secs(1) {
        return "< 1 s".to_string();
    }
    if secs < 60 {
        return format!("{secs} s");
    }
    let (mins, rem_s) = (secs / 60, secs % 60);
    if mins < 60 {
        return format!("{mins} m {rem_s:02} s");
    }
    let (hours, rem_m) = (mins / 60, mins % 60);
    if hours < 24 {
        return format!("{hours} h {rem_m:02} m");
    }
    format!("{} d {:02} h", hours / 24, hours % 24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoview_core::{Direction, TranslationRule};

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2],
                vec![0],
                vec![2],
                vec![1, 3],
            ],
        )
    }

    #[test]
    fn max_confidence_takes_the_stronger_direction() {
        let d = toy();
        // supp(a)=4, supp(x)=4, supp(ax)=3: both directions 3/4.
        let a = ItemSet::from_items([0]);
        let x = ItemSet::from_items([2]);
        assert!((max_confidence(&d, &a, &x) - 0.75).abs() < 1e-12);
        // supp(b)=1, supp(y)=1, supp(by)=1: confidence 1 both ways.
        let b = ItemSet::from_items([1]);
        let y = ItemSet::from_items([3]);
        assert!((max_confidence(&d, &b, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_row_for_table() {
        let d = toy();
        let table = TranslationTable::from_rules([TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([2]),
            Direction::Both,
        )]);
        let m = MethodMetrics::for_table("test", &d, &table, Duration::from_millis(5));
        assert_eq!(m.n_rules, 1);
        assert!((m.avg_len - 2.0).abs() < 1e-12);
        assert!(m.l_pct > 0.0 && m.l_pct < 200.0);
        assert!(m.c_pct > 0.0);
        assert!((m.avg_cplus - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_table_confidence_zero() {
        let d = toy();
        assert_eq!(avg_max_confidence(&d, &TranslationTable::new()), 0.0);
    }

    #[test]
    fn runtime_formatting() {
        assert_eq!(format_runtime(Duration::from_millis(200)), "< 1 s");
        assert_eq!(format_runtime(Duration::from_secs(42)), "42 s");
        assert_eq!(format_runtime(Duration::from_secs(8 * 60 + 16)), "8 m 16 s");
        assert_eq!(
            format_runtime(Duration::from_secs(2 * 3600 + 47 * 60)),
            "2 h 47 m"
        );
        assert_eq!(
            format_runtime(Duration::from_secs(2 * 86_400 + 3600)),
            "2 d 01 h"
        );
    }
}
