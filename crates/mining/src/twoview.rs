//! Two-view candidate mining: itemsets that span both views.
//!
//! TRANSLATOR-SELECT and -GREEDY (paper §5.3) take as candidates all closed
//! frequent itemsets `Z` with `Z ∩ I_L ≠ ∅` and `Z ∩ I_R ≠ ∅`. A candidate
//! is stored pre-split into its two view projections, since every consumer
//! (rule construction, gain computation) needs them separately.

use std::borrow::Cow;
use std::sync::OnceLock;

use twoview_data::prelude::*;

use crate::closed::mine_closed;
use crate::eclat::{mine_frequent, MinerConfig};

/// A frequent itemset spanning both views, split into its projections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoViewCandidate {
    /// `Z ∩ I_L` (non-empty).
    pub left: ItemSet,
    /// `Z ∩ I_R` (non-empty).
    pub right: ItemSet,
    /// `|supp(Z)|` over the whole dataset.
    pub support: usize,
}

impl TwoViewCandidate {
    /// Total number of items `|Z|`.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Candidates are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The joint itemset `Z`.
    pub fn joint(&self) -> ItemSet {
        self.left.union(&self.right)
    }
}

/// The outcome of candidate mining.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// Candidates, in miner enumeration order.
    pub candidates: Vec<TwoViewCandidate>,
    /// Whether enumeration hit the `max_itemsets` valve.
    pub truncated: bool,
}

/// Process-wide registry cells for candidate mining (`mine.*` names).
struct MineMetrics {
    runs: twoview_runtime::obs::Counter,
    candidates: twoview_runtime::obs::Counter,
}

fn mine_metrics() -> &'static MineMetrics {
    static METRICS: OnceLock<MineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MineMetrics {
        runs: twoview_runtime::obs::counter("mine.runs"),
        candidates: twoview_runtime::obs::counter("mine.candidates"),
    })
}

fn finish_mine(span: &mut twoview_runtime::obs::SpanGuard, set: &CandidateSet) {
    let metrics = mine_metrics();
    metrics.runs.incr();
    metrics.candidates.add(set.candidates.len() as u64);
    span.field("n_candidates", set.candidates.len())
        .field("truncated", set.truncated);
}

/// Mines closed frequent two-view itemsets (the paper's candidate class).
pub fn mine_closed_twoview(data: &TwoViewDataset, cfg: &MinerConfig) -> CandidateSet {
    twoview_runtime::faults::maybe_panic(twoview_runtime::faults::points::MINE_PANIC);
    let mut span = twoview_runtime::obs::span("mine.closed");
    let res = mine_closed(data, cfg);
    let set = CandidateSet {
        candidates: split_spanning(data, res.itemsets.into_iter()),
        truncated: res.truncated,
    };
    finish_mine(&mut span, &set);
    set
}

/// Mines **all** frequent two-view itemsets (ablation: SELECT on non-closed
/// candidates; also the raw search space of association rule mining).
pub fn mine_frequent_twoview(data: &TwoViewDataset, cfg: &MinerConfig) -> CandidateSet {
    twoview_runtime::faults::maybe_panic(twoview_runtime::faults::points::MINE_PANIC);
    let mut span = twoview_runtime::obs::span("mine.frequent");
    let res = mine_frequent(data, cfg);
    let set = CandidateSet {
        candidates: split_spanning(data, res.itemsets.into_iter()),
        truncated: res.truncated,
    };
    finish_mine(&mut span, &set);
    set
}

/// A mined candidate set cached for reuse across many fits.
///
/// This is the offline half of the serving split: mine once (the expensive
/// part), then serve any number of TRANSLATOR fits from the cache. Two
/// reuse devices:
///
/// * **minsup narrowing** ([`CandidateCache::at_minsup`]) — closedness is a
///   property of supports alone, independent of the mining threshold, so
///   the closed candidates at any `minsup ≥` the mined base are *exactly*
///   the cached candidates with `support ≥ minsup`, in the same
///   enumeration order (the DFS visits surviving subtrees in an order
///   that does not depend on the threshold). The same argument holds for
///   all-frequent candidate sets. A fit at a narrower minsup therefore
///   reuses the cache with a filter instead of re-mining; only `minsup <`
///   base requires fresh mining.
/// * **seed tidsets** ([`CandidateCache::tidsets`]) — the per-candidate
///   antecedent/consequent support [`Tidset`]s, computed lazily once under
///   the same 400 MB budget SELECT uses internally, shared by every fit at
///   the base minsup. The budget counts **actual representation bytes**
///   via [`Tidset::heap_bytes`] — `4·card` for sparse sets, `8·n_runs`
///   for run-compressed sets, `⌈n/64⌉·8` for dense bitmaps — so sparse
///   and clustered corpora fit far larger candidate sets into the same
///   budget.
///
/// The one caveat is truncation: if mining hit the `max_itemsets` valve,
/// the filtered subset may differ from a direct (less truncated) mine at
/// the higher threshold; [`CandidateCache::truncated`] surfaces the flag.
#[derive(Debug)]
pub struct CandidateCache {
    minsup: usize,
    closed: bool,
    set: CandidateSet,
    /// `None` inside the lock = over the tidset budget.
    tidsets: OnceLock<Option<Vec<(Tidset, Tidset)>>>,
}

/// Memory budget for cached candidate/seed tidsets — the single source of
/// truth shared by [`CandidateCache::tidsets`], SELECT's per-run tidset
/// cache, and EXACT's seed-tidset cache, so engine shared-tidset
/// eligibility can never desynchronize from the per-run caches.
pub const TIDSET_CACHE_BUDGET_BYTES: usize = 400 << 20;

/// Incremental metering of seed-tidset pairs against
/// [`TIDSET_CACHE_BUDGET_BYTES`] — the one accounting loop shared by the
/// lazy warm ([`build_seed_tidsets`]) and the snapshot-load path
/// ([`CandidateCache::from_parts`]). Every path that admits seed pairs
/// into memory meters them through this type, so a cache warmed from
/// disk obeys exactly the byte budget a freshly built one does, and the
/// two accountings can never drift apart.
#[derive(Debug, Default)]
pub struct SeedBudget {
    bytes: usize,
}

impl SeedBudget {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Meters one `(left, right)` pair at the **actual bytes** of each
    /// tidset's current representation ([`Tidset::heap_bytes`]). Returns
    /// `false` once the running total exceeds the budget; the pair stays
    /// counted, so later calls keep failing.
    pub fn admit(&mut self, left: &Tidset, right: &Tidset) -> bool {
        self.bytes = self
            .bytes
            .saturating_add(left.heap_bytes() + right.heap_bytes());
        self.bytes <= TIDSET_CACHE_BUDGET_BYTES
    }

    /// Bytes metered so far.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Builds per-candidate `(supp(left), supp(right))` seed tidsets under
/// [`TIDSET_CACHE_BUDGET_BYTES`], metering the **actual bytes** of each
/// tidset's chosen representation ([`Tidset::heap_bytes`]) as the cache is
/// built. All-or-nothing: `None` once the running total exceeds the
/// budget (callers then recompute per use). The one metered loop shared
/// by the engine's [`CandidateCache::tidsets`], SELECT's per-run cache,
/// and EXACT's seed cache, so the three budgets cannot drift apart.
///
/// Hopeless inputs are rejected in O(candidates) integer work before any
/// support set is computed: each side's tidset occupies at least
/// `min(4·support, dense_bytes, 8)` however it is stored. The `8` term is
/// the run container's floor — a clustered support of *any* cardinality
/// can collapse to a single `(start, len)` run of 8 bytes, so the old
/// `min(4·support, dense_bytes)` estimate is no longer a valid lower
/// bound; the skip now only catches pathologically huge candidate sets,
/// and the exact metering below does the real accounting.
pub fn build_seed_tidsets<'a>(
    data: &TwoViewDataset,
    candidates: impl ExactSizeIterator<Item = &'a TwoViewCandidate> + Clone,
) -> Option<Vec<(Tidset, Tidset)>> {
    // An injected warm failure reports "over budget": callers take the
    // uncached recompute path, which is correct but slower — exactly the
    // degradation a real memory-pressure `None` produces.
    if twoview_runtime::faults::should_fire(twoview_runtime::faults::points::CACHE_WARM_FAIL) {
        return None;
    }
    let per_dense = twoview_data::tidset::dense_bytes(data.n_transactions());
    let floor: usize = candidates
        .clone()
        .map(|c| 2 * (4 * c.support).min(per_dense).min(8))
        .sum();
    if floor > TIDSET_CACHE_BUDGET_BYTES {
        return None;
    }
    let mut budget = SeedBudget::new();
    let mut out = Vec::with_capacity(candidates.len());
    for c in candidates {
        let lt = data.support_set(&c.left);
        let rt = data.support_set(&c.right);
        if !budget.admit(&lt, &rt) {
            return None;
        }
        out.push((lt, rt));
    }
    Some(out)
}

impl CandidateCache {
    /// Mines and caches the candidate set (closed when `closed`, all
    /// frequent otherwise).
    pub fn mine(data: &TwoViewDataset, cfg: &MinerConfig, closed: bool) -> CandidateCache {
        let set = if closed {
            mine_closed_twoview(data, cfg)
        } else {
            mine_frequent_twoview(data, cfg)
        };
        CandidateCache {
            minsup: cfg.minsup.max(1),
            closed,
            set,
            tidsets: OnceLock::new(),
        }
    }

    /// Reassembles a cache from snapshot parts, without mining.
    ///
    /// `seeds`, when present, must align one-to-one with `candidates`;
    /// the pairs are re-metered through the same [`SeedBudget`] the lazy
    /// warm uses, and a misaligned or over-budget list is silently
    /// dropped — the cache then starts unwarmed and the first
    /// [`CandidateCache::tidsets`] call rebuilds (and re-meters) from the
    /// dataset, exactly as a cold cache would.
    pub fn from_parts(
        minsup: usize,
        closed: bool,
        truncated: bool,
        candidates: Vec<TwoViewCandidate>,
        seeds: Option<Vec<(Tidset, Tidset)>>,
    ) -> CandidateCache {
        let tidsets = OnceLock::new();
        if let Some(pairs) = seeds {
            let mut budget = SeedBudget::new();
            if pairs.len() == candidates.len() && pairs.iter().all(|(lt, rt)| budget.admit(lt, rt))
            {
                let _ = tidsets.set(Some(pairs));
            }
        }
        CandidateCache {
            minsup: minsup.max(1),
            closed,
            set: CandidateSet {
                candidates,
                truncated,
            },
            tidsets,
        }
    }

    /// The minsup the cache was mined at (the reuse floor).
    pub fn minsup(&self) -> usize {
        self.minsup
    }

    /// Whether the cache holds closed candidates (vs all frequent).
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// Whether mining hit the `max_itemsets` valve.
    pub fn truncated(&self) -> bool {
        self.set.truncated
    }

    /// The cached candidates, in miner enumeration order.
    pub fn candidates(&self) -> &[TwoViewCandidate] {
        &self.set.candidates
    }

    /// Number of cached candidates.
    pub fn len(&self) -> usize {
        self.set.candidates.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.set.candidates.is_empty()
    }

    /// The candidates visible at `minsup`, without re-mining: borrowed for
    /// the base minsup, support-filtered for a higher one (result-identical
    /// to mining at that minsup; see the type docs). `None` when `minsup`
    /// is *below* the mined base — the caller must mine fresh.
    pub fn at_minsup(&self, minsup: usize) -> Option<Cow<'_, [TwoViewCandidate]>> {
        let minsup = minsup.max(1);
        if minsup < self.minsup {
            return None;
        }
        if minsup == self.minsup {
            return Some(Cow::Borrowed(&self.set.candidates));
        }
        Some(Cow::Owned(
            self.set
                .candidates
                .iter()
                .filter(|c| c.support >= minsup)
                .cloned()
                .collect(),
        ))
    }

    /// Per-candidate `(supp(left), supp(right))` tidsets, aligned with
    /// [`CandidateCache::candidates`]. Computed lazily on first use and
    /// shared thereafter; `None` when the set is too large for the budget
    /// (callers then recompute per run, exactly as before).
    ///
    /// The budget meters the **actual bytes** of each tidset's chosen
    /// representation as they are built (see [`build_seed_tidsets`]) —
    /// under adaptive mode a sparse corpus caches many times more
    /// candidates than the old flat dense estimate admitted.
    pub fn tidsets(&self, data: &TwoViewDataset) -> Option<&[(Tidset, Tidset)]> {
        self.tidsets
            .get_or_init(|| build_seed_tidsets(data, self.set.candidates.iter()))
            .as_deref()
    }

    /// The already-warmed seed tidsets, if any — a peek that never
    /// computes (unlike [`CandidateCache::tidsets`]). The snapshot writer
    /// uses it so saving a cache never triggers a warm as a side effect.
    pub fn warmed(&self) -> Option<&[(Tidset, Tidset)]> {
        self.tidsets.get().and_then(|cached| cached.as_deref())
    }
}

fn split_spanning(
    data: &TwoViewDataset,
    itemsets: impl Iterator<Item = crate::eclat::FrequentItemset>,
) -> Vec<TwoViewCandidate> {
    let vocab = data.vocab();
    itemsets
        .filter(|f| f.items.spans_both_views(vocab))
        .map(|f| {
            let (left, right) = f.items.split(vocab);
            TwoViewCandidate {
                left,
                right,
                support: f.support,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 2],
                vec![0, 2],
                vec![0, 2, 3],
                vec![1, 3],
                vec![0, 1, 2, 3],
            ],
        )
    }

    #[test]
    fn all_candidates_span_views() {
        let d = toy();
        let cs = mine_closed_twoview(&d, &MinerConfig::builder().minsup(1).build());
        assert!(!cs.candidates.is_empty());
        for c in &cs.candidates {
            assert!(!c.left.is_empty());
            assert!(!c.right.is_empty());
            assert!(c.left.iter().all(|i| d.vocab().side_of(i) == Side::Left));
            assert!(c.right.iter().all(|i| d.vocab().side_of(i) == Side::Right));
            assert_eq!(c.support, d.support_count(&c.joint()));
        }
    }

    #[test]
    fn closed_candidates_subset_of_frequent_candidates() {
        let d = toy();
        let cfg = MinerConfig::builder().minsup(1).build();
        let closed = mine_closed_twoview(&d, &cfg);
        let frequent = mine_frequent_twoview(&d, &cfg);
        assert!(closed.candidates.len() <= frequent.candidates.len());
        for c in &closed.candidates {
            assert!(
                frequent.candidates.iter().any(|f| f == c),
                "closed candidate {c:?} missing from frequent set"
            );
        }
    }

    #[test]
    fn joint_reassembles() {
        let d = toy();
        let cs = mine_closed_twoview(&d, &MinerConfig::builder().minsup(1).build());
        for c in &cs.candidates {
            let joint = c.joint();
            assert_eq!(joint.len(), c.len());
            assert!(joint.spans_both_views(d.vocab()));
        }
    }

    #[test]
    fn cache_at_minsup_matches_direct_mining() {
        let d = toy();
        for closed in [true, false] {
            let base = MinerConfig::builder().minsup(1).build();
            let cache = CandidateCache::mine(&d, &base, closed);
            assert_eq!(cache.minsup(), 1);
            assert_eq!(cache.closed(), closed);
            assert!(!cache.truncated());
            for minsup in 1..=5usize {
                let via_cache = cache.at_minsup(minsup).expect("minsup >= base");
                let cfg = MinerConfig::builder().minsup(minsup).build();
                let direct = if closed {
                    mine_closed_twoview(&d, &cfg)
                } else {
                    mine_frequent_twoview(&d, &cfg)
                };
                assert_eq!(
                    via_cache.as_ref(),
                    direct.candidates.as_slice(),
                    "closed={closed} minsup={minsup}"
                );
            }
        }
    }

    #[test]
    fn cache_rejects_minsup_below_base() {
        let d = toy();
        let cache = CandidateCache::mine(&d, &MinerConfig::builder().minsup(3).build(), true);
        assert!(cache.at_minsup(2).is_none());
        assert!(cache.at_minsup(3).is_some());
    }

    #[test]
    fn cache_tidsets_align_with_candidates() {
        let d = toy();
        let cache = CandidateCache::mine(&d, &MinerConfig::builder().minsup(1).build(), true);
        let tids = cache.tidsets(&d).expect("toy data fits the budget");
        assert_eq!(tids.len(), cache.len());
        for (c, (lt, rt)) in cache.candidates().iter().zip(tids) {
            assert_eq!(lt, &d.support_set(&c.left));
            assert_eq!(rt, &d.support_set(&c.right));
        }
        // Second call returns the same cached slice.
        let again = cache.tidsets(&d).unwrap();
        assert_eq!(again.as_ptr(), tids.as_ptr());
    }

    #[test]
    fn from_parts_reassembles_and_meters_seeds() {
        let d = toy();
        let mined = CandidateCache::mine(&d, &MinerConfig::builder().minsup(2).build(), true);
        let seeds: Vec<_> = mined.tidsets(&d).unwrap().to_vec();
        let candidates = mined.candidates().to_vec();

        // Aligned seeds within budget install without recomputation.
        let cache = CandidateCache::from_parts(2, true, false, candidates.clone(), Some(seeds));
        assert_eq!(cache.minsup(), 2);
        assert!(cache.closed() && !cache.truncated());
        assert_eq!(cache.candidates(), mined.candidates());
        let warmed = cache.warmed().expect("seeds pre-installed");
        assert_eq!(warmed, mined.tidsets(&d).unwrap());
        assert_eq!(cache.tidsets(&d).unwrap().as_ptr(), warmed.as_ptr());

        // A misaligned seed list is dropped; the lazy warm then rebuilds.
        let bad = CandidateCache::from_parts(2, true, false, candidates.clone(), Some(Vec::new()));
        assert!(bad.warmed().is_none());
        assert_eq!(bad.tidsets(&d).unwrap(), mined.tidsets(&d).unwrap());

        // No seeds at all: cache starts unwarmed.
        let cold = CandidateCache::from_parts(2, true, false, candidates, None);
        assert!(cold.warmed().is_none());
    }

    #[test]
    fn seed_budget_meters_actual_bytes() {
        let mut budget = SeedBudget::new();
        let sparse = Tidset::from_indices(64, [1usize, 5, 9]);
        let runs = Tidset::full(64);
        assert!(budget.admit(&sparse, &runs));
        assert_eq!(budget.bytes(), sparse.heap_bytes() + runs.heap_bytes());
        assert!(budget.admit(&sparse, &sparse));
        assert_eq!(
            budget.bytes(),
            3 * sparse.heap_bytes() + runs.heap_bytes(),
            "metering accumulates per-representation bytes"
        );
    }

    #[test]
    fn minsup_filters() {
        let d = toy();
        let low = mine_closed_twoview(&d, &MinerConfig::builder().minsup(1).build());
        let high = mine_closed_twoview(&d, &MinerConfig::builder().minsup(3).build());
        assert!(high.candidates.len() < low.candidates.len());
        assert!(high.candidates.iter().all(|c| c.support >= 3));
    }
}
