//! Two-view candidate mining: itemsets that span both views.
//!
//! TRANSLATOR-SELECT and -GREEDY (paper §5.3) take as candidates all closed
//! frequent itemsets `Z` with `Z ∩ I_L ≠ ∅` and `Z ∩ I_R ≠ ∅`. A candidate
//! is stored pre-split into its two view projections, since every consumer
//! (rule construction, gain computation) needs them separately.

use twoview_data::prelude::*;

use crate::closed::mine_closed;
use crate::eclat::{mine_frequent, MinerConfig};

/// A frequent itemset spanning both views, split into its projections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoViewCandidate {
    /// `Z ∩ I_L` (non-empty).
    pub left: ItemSet,
    /// `Z ∩ I_R` (non-empty).
    pub right: ItemSet,
    /// `|supp(Z)|` over the whole dataset.
    pub support: usize,
}

impl TwoViewCandidate {
    /// Total number of items `|Z|`.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Candidates are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The joint itemset `Z`.
    pub fn joint(&self) -> ItemSet {
        self.left.union(&self.right)
    }
}

/// The outcome of candidate mining.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// Candidates, in miner enumeration order.
    pub candidates: Vec<TwoViewCandidate>,
    /// Whether enumeration hit the `max_itemsets` valve.
    pub truncated: bool,
}

/// Mines closed frequent two-view itemsets (the paper's candidate class).
pub fn mine_closed_twoview(data: &TwoViewDataset, cfg: &MinerConfig) -> CandidateSet {
    let res = mine_closed(data, cfg);
    CandidateSet {
        candidates: split_spanning(data, res.itemsets.into_iter()),
        truncated: res.truncated,
    }
}

/// Mines **all** frequent two-view itemsets (ablation: SELECT on non-closed
/// candidates; also the raw search space of association rule mining).
pub fn mine_frequent_twoview(data: &TwoViewDataset, cfg: &MinerConfig) -> CandidateSet {
    let res = mine_frequent(data, cfg);
    CandidateSet {
        candidates: split_spanning(data, res.itemsets.into_iter()),
        truncated: res.truncated,
    }
}

fn split_spanning(
    data: &TwoViewDataset,
    itemsets: impl Iterator<Item = crate::eclat::FrequentItemset>,
) -> Vec<TwoViewCandidate> {
    let vocab = data.vocab();
    itemsets
        .filter(|f| f.items.spans_both_views(vocab))
        .map(|f| {
            let (left, right) = f.items.split(vocab);
            TwoViewCandidate {
                left,
                right,
                support: f.support,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 2],
                vec![0, 2],
                vec![0, 2, 3],
                vec![1, 3],
                vec![0, 1, 2, 3],
            ],
        )
    }

    #[test]
    fn all_candidates_span_views() {
        let d = toy();
        let cs = mine_closed_twoview(&d, &MinerConfig::with_minsup(1));
        assert!(!cs.candidates.is_empty());
        for c in &cs.candidates {
            assert!(!c.left.is_empty());
            assert!(!c.right.is_empty());
            assert!(c.left.iter().all(|i| d.vocab().side_of(i) == Side::Left));
            assert!(c.right.iter().all(|i| d.vocab().side_of(i) == Side::Right));
            assert_eq!(c.support, d.support_count(&c.joint()));
        }
    }

    #[test]
    fn closed_candidates_subset_of_frequent_candidates() {
        let d = toy();
        let cfg = MinerConfig::with_minsup(1);
        let closed = mine_closed_twoview(&d, &cfg);
        let frequent = mine_frequent_twoview(&d, &cfg);
        assert!(closed.candidates.len() <= frequent.candidates.len());
        for c in &closed.candidates {
            assert!(
                frequent.candidates.iter().any(|f| f == c),
                "closed candidate {c:?} missing from frequent set"
            );
        }
    }

    #[test]
    fn joint_reassembles() {
        let d = toy();
        let cs = mine_closed_twoview(&d, &MinerConfig::with_minsup(1));
        for c in &cs.candidates {
            let joint = c.joint();
            assert_eq!(joint.len(), c.len());
            assert!(joint.spans_both_views(d.vocab()));
        }
    }

    #[test]
    fn minsup_filters() {
        let d = toy();
        let low = mine_closed_twoview(&d, &MinerConfig::with_minsup(1));
        let high = mine_closed_twoview(&d, &MinerConfig::with_minsup(3));
        assert!(high.candidates.len() < low.candidates.len());
        assert!(high.candidates.iter().all(|c| c.support >= 3));
    }
}
