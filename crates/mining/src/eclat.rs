//! ECLAT: frequent itemset mining over the vertical (tidset) layout.
//!
//! Depth-first enumeration with tidset intersections (Zaki et al., *New
//! algorithms for fast discovery of association rules*, KDD'97). This is
//! both a baseline building block (classic association rule mining) and the
//! reference enumerator the closed miner and the tests are checked against.
//!
//! ## Parallel first-level expansion
//!
//! The subtrees rooted at the first-level items are independent, so on
//! large inputs they are expanded concurrently through the persistent
//! [`twoview_runtime`] pool — one stealable task per root item, results
//! concatenated in root order. Because every subtree's internal DFS order
//! is untouched and the merge preserves submission order, the itemset list
//! (including its enumeration order, and including where a `max_itemsets`
//! truncation cuts it) is **bit-identical to the serial miner for any
//! thread count**; see [`merge_segments`].

use twoview_data::prelude::*;

/// Configuration shared by the miners in this crate.
#[derive(Clone, Debug)]
pub struct MinerConfig {
    /// Minimum (absolute) support. Clamped to at least 1.
    pub minsup: usize,
    /// Maximum itemset length (`None` = unbounded).
    pub max_len: Option<usize>,
    /// Safety valve: stop enumerating after this many itemsets.
    ///
    /// Parallel runs bound each first-level subtree by this many itemsets
    /// and trim the ordered concatenation to it, which reproduces the
    /// serial result exactly; the transient memory high-water mark can
    /// exceed the serial miner's when several subtrees are near the valve
    /// at once.
    pub max_itemsets: usize,
    /// Worker threads for first-level expansion. `None` = the process
    /// default ([`twoview_runtime::configured_threads`]) once the input is
    /// large enough to pay for task submission; an explicit `Some(t > 1)`
    /// always fans out. The mined result is identical for any value.
    pub n_threads: Option<usize>,
}

impl MinerConfig {
    /// Fluent builder with paper-default settings (`minsup = 1`, no length
    /// cap, 5M-itemset valve, process-default threads).
    pub fn builder() -> MinerConfigBuilder {
        MinerConfigBuilder {
            cfg: MinerConfig {
                minsup: 1,
                max_len: None,
                max_itemsets: 5_000_000,
                n_threads: None,
            },
        }
    }

    /// Sets the maximum itemset length.
    pub fn max_len(mut self, len: usize) -> Self {
        self.max_len = Some(len);
        self
    }
}

/// Fluent builder for [`MinerConfig`]; see [`MinerConfig::builder`].
#[derive(Clone, Debug)]
pub struct MinerConfigBuilder {
    cfg: MinerConfig,
}

impl MinerConfigBuilder {
    /// Minimum absolute support (clamped to at least 1).
    pub fn minsup(mut self, minsup: usize) -> Self {
        self.cfg.minsup = minsup.max(1);
        self
    }

    /// Maximum itemset length.
    pub fn max_len(mut self, len: usize) -> Self {
        self.cfg.max_len = Some(len);
        self
    }

    /// Enumeration safety valve.
    pub fn max_itemsets(mut self, n: usize) -> Self {
        self.cfg.max_itemsets = n;
        self
    }

    /// Worker threads for first-level expansion (`Some(t)`); see
    /// [`MinerConfig::n_threads`].
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.n_threads = Some(t);
        self
    }

    /// Inherit the process-default thread count (the default).
    pub fn default_threads(mut self) -> Self {
        self.cfg.n_threads = None;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> MinerConfig {
        self.cfg
    }
}

/// Decides whether a mining run fans out across first-level subtrees:
/// explicit thread configs always do, automatic ones only when the tidset
/// volume makes the per-task submission cost negligible.
pub(crate) fn fanout_threads(cfg_threads: Option<usize>, n_roots: usize, n_tx: usize) -> usize {
    let threads = twoview_runtime::resolve_threads(cfg_threads);
    if threads <= 1 || n_roots < 2 {
        return 1;
    }
    if cfg_threads.is_none() && n_roots.saturating_mul(n_tx) < (1 << 16) {
        return 1;
    }
    threads
}

/// Records one first-level subtree fan-out in the `mine.*` registry cells
/// (shared by the frequent and closed miners).
pub(crate) fn record_root_fanout(n_roots: usize) {
    use twoview_runtime::obs;
    struct FanoutMetrics {
        fanouts: obs::Counter,
        root_tasks: obs::Counter,
    }
    static METRICS: std::sync::OnceLock<FanoutMetrics> = std::sync::OnceLock::new();
    let metrics = METRICS.get_or_init(|| FanoutMetrics {
        fanouts: obs::counter("mine.root_fanouts"),
        root_tasks: obs::counter("mine.root_tasks"),
    });
    metrics.fanouts.incr();
    metrics.root_tasks.add(n_roots as u64);
}

/// Concatenates per-root segments in root (submission) order, applying the
/// `max_itemsets` valve exactly like the serial enumerator: the output is
/// the first `max_itemsets` itemsets of the full serial enumeration order,
/// and `truncated` is set iff the serial run would have set it.
pub(crate) fn merge_segments(segments: Vec<MiningResult>, max_itemsets: usize) -> MiningResult {
    let mut out = MiningResult {
        itemsets: Vec::new(),
        truncated: false,
    };
    for seg in segments {
        out.truncated |= seg.truncated;
        for itemset in seg.itemsets {
            if out.itemsets.len() >= max_itemsets {
                out.truncated = true;
                return out;
            }
            out.itemsets.push(itemset);
        }
    }
    out
}

/// A frequent itemset and its absolute support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items (global ids, sorted).
    pub items: ItemSet,
    /// `|supp(items)|`.
    pub support: usize,
}

/// The result of a mining run.
#[derive(Clone, Debug)]
pub struct MiningResult {
    /// The discovered itemsets (enumeration order).
    pub itemsets: Vec<FrequentItemset>,
    /// `true` if enumeration stopped early because `max_itemsets` was hit.
    pub truncated: bool,
}

/// Mines **all** frequent non-empty itemsets of `data`.
pub fn mine_frequent(data: &TwoViewDataset, cfg: &MinerConfig) -> MiningResult {
    let minsup = cfg.minsup.max(1);
    // Ascending support order keeps tidsets small early, the classic ECLAT
    // heuristic.
    let mut items: Vec<ItemId> = (0..data.vocab().n_items() as ItemId)
        .filter(|&i| data.support(i) >= minsup)
        .collect();
    items.sort_unstable_by_key(|&i| data.support(i));

    let threads = fanout_threads(cfg.n_threads, items.len(), data.n_transactions());
    if threads > 1 {
        // One task per first-level subtree, stolen chunk-wise from the
        // pool; segments come back in root order, so the concatenation is
        // the serial enumeration order. Every subtree gets the full
        // `max_itemsets` budget (a thread-count-independent bound);
        // `merge_segments` re-applies the global valve.
        let roots: Vec<usize> = (0..items.len()).collect();
        record_root_fanout(roots.len());
        let segments = twoview_runtime::global().map_chunks(threads, &roots, 1, |_, pos| {
            expand_root(data, cfg, &items, pos[0], cfg.max_itemsets)
        });
        return merge_segments(segments, cfg.max_itemsets);
    }

    // Serial: same per-root expansion, with the *remaining* budget handed
    // to each subtree so truncation stops the run exactly where the
    // single-DFS enumerator used to.
    let mut segments = Vec::with_capacity(items.len());
    let mut produced = 0usize;
    for pos in 0..items.len() {
        let seg = expand_root(data, cfg, &items, pos, cfg.max_itemsets - produced);
        produced += seg.itemsets.len();
        let stop = seg.truncated;
        segments.push(seg);
        if stop {
            break;
        }
    }
    merge_segments(segments, cfg.max_itemsets)
}

/// One first-level subtree: the root-loop body for `items[pos]` with
/// `tid = full` (so the root tidset is `tid(item)` itself, and the item is
/// frequent by pre-filtering), bounded by `budget` itemsets. Shared by the
/// serial and the fanned-out miner so the two cannot drift apart.
fn expand_root(
    data: &TwoViewDataset,
    cfg: &MinerConfig,
    items: &[ItemId],
    pos: usize,
    budget: usize,
) -> MiningResult {
    let item = items[pos];
    let mut seg = MiningResult {
        itemsets: Vec::new(),
        truncated: false,
    };
    if cfg.max_len == Some(0) {
        return seg;
    }
    if budget == 0 {
        seg.truncated = true;
        return seg;
    }
    let budgeted = MinerConfig {
        max_itemsets: budget,
        ..cfg.clone()
    };
    let tid = data.tidset(item);
    seg.itemsets.push(FrequentItemset {
        items: ItemSet::singleton(item),
        support: tid.len(),
    });
    let mut prefix = vec![item];
    dfs(
        data,
        &budgeted,
        &items[pos + 1..],
        tid,
        &mut prefix,
        &mut seg,
    );
    seg
}

fn dfs(
    data: &TwoViewDataset,
    cfg: &MinerConfig,
    ext: &[ItemId],
    tid: &Tidset,
    prefix: &mut Vec<ItemId>,
    out: &mut MiningResult,
) {
    if out.truncated {
        return;
    }
    if let Some(ml) = cfg.max_len {
        if prefix.len() >= ml {
            return;
        }
    }
    for (pos, &i) in ext.iter().enumerate() {
        let ts = data.tidset(i);
        // Count through the kernel first (sparse operands gallop instead of
        // scanning words); only materialise the child tidset — in whichever
        // representation is cheaper — for extensions that survive.
        let support = tid.intersection_len(ts);
        if support < cfg.minsup {
            continue;
        }
        let ti = tid.and_with_card(ts, support);
        prefix.push(i);
        if out.itemsets.len() >= cfg.max_itemsets {
            out.truncated = true;
            prefix.pop();
            return;
        }
        out.itemsets.push(FrequentItemset {
            items: ItemSet::from_items(prefix.iter().copied()),
            support,
        });
        dfs(data, cfg, &ext[pos + 1..], &ti, prefix, out);
        prefix.pop();
        if out.truncated {
            return;
        }
    }
}

/// Brute-force frequent itemset enumeration — exponential, only for tests
/// and tiny inputs, kept here so every crate can cross-check its miner.
pub fn brute_force_frequent(data: &TwoViewDataset, cfg: &MinerConfig) -> Vec<FrequentItemset> {
    let n_items = data.vocab().n_items();
    assert!(n_items <= 20, "brute force is for tiny vocabularies only");
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n_items) {
        let items: ItemSet = (0..n_items as ItemId)
            .filter(|&i| mask >> i & 1 == 1)
            .collect();
        if let Some(ml) = cfg.max_len {
            if items.len() > ml {
                continue;
            }
        }
        let support = data.support_count(&items);
        if support >= cfg.minsup {
            out.push(FrequentItemset { items, support });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        // a,b,c | x,y over 6 transactions
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3],
                vec![0, 1, 3, 4],
                vec![0, 2, 4],
                vec![1, 3],
                vec![0, 1, 2, 3, 4],
                vec![2],
            ],
        )
    }

    fn sorted(mut v: Vec<FrequentItemset>) -> Vec<(Vec<ItemId>, usize)> {
        let mut out: Vec<(Vec<ItemId>, usize)> = v
            .drain(..)
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn matches_brute_force() {
        let d = toy();
        for minsup in 1..=4 {
            let cfg = MinerConfig::builder().minsup(minsup).build();
            let fast = mine_frequent(&d, &cfg);
            assert!(!fast.truncated);
            let slow = brute_force_frequent(&d, &cfg);
            assert_eq!(sorted(fast.itemsets), sorted(slow), "minsup={minsup}");
        }
    }

    #[test]
    fn max_len_respected() {
        let d = toy();
        let cfg = MinerConfig::builder().minsup(1).max_len(2).build();
        let res = mine_frequent(&d, &cfg);
        assert!(res.itemsets.iter().all(|f| f.items.len() <= 2));
        let slow = brute_force_frequent(&d, &cfg);
        assert_eq!(sorted(res.itemsets), sorted(slow));
    }

    #[test]
    fn supports_are_correct() {
        let d = toy();
        let res = mine_frequent(&d, &MinerConfig::builder().minsup(2).build());
        for f in &res.itemsets {
            assert_eq!(f.support, d.support_count(&f.items), "{:?}", f.items);
        }
    }

    #[test]
    fn truncation_flag() {
        let d = toy();
        let mut cfg = MinerConfig::builder().minsup(1).build();
        cfg.max_itemsets = 3;
        let res = mine_frequent(&d, &cfg);
        assert!(res.truncated);
        assert_eq!(res.itemsets.len(), 3);
    }

    #[test]
    fn parallel_enumeration_is_bit_identical() {
        // Explicit thread configs force the fan-out even on toy data; the
        // itemset list (values AND order) must match the serial miner for
        // any thread count, with and without truncation.
        let d = toy();
        for max_itemsets in [usize::MAX, 7, 3, 1] {
            let serial = MinerConfig {
                n_threads: Some(1),
                max_itemsets,
                ..MinerConfig::builder().minsup(1).build()
            };
            let base = mine_frequent(&d, &serial);
            for threads in [2, 4, 16] {
                let cfg = MinerConfig {
                    n_threads: Some(threads),
                    ..serial.clone()
                };
                let par = mine_frequent(&d, &cfg);
                assert_eq!(
                    par.itemsets, base.itemsets,
                    "threads={threads} cap={max_itemsets}"
                );
                assert_eq!(
                    par.truncated, base.truncated,
                    "threads={threads} cap={max_itemsets}"
                );
            }
        }
    }

    #[test]
    fn parallel_respects_max_len() {
        let d = toy();
        for ml in [0, 1, 2] {
            let serial = MinerConfig {
                n_threads: Some(1),
                ..MinerConfig::builder().minsup(1).max_len(ml).build()
            };
            let par = MinerConfig {
                n_threads: Some(4),
                ..serial.clone()
            };
            assert_eq!(
                mine_frequent(&d, &par).itemsets,
                mine_frequent(&d, &serial).itemsets,
                "max_len={ml}"
            );
        }
    }

    #[test]
    fn high_minsup_yields_nothing() {
        let d = toy();
        let res = mine_frequent(&d, &MinerConfig::builder().minsup(100).build());
        assert!(res.itemsets.is_empty());
        assert!(!res.truncated);
    }
}
