//! ECLAT: frequent itemset mining over the vertical (tidset) layout.
//!
//! Depth-first enumeration with tidset intersections (Zaki et al., *New
//! algorithms for fast discovery of association rules*, KDD'97). This is
//! both a baseline building block (classic association rule mining) and the
//! reference enumerator the closed miner and the tests are checked against.

use twoview_data::prelude::*;

/// Configuration shared by the miners in this crate.
#[derive(Clone, Debug)]
pub struct MinerConfig {
    /// Minimum (absolute) support. Clamped to at least 1.
    pub minsup: usize,
    /// Maximum itemset length (`None` = unbounded).
    pub max_len: Option<usize>,
    /// Safety valve: stop enumerating after this many itemsets.
    pub max_itemsets: usize,
}

impl MinerConfig {
    /// A config with the given minimum support and no other limits.
    pub fn with_minsup(minsup: usize) -> Self {
        MinerConfig {
            minsup: minsup.max(1),
            max_len: None,
            max_itemsets: 5_000_000,
        }
    }

    /// Sets the maximum itemset length.
    pub fn max_len(mut self, len: usize) -> Self {
        self.max_len = Some(len);
        self
    }
}

/// A frequent itemset and its absolute support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items (global ids, sorted).
    pub items: ItemSet,
    /// `|supp(items)|`.
    pub support: usize,
}

/// The result of a mining run.
#[derive(Clone, Debug)]
pub struct MiningResult {
    /// The discovered itemsets (enumeration order).
    pub itemsets: Vec<FrequentItemset>,
    /// `true` if enumeration stopped early because `max_itemsets` was hit.
    pub truncated: bool,
}

/// Mines **all** frequent non-empty itemsets of `data`.
pub fn mine_frequent(data: &TwoViewDataset, cfg: &MinerConfig) -> MiningResult {
    let minsup = cfg.minsup.max(1);
    // Ascending support order keeps tidsets small early, the classic ECLAT
    // heuristic.
    let mut items: Vec<ItemId> = (0..data.vocab().n_items() as ItemId)
        .filter(|&i| data.support(i) >= minsup)
        .collect();
    items.sort_unstable_by_key(|&i| data.support(i));

    let mut out = MiningResult {
        itemsets: Vec::new(),
        truncated: false,
    };
    let mut prefix: Vec<ItemId> = Vec::new();
    let full = Bitmap::full(data.n_transactions());
    dfs(data, cfg, &items, &full, &mut prefix, &mut out);
    out
}

fn dfs(
    data: &TwoViewDataset,
    cfg: &MinerConfig,
    ext: &[ItemId],
    tid: &Bitmap,
    prefix: &mut Vec<ItemId>,
    out: &mut MiningResult,
) {
    if out.truncated {
        return;
    }
    if let Some(ml) = cfg.max_len {
        if prefix.len() >= ml {
            return;
        }
    }
    for (pos, &i) in ext.iter().enumerate() {
        let ts = data.tidset(i);
        // Count through the kernel first; only materialise the child tidset
        // for extensions that survive the support check.
        let support = tid.intersection_len(ts);
        if support < cfg.minsup {
            continue;
        }
        let ti = tid.and(ts);
        prefix.push(i);
        if out.itemsets.len() >= cfg.max_itemsets {
            out.truncated = true;
            prefix.pop();
            return;
        }
        out.itemsets.push(FrequentItemset {
            items: ItemSet::from_items(prefix.iter().copied()),
            support,
        });
        dfs(data, cfg, &ext[pos + 1..], &ti, prefix, out);
        prefix.pop();
        if out.truncated {
            return;
        }
    }
}

/// Brute-force frequent itemset enumeration — exponential, only for tests
/// and tiny inputs, kept here so every crate can cross-check its miner.
pub fn brute_force_frequent(data: &TwoViewDataset, cfg: &MinerConfig) -> Vec<FrequentItemset> {
    let n_items = data.vocab().n_items();
    assert!(n_items <= 20, "brute force is for tiny vocabularies only");
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n_items) {
        let items: ItemSet = (0..n_items as ItemId)
            .filter(|&i| mask >> i & 1 == 1)
            .collect();
        if let Some(ml) = cfg.max_len {
            if items.len() > ml {
                continue;
            }
        }
        let support = data.support_count(&items);
        if support >= cfg.minsup {
            out.push(FrequentItemset { items, support });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        // a,b,c | x,y over 6 transactions
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3],
                vec![0, 1, 3, 4],
                vec![0, 2, 4],
                vec![1, 3],
                vec![0, 1, 2, 3, 4],
                vec![2],
            ],
        )
    }

    fn sorted(mut v: Vec<FrequentItemset>) -> Vec<(Vec<ItemId>, usize)> {
        let mut out: Vec<(Vec<ItemId>, usize)> = v
            .drain(..)
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn matches_brute_force() {
        let d = toy();
        for minsup in 1..=4 {
            let cfg = MinerConfig::with_minsup(minsup);
            let fast = mine_frequent(&d, &cfg);
            assert!(!fast.truncated);
            let slow = brute_force_frequent(&d, &cfg);
            assert_eq!(sorted(fast.itemsets), sorted(slow), "minsup={minsup}");
        }
    }

    #[test]
    fn max_len_respected() {
        let d = toy();
        let cfg = MinerConfig::with_minsup(1).max_len(2);
        let res = mine_frequent(&d, &cfg);
        assert!(res.itemsets.iter().all(|f| f.items.len() <= 2));
        let slow = brute_force_frequent(&d, &cfg);
        assert_eq!(sorted(res.itemsets), sorted(slow));
    }

    #[test]
    fn supports_are_correct() {
        let d = toy();
        let res = mine_frequent(&d, &MinerConfig::with_minsup(2));
        for f in &res.itemsets {
            assert_eq!(f.support, d.support_count(&f.items), "{:?}", f.items);
        }
    }

    #[test]
    fn truncation_flag() {
        let d = toy();
        let mut cfg = MinerConfig::with_minsup(1);
        cfg.max_itemsets = 3;
        let res = mine_frequent(&d, &cfg);
        assert!(res.truncated);
        assert_eq!(res.itemsets.len(), 3);
    }

    #[test]
    fn high_minsup_yields_nothing() {
        let d = toy();
        let res = mine_frequent(&d, &MinerConfig::with_minsup(100));
        assert!(res.itemsets.is_empty());
        assert!(!res.truncated);
    }
}
