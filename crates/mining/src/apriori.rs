//! Apriori: breadth-first frequent itemset mining (Agrawal & Srikant,
//! VLDB'94) over the horizontal layout.
//!
//! Kept alongside ECLAT as an independent reference implementation: the two
//! miners share no code and are cross-checked against each other (and
//! against brute force) in the test-suite, which protects the candidate
//! generation used by TRANSLATOR against single-implementation bugs. ECLAT
//! is the faster choice on every workload we measured; Apriori's
//! level-wise candidate generation is also the scheme Magnum-Opus-style
//! antecedent enumeration descends from.

use std::collections::BTreeSet;

use twoview_data::prelude::*;

use crate::eclat::{FrequentItemset, MinerConfig, MiningResult};

/// Mines all frequent itemsets level-wise.
pub fn mine_apriori(data: &TwoViewDataset, cfg: &MinerConfig) -> MiningResult {
    let minsup = cfg.minsup.max(1);
    let mut out = MiningResult {
        itemsets: Vec::new(),
        truncated: false,
    };

    // Level 1: frequent single items.
    let mut level: Vec<ItemSet> = (0..data.vocab().n_items() as ItemId)
        .filter(|&i| data.support(i) >= minsup)
        .map(ItemSet::singleton)
        .collect();
    for items in &level {
        if out.itemsets.len() >= cfg.max_itemsets {
            out.truncated = true;
            return out;
        }
        out.itemsets.push(FrequentItemset {
            support: data.support_count(items),
            items: items.clone(),
        });
    }

    let mut k = 1usize;
    while !level.is_empty() {
        k += 1;
        if let Some(ml) = cfg.max_len {
            if k > ml {
                break;
            }
        }
        let frequent_prev: BTreeSet<&ItemSet> = level.iter().collect();
        let mut next: Vec<ItemSet> = Vec::new();
        // Join step: combine pairs sharing the first k-2 items.
        for (a_idx, a) in level.iter().enumerate() {
            for b in &level[a_idx + 1..] {
                let (pa, pb) = (a.as_slice(), b.as_slice());
                if pa[..k - 2] != pb[..k - 2] {
                    continue;
                }
                let candidate = a.union(b);
                debug_assert_eq!(candidate.len(), k);
                // Prune step: all (k-1)-subsets must be frequent.
                let all_subsets_frequent = candidate.iter().all(|drop| {
                    let sub: ItemSet = candidate.iter().filter(|&i| i != drop).collect();
                    frequent_prev.contains(&sub)
                });
                if !all_subsets_frequent {
                    continue;
                }
                // Count step (tidset intersection — exact and fast enough).
                let support = data.support_count(&candidate);
                if support >= minsup {
                    if out.itemsets.len() >= cfg.max_itemsets {
                        out.truncated = true;
                        return out;
                    }
                    out.itemsets.push(FrequentItemset {
                        items: candidate.clone(),
                        support,
                    });
                    next.push(candidate);
                }
            }
        }
        next.sort();
        next.dedup();
        level = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::{brute_force_frequent, mine_frequent};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn canon(v: &[FrequentItemset]) -> Vec<(Vec<ItemId>, usize)> {
        let mut out: Vec<(Vec<ItemId>, usize)> = v
            .iter()
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        out.sort();
        out
    }

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3],
                vec![0, 1, 3, 4],
                vec![0, 2, 4],
                vec![1, 3],
                vec![0, 1, 2, 3, 4],
                vec![2],
            ],
        )
    }

    #[test]
    fn apriori_matches_brute_force() {
        let d = toy();
        for minsup in 1..=4 {
            let cfg = MinerConfig::builder().minsup(minsup).build();
            let apriori = mine_apriori(&d, &cfg);
            let slow = brute_force_frequent(&d, &cfg);
            assert_eq!(canon(&apriori.itemsets), canon(&slow), "minsup={minsup}");
        }
    }

    #[test]
    fn apriori_matches_eclat_on_random_data() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..15 {
            let vocab = Vocabulary::unnamed(5, 5);
            let txs: Vec<Vec<ItemId>> = (0..25)
                .map(|_| (0..10).filter(|_| rng.gen_bool(0.35)).collect())
                .collect();
            let d = TwoViewDataset::from_transactions(vocab, &txs);
            for minsup in [1usize, 2, 4] {
                let cfg = MinerConfig::builder().minsup(minsup).build();
                let a = mine_apriori(&d, &cfg);
                let e = mine_frequent(&d, &cfg);
                assert_eq!(
                    canon(&a.itemsets),
                    canon(&e.itemsets),
                    "trial={trial} minsup={minsup}"
                );
            }
        }
    }

    #[test]
    fn max_len_stops_level_expansion() {
        let d = toy();
        let cfg = MinerConfig::builder().minsup(1).max_len(2).build();
        let res = mine_apriori(&d, &cfg);
        assert!(res.itemsets.iter().all(|f| f.items.len() <= 2));
        assert!(res.itemsets.iter().any(|f| f.items.len() == 2));
    }

    #[test]
    fn truncation_valve() {
        let d = toy();
        let mut cfg = MinerConfig::builder().minsup(1).build();
        cfg.max_itemsets = 4;
        let res = mine_apriori(&d, &cfg);
        assert!(res.truncated);
        assert_eq!(res.itemsets.len(), 4);
    }

    #[test]
    fn empty_on_impossible_minsup() {
        let d = toy();
        let res = mine_apriori(&d, &MinerConfig::builder().minsup(1000).build());
        assert!(res.itemsets.is_empty());
    }
}
