//! Closed frequent itemset mining (DCI-Closed-style order-preserving DFS).
//!
//! An itemset is *closed* when no proper superset has the same support.
//! TRANSLATOR-SELECT and -GREEDY take closed frequent *two-view* itemsets as
//! their candidate sets (paper §5.3), and KRIMP also prefers closed
//! candidates.
//!
//! The miner extends a prefix depth-first; at every extension it
//!
//! 1. runs the **duplicate (order-preserving) check**: if any already-passed
//!    item `j` has `tid(P ∪ {i}) ⊆ tid(j)`, this closure has been / will be
//!    enumerated in `j`'s branch, so the whole subtree is pruned;
//! 2. **absorbs** all later extension items whose tidsets cover the new
//!    tidset (they belong to the closure);
//! 3. reports the closure and recurses.
//!
//! This enumerates every closed frequent itemset exactly once without any
//! global subsumption table.
//!
//! Like the ECLAT enumerator, the **first-level subtrees fan out across
//! the persistent [`twoview_runtime`] pool** on large inputs: at the root,
//! the order-preserving `pre` list of the subtree under item `items[p]` is
//! exactly `items[..p]` (every earlier frequent item has been either
//! processed or absorbed into an earlier branch), so each root task is
//! self-contained and the per-root segments concatenate, in root order,
//! into precisely the serial enumeration — bit-identical for any thread
//! count, including under `max_itemsets` truncation.

use twoview_data::prelude::*;

use crate::eclat::{
    fanout_threads, merge_segments, record_root_fanout, FrequentItemset, MinerConfig, MiningResult,
};

/// Mines all closed frequent itemsets of `data`.
///
/// Note: `cfg.max_len` is not supported for the closed miner (length caps
/// break the closure property) and is ignored.
pub fn mine_closed(data: &TwoViewDataset, cfg: &MinerConfig) -> MiningResult {
    let minsup = cfg.minsup.max(1);
    let mut items: Vec<ItemId> = (0..data.vocab().n_items() as ItemId)
        .filter(|&i| data.support(i) >= minsup)
        .collect();
    // Ascending support, the conventional ECLAT order.
    items.sort_unstable_by_key(|&i| data.support(i));

    let threads = fanout_threads(cfg.n_threads, items.len(), data.n_transactions());
    if threads > 1 {
        // Every subtree gets the full `max_itemsets` budget (a
        // thread-count-independent bound); `merge_segments` re-applies
        // the global valve.
        let roots: Vec<usize> = (0..items.len()).collect();
        record_root_fanout(roots.len());
        let segments = twoview_runtime::global().map_chunks(threads, &roots, 1, |_, pos| {
            expand_root(data, minsup, &items, pos[0], cfg.max_itemsets)
        });
        return merge_segments(segments, cfg.max_itemsets);
    }

    // Serial: same per-root expansion with the *remaining* budget, so
    // truncation stops exactly where the single-DFS enumerator used to.
    let mut segments = Vec::with_capacity(items.len());
    let mut produced = 0usize;
    for pos in 0..items.len() {
        let seg = expand_root(data, minsup, &items, pos, cfg.max_itemsets - produced);
        produced += seg.itemsets.len();
        let stop = seg.truncated;
        segments.push(seg);
        if stop {
            break;
        }
    }
    merge_segments(segments, cfg.max_itemsets)
}

/// One first-level subtree of the closed-itemset DFS: the root-loop body
/// for `items[pos]` with `tid = full` (so the child tidset is `tid(i)`
/// itself) and `pre = items[..pos]` — at the root, every earlier frequent
/// item has been either processed or found duplicate, and both cases push
/// onto the serial `pre_local`. Bounded by `budget` itemsets. Shared by
/// the serial and the fanned-out miner so the two cannot drift apart.
fn expand_root(
    data: &TwoViewDataset,
    minsup: usize,
    items: &[ItemId],
    pos: usize,
    budget: usize,
) -> MiningResult {
    let mut seg = MiningResult {
        itemsets: Vec::new(),
        truncated: false,
    };
    let item = items[pos];
    let ti = data.tidset(item);
    // Duplicate (order-preserving) check against every earlier branch.
    if items[..pos].iter().any(|&j| ti.is_subset(data.tidset(j))) {
        return seg;
    }
    // Absorb later items whose tidsets cover this one.
    let mut child_post: Vec<ItemId> = Vec::new();
    let mut closure: Vec<ItemId> = vec![item];
    for &j in &items[pos + 1..] {
        if ti.is_subset(data.tidset(j)) {
            closure.push(j);
        } else {
            child_post.push(j);
        }
    }
    if budget == 0 {
        seg.truncated = true;
        return seg;
    }
    seg.itemsets.push(FrequentItemset {
        items: ItemSet::from_items(closure.iter().copied()),
        support: ti.len(),
    });
    dfs(
        data,
        minsup,
        budget,
        ti,
        &child_post,
        &items[..pos],
        &mut closure,
        &mut seg,
    );
    seg
}

/// One DFS node.
///
/// * `tid` — tidset of the current closure (`closure` as item list);
/// * `post` — extension candidates, all ordered after the branch item;
/// * `pre` — items that an earlier branch owns; if one of them covers a new
///   tidset the extension is a duplicate.
#[allow(clippy::too_many_arguments)]
fn dfs(
    data: &TwoViewDataset,
    minsup: usize,
    max_itemsets: usize,
    tid: &Tidset,
    post: &[ItemId],
    pre: &[ItemId],
    closure: &mut Vec<ItemId>,
    out: &mut MiningResult,
) {
    if out.truncated {
        return;
    }
    let mut pre_local: Vec<ItemId> = pre.to_vec();
    for (pos, &i) in post.iter().enumerate() {
        let ts = data.tidset(i);
        // Count through the kernel first; extensions that fail the support
        // check never allocate anything.
        let support = tid.intersection_len(ts);
        if support < minsup {
            continue; // infrequent items can never cover a frequent tidset
        }
        // Materialise the child tidset *before* the duplicate checks: on
        // sparse corpora the intersection is tiny (and stored sparse), so
        // every check below collapses to O(card) probes instead of a
        // word-proportional fused kernel per `pre` item. One materialise
        // costs about one fused check, so even an immediate duplicate hit
        // only breaks even with the old check-then-materialise order.
        let ti = tid.and_with_card(ts, support);
        // Duplicate check: some earlier item's branch owns this closure.
        if pre_local.iter().any(|&j| ti.is_subset(data.tidset(j))) {
            pre_local.push(i);
            continue;
        }
        // Absorb later items that are part of the closure.
        let mut child_post: Vec<ItemId> = Vec::with_capacity(post.len() - pos - 1);
        let mut absorbed: Vec<ItemId> = Vec::new();
        for &j in &post[pos + 1..] {
            if ti.is_subset(data.tidset(j)) {
                absorbed.push(j);
            } else {
                child_post.push(j);
            }
        }
        let before = closure.len();
        closure.push(i);
        closure.extend_from_slice(&absorbed);

        if out.itemsets.len() >= max_itemsets {
            out.truncated = true;
            closure.truncate(before);
            return;
        }
        out.itemsets.push(FrequentItemset {
            items: ItemSet::from_items(closure.iter().copied()),
            support,
        });

        dfs(
            data,
            minsup,
            max_itemsets,
            &ti,
            &child_post,
            &pre_local,
            closure,
            out,
        );
        closure.truncate(before);
        if out.truncated {
            return;
        }
        pre_local.push(i);
    }
}

/// Brute-force closed itemset enumeration for tests: all frequent itemsets,
/// keeping those with no same-support proper superset.
pub fn brute_force_closed(data: &TwoViewDataset, cfg: &MinerConfig) -> Vec<FrequentItemset> {
    let all = crate::eclat::brute_force_frequent(
        data,
        &MinerConfig {
            max_len: None,
            ..cfg.clone()
        },
    );
    all.iter()
        .filter(|f| {
            !all.iter().any(|g| {
                g.support == f.support
                    && g.items.len() > f.items.len()
                    && f.items.is_subset(&g.items)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted(v: &[FrequentItemset]) -> Vec<(Vec<ItemId>, usize)> {
        let mut out: Vec<(Vec<ItemId>, usize)> = v
            .iter()
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        out.sort();
        out
    }

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3],
                vec![0, 1, 3, 4],
                vec![0, 2, 4],
                vec![1, 3],
                vec![0, 1, 2, 3, 4],
                vec![2],
            ],
        )
    }

    #[test]
    fn matches_brute_force_on_toy() {
        let d = toy();
        for minsup in 1..=4 {
            let cfg = MinerConfig::builder().minsup(minsup).build();
            let fast = mine_closed(&d, &cfg);
            let slow = brute_force_closed(&d, &cfg);
            assert_eq!(sorted(&fast.itemsets), sorted(&slow), "minsup={minsup}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let vocab = Vocabulary::unnamed(4, 4);
            let txs: Vec<Vec<ItemId>> = (0..12)
                .map(|_| (0..8).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let d = TwoViewDataset::from_transactions(vocab, &txs);
            for minsup in [1, 2, 3] {
                let cfg = MinerConfig::builder().minsup(minsup).build();
                let fast = mine_closed(&d, &cfg);
                let slow = brute_force_closed(&d, &cfg);
                assert_eq!(
                    sorted(&fast.itemsets),
                    sorted(&slow),
                    "trial={trial} minsup={minsup}"
                );
            }
        }
    }

    #[test]
    fn every_reported_set_is_closed_and_support_correct() {
        let d = toy();
        let res = mine_closed(&d, &MinerConfig::builder().minsup(1).build());
        for f in &res.itemsets {
            assert_eq!(f.support, d.support_count(&f.items));
            let tid = d.support_set(&f.items);
            for i in 0..d.vocab().n_items() as ItemId {
                if !f.items.contains(i) {
                    assert!(
                        !tid.is_subset(d.tidset(i)),
                        "{:?} not closed: item {i} covers it",
                        f.items
                    );
                }
            }
        }
    }

    #[test]
    fn no_duplicates() {
        let d = toy();
        let res = mine_closed(&d, &MinerConfig::builder().minsup(1).build());
        let mut seen = std::collections::HashSet::new();
        for f in &res.itemsets {
            assert!(seen.insert(f.items.clone()), "duplicate {:?}", f.items);
        }
    }

    #[test]
    fn item_in_every_transaction_joins_all_closures() {
        // Item "z" occurs everywhere: every closed set must contain it.
        let vocab = Vocabulary::new(["a", "z"], ["x"]);
        let d = TwoViewDataset::from_transactions(vocab, &[vec![0, 1, 2], vec![1, 2], vec![0, 1]]);
        let res = mine_closed(&d, &MinerConfig::builder().minsup(1).build());
        for f in &res.itemsets {
            assert!(
                f.items.contains(1),
                "{:?} misses the universal item",
                f.items
            );
        }
    }

    #[test]
    fn parallel_enumeration_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..8 {
            let vocab = Vocabulary::unnamed(5, 4);
            let txs: Vec<Vec<ItemId>> = (0..14)
                .map(|_| (0..9).filter(|_| rng.gen_bool(0.45)).collect())
                .collect();
            let d = TwoViewDataset::from_transactions(vocab, &txs);
            for max_itemsets in [usize::MAX, 5, 1] {
                let serial = MinerConfig {
                    n_threads: Some(1),
                    max_itemsets,
                    ..MinerConfig::builder().minsup(1).build()
                };
                let base = mine_closed(&d, &serial);
                for threads in [2, 8] {
                    let cfg = MinerConfig {
                        n_threads: Some(threads),
                        ..serial.clone()
                    };
                    let par = mine_closed(&d, &cfg);
                    assert_eq!(
                        par.itemsets, base.itemsets,
                        "trial={trial} threads={threads} cap={max_itemsets}"
                    );
                    assert_eq!(par.truncated, base.truncated, "trial={trial}");
                }
            }
        }
    }

    #[test]
    fn truncation_respected() {
        let d = toy();
        let mut cfg = MinerConfig::builder().minsup(1).build();
        cfg.max_itemsets = 2;
        let res = mine_closed(&d, &cfg);
        assert!(res.truncated);
        assert_eq!(res.itemsets.len(), 2);
    }
}
