//! # twoview-mining
//!
//! Itemset-mining substrate for the TRANSLATOR reproduction:
//!
//! * [`eclat`] — depth-first frequent itemset mining over tidsets;
//! * [`closed`] — closed frequent itemset mining (DCI-Closed-style
//!   order-preserving enumeration, no subsumption table);
//! * [`twoview`] — the candidate class used by TRANSLATOR-SELECT/-GREEDY:
//!   (closed) frequent itemsets that span both views, pre-split into their
//!   view projections.
//!
//! Every miner is deterministic and is cross-checked against brute-force
//! enumeration in the test-suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod closed;
pub mod eclat;
pub mod twoview;

pub use apriori::mine_apriori;
pub use closed::mine_closed;
pub use eclat::{mine_frequent, FrequentItemset, MinerConfig, MinerConfigBuilder, MiningResult};
pub use twoview::{
    build_seed_tidsets, mine_closed_twoview, mine_frequent_twoview, CandidateCache, CandidateSet,
    SeedBudget, TwoViewCandidate, TIDSET_CACHE_BUDGET_BYTES,
};
