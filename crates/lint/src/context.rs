//! Per-file analysis context: path classification, `#[cfg(test)]`
//! region tracking, and the `// lint:` directive channel.

use crate::lexer::{Lexed, Tok};

/// What kind of compilation surface a file belongs to. Rules scope
/// themselves by kind: panic hygiene applies to `Lib` only, lock
/// discipline to `Lib` + `Bin`, the unsafe audit to everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// Library code of the named crate (`crates/<c>/src/**`, `src/lib.rs`).
    Lib(String),
    /// A binary target (`src/bin/*.rs`, `crates/<c>/src/bin/*.rs`).
    Bin(String),
    /// Tests and benches (exempt from most rules).
    TestLike,
    /// Examples (exempt from panic/determinism rules).
    Example,
    /// Vendored/generated code the linter never looks at.
    Skipped,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(path: &str) -> FileKind {
    if path.starts_with("vendor/") || path.starts_with("target/") || path.contains("/fixtures/") {
        return FileKind::Skipped;
    }
    if path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("benches/")
        || path.contains("/benches/")
    {
        return FileKind::TestLike;
    }
    if path.starts_with("examples/") || path.contains("/examples/") {
        return FileKind::Example;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        let Some((krate, tail)) = rest.split_once('/') else {
            return FileKind::Skipped;
        };
        if tail.starts_with("src/bin/") || tail == "src/main.rs" {
            return FileKind::Bin(krate.to_string());
        }
        if tail.starts_with("src/") {
            return FileKind::Lib(krate.to_string());
        }
        return FileKind::Skipped;
    }
    if path.starts_with("src/bin/") || path == "src/main.rs" {
        return FileKind::Bin("twoview".to_string());
    }
    if path.starts_with("src/") {
        return FileKind::Lib("twoview".to_string());
    }
    FileKind::Skipped
}

/// A parsed `// lint: allow(<rule>) — reason` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Reason text after the separator (may be empty — reported then).
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// First line the directive covers (its own line, or the next code
    /// line when the comment stands alone).
    pub covers: u32,
    /// Set when a rule consumes the directive; unused allows are stale
    /// and reported.
    pub used: std::cell::Cell<bool>,
}

/// All `// lint:` directives of one file.
#[derive(Debug, Default)]
pub struct Directives {
    /// Allow escape hatches.
    pub allows: Vec<AllowDirective>,
    /// File-level `// lint: timing-designated — reason`: exempts the
    /// wall-clock sub-rule of `determinism` for the whole module.
    pub timing_designated: Option<(u32, String)>,
    /// Malformed `// lint:` comments (line, message).
    pub malformed: Vec<(u32, String)>,
}

/// Parses every `// lint:` comment in the file.
pub fn parse_directives(lexed: &Lexed) -> Directives {
    let mut out = Directives::default();
    for comment in &lexed.comments {
        let text = comment.text.trim();
        let Some(body) = text.strip_prefix("lint:") else {
            continue;
        };
        let body = body.trim();
        if let Some(rest) = body.strip_prefix("allow(") {
            let Some((rule, tail)) = rest.split_once(')') else {
                out.malformed.push((
                    comment.line,
                    "unclosed `lint: allow(` directive".to_string(),
                ));
                continue;
            };
            let reason = strip_separator(tail);
            let covers = if lexed.line_has_tokens(comment.line) {
                comment.line
            } else {
                lexed.next_token_line(comment.end_line).unwrap_or(u32::MAX)
            };
            out.allows.push(AllowDirective {
                rule: rule.trim().to_string(),
                reason,
                line: comment.line,
                covers,
                used: std::cell::Cell::new(false),
            });
        } else if let Some(tail) = body.strip_prefix("timing-designated") {
            let reason = strip_separator(tail);
            out.timing_designated = Some((comment.line, reason));
        } else {
            out.malformed.push((
                comment.line,
                format!("unknown `lint:` directive: `{body}` (expected `allow(<rule>) — reason` or `timing-designated — reason`)"),
            ));
        }
    }
    out
}

/// Strips the leading reason separator (`—`, `–`, `-`, `:`) and spaces.
fn strip_separator(tail: &str) -> String {
    tail.trim_start_matches([' ', '—', '–', '-', ':'])
        .trim()
        .to_string()
}

/// Line ranges (inclusive, 1-based) covered by `#[cfg(test)]` items.
/// Tokens inside are invisible to every rule except the unsafe audit's
/// `// SAFETY:` requirement (documentation is owed even in tests).
pub fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let Some(open) = toks.get(i + 1) else { break };
        if open.kind != Tok::Punct('[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut depth = 1i32;
        let mut j = i + 2;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(id) => match id.as_str() {
                    "cfg" => saw_cfg = true,
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test && !saw_not) {
            i = j;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes before the item itself.
        while j + 1 < toks.len()
            && toks[j].kind == Tok::Punct('#')
            && toks[j + 1].kind == Tok::Punct('[')
        {
            let mut d = 1i32;
            j += 2;
            while j < toks.len() && d > 0 {
                match toks[j].kind {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Find the item's body: first `{` at bracket depth 0 opens a
        // brace region; a `;` at depth 0 first ends a braceless item.
        let mut bracket = 0i32;
        let mut end_line = start_line;
        while j < toks.len() {
            match toks[j].kind {
                Tok::Punct('(') | Tok::Punct('[') => bracket += 1,
                Tok::Punct(')') | Tok::Punct(']') => bracket -= 1,
                Tok::Punct(';') if bracket == 0 => {
                    end_line = toks[j].line;
                    j += 1;
                    break;
                }
                Tok::Punct('{') if bracket == 0 => {
                    let mut braces = 1i32;
                    j += 1;
                    while j < toks.len() && braces > 0 {
                        match toks[j].kind {
                            Tok::Punct('{') => braces += 1,
                            Tok::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    end_line = toks[j.saturating_sub(1).min(toks.len() - 1)].line;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

/// Whether `line` falls in any test region.
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/select.rs"),
            FileKind::Lib("core".to_string())
        );
        assert_eq!(
            classify("crates/bench/src/bin/perfsuite.rs"),
            FileKind::Bin("bench".to_string())
        );
        assert_eq!(
            classify("src/bin/twoview.rs"),
            FileKind::Bin("twoview".to_string())
        );
        assert_eq!(classify("src/lib.rs"), FileKind::Lib("twoview".to_string()));
        assert_eq!(classify("tests/quickstart.rs"), FileKind::TestLike);
        assert_eq!(classify("crates/core/tests/x.rs"), FileKind::TestLike);
        assert_eq!(
            classify("crates/bench/benches/mining.rs"),
            FileKind::TestLike
        );
        assert_eq!(classify("examples/elections.rs"), FileKind::Example);
        assert_eq!(classify("vendor/rand/src/lib.rs"), FileKind::Skipped);
    }

    #[test]
    fn cfg_test_region_covers_mod() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real { fn f() {} }\n";
        let lexed = lex(src);
        assert!(test_regions(&lexed).is_empty());
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::sync::Mutex;\nfn after() {}\n";
        let lexed = lex(src);
        assert_eq!(test_regions(&lexed), vec![(1, 2)]);
    }

    #[test]
    fn allow_directive_parses_with_reason() {
        let src = "let x = m.lock(); // lint: allow(panic_hygiene) — guarded above\n";
        let lexed = lex(src);
        let d = parse_directives(&lexed);
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].rule, "panic_hygiene");
        assert_eq!(d.allows[0].reason, "guarded above");
        assert_eq!(d.allows[0].covers, 1);
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "// lint: allow(determinism) — stats timing only\nlet t = Instant::now();\n";
        let lexed = lex(src);
        let d = parse_directives(&lexed);
        assert_eq!(d.allows[0].covers, 2);
    }
}
