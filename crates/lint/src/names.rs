//! `name_inventory`: the observability and fault-point namespace is a
//! public contract — CI greps it, dashboards query it, traces carry it.
//! Every metric/span/event/fault name used in source must appear in the
//! checked-in inventory (`NAMES_inventory.json`) and vice versa, and
//! every JSON key CI greps out of `BENCH_smoke.json` must actually be
//! emitted by some source literal. Renames therefore fail the lint the
//! moment one side drifts.

use std::collections::BTreeSet;

use crate::context::{in_regions, FileKind};
use crate::lexer::{Lexed, Tok};
use crate::report::{Rule, Violation};

/// Which inventory section a name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NameKind {
    /// `counter(..)` / `gauge(..)` / `histogram(..)` registrations.
    Metric,
    /// `span(..)` names.
    Span,
    /// `event(..)` names.
    Event,
    /// Fault points declared in `faults::points`.
    Fault,
}

impl NameKind {
    /// Inventory JSON key for this section.
    pub fn section(self) -> &'static str {
        match self {
            NameKind::Metric => "metrics",
            NameKind::Span => "spans",
            NameKind::Event => "events",
            NameKind::Fault => "faults",
        }
    }
}

/// One name usage discovered in source.
#[derive(Debug, Clone)]
pub struct NameUse {
    /// The name string itself.
    pub name: String,
    /// Which section it belongs to.
    pub kind: NameKind,
    /// File it was found in.
    pub file: String,
    /// Line it was found on.
    pub line: u32,
}

/// The checked-in inventory, parsed (or freshly collected).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Inventory {
    /// Counter/gauge/histogram names.
    pub metrics: BTreeSet<String>,
    /// Span names.
    pub spans: BTreeSet<String>,
    /// Event names.
    pub events: BTreeSet<String>,
    /// Fault-point names.
    pub faults: BTreeSet<String>,
}

impl Inventory {
    /// The section set for `kind`.
    pub fn section(&self, kind: NameKind) -> &BTreeSet<String> {
        match kind {
            NameKind::Metric => &self.metrics,
            NameKind::Span => &self.spans,
            NameKind::Event => &self.events,
            NameKind::Fault => &self.faults,
        }
    }

    fn section_mut(&mut self, kind: NameKind) -> &mut BTreeSet<String> {
        match kind {
            NameKind::Metric => &mut self.metrics,
            NameKind::Span => &mut self.spans,
            NameKind::Event => &mut self.events,
            NameKind::Fault => &mut self.faults,
        }
    }

    /// Builds an inventory holding exactly the collected uses.
    pub fn from_uses(uses: &[NameUse]) -> Inventory {
        let mut inv = Inventory::default();
        for u in uses {
            inv.section_mut(u.kind).insert(u.name.clone());
        }
        inv
    }

    /// Renders the inventory as stable, jq-friendly JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let sections = [
            (NameKind::Metric, &self.metrics),
            (NameKind::Span, &self.spans),
            (NameKind::Event, &self.events),
            (NameKind::Fault, &self.faults),
        ];
        for (idx, (kind, set)) in sections.iter().enumerate() {
            out.push_str(&format!("  \"{}\": [\n", kind.section()));
            for (i, name) in set.iter().enumerate() {
                let comma = if i + 1 < set.len() { "," } else { "" };
                out.push_str(&format!("    \"{name}\"{comma}\n"));
            }
            let comma = if idx + 1 < sections.len() { "," } else { "" };
            out.push_str(&format!("  ]{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the inventory JSON. The format is the fixed four-section
    /// shape `to_json` writes; anything else is a parse error.
    pub fn parse(src: &str) -> Result<Inventory, String> {
        let mut inv = Inventory::default();
        for kind in [
            NameKind::Metric,
            NameKind::Span,
            NameKind::Event,
            NameKind::Fault,
        ] {
            let key = format!("\"{}\"", kind.section());
            let Some(at) = src.find(&key) else {
                return Err(format!(
                    "inventory is missing the \"{}\" section",
                    kind.section()
                ));
            };
            let after = &src[at + key.len()..];
            let Some(open) = after.find('[') else {
                return Err(format!("section \"{}\" has no array", kind.section()));
            };
            let Some(close) = after[open..].find(']') else {
                return Err(format!(
                    "section \"{}\" has no closing bracket",
                    kind.section()
                ));
            };
            let body = &after[open + 1..open + close];
            let set = inv.section_mut(kind);
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let name = part.trim_matches('"');
                if name.is_empty() || part.len() < 2 || !part.starts_with('"') {
                    return Err(format!(
                        "section \"{}\" holds a non-string entry: `{part}`",
                        kind.section()
                    ));
                }
                set.insert(name.to_string());
            }
        }
        Ok(inv)
    }
}

/// Collects every obs-name registration in one lib/bin file (outside
/// `#[cfg(test)]`), plus any violations for non-literal names.
pub fn collect_obs_uses(
    path: &str,
    kind: &FileKind,
    lexed: &Lexed,
    test_regions: &[(u32, u32)],
    uses: &mut Vec<NameUse>,
    out: &mut Vec<Violation>,
) {
    if !matches!(kind, FileKind::Lib(_) | FileKind::Bin(_)) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Tok::Ident(id) = &tok.kind else { continue };
        let name_kind = match id.as_str() {
            "counter" | "gauge" | "histogram" => NameKind::Metric,
            "span" => NameKind::Span,
            "event" => NameKind::Event,
            _ => continue,
        };
        if in_regions(test_regions, tok.line) {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('('))) {
            continue;
        }
        // Skip declarations (`fn span(..)`) and method calls on other
        // types (`.counter(..)` snapshot lookups). A `::`-qualified call
        // only counts when the qualifier is the `obs` module itself.
        if i > 0 {
            match &toks[i - 1].kind {
                Tok::Ident(prev) if prev == "fn" => continue,
                Tok::Punct('.') => continue,
                Tok::Punct(':') => {
                    let qualifier = toks.get(i.wrapping_sub(3)).map(|t| &t.kind);
                    if !matches!(qualifier, Some(Tok::Ident(q)) if q == "obs") {
                        continue;
                    }
                }
                _ => {}
            }
        }
        match toks.get(i + 2).map(|t| &t.kind) {
            Some(Tok::Str(name)) => uses.push(NameUse {
                name: name.clone(),
                kind: name_kind,
                file: path.to_string(),
                line: tok.line,
            }),
            _ => out.push(Violation {
                rule: Rule::NameInventory,
                file: path.to_string(),
                line: tok.line,
                message: format!(
                    "`{id}(..)` name is not a string literal: obs names must be static so the inventory can audit them"
                ),
            }),
        }
    }
}

/// Collects fault-point names from `faults::points` const declarations
/// (`pub const X: &str = "name";` inside `mod points`).
pub fn collect_fault_points(path: &str, lexed: &Lexed, uses: &mut Vec<NameUse>) {
    if !path.ends_with("runtime/src/faults.rs") {
        return;
    }
    let toks = &lexed.tokens;
    // Find `mod points {` and its brace region.
    let mut start = None;
    for i in 0..toks.len() {
        if matches!(&toks[i].kind, Tok::Ident(a) if a == "mod")
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Ident(b)) if b == "points")
        {
            start = Some(i + 2);
            break;
        }
    }
    let Some(mut j) = start else { return };
    // Enter the brace region.
    while j < toks.len() && toks[j].kind != Tok::Punct('{') {
        j += 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(id) if id == "const" && depth == 1 => {
                // const NAME: &str = "value";
                let mut k = j + 1;
                while k < toks.len() && toks[k].kind != Tok::Punct('=') {
                    k += 1;
                }
                if let Some(Tok::Str(value)) = toks.get(k + 1).map(|t| &t.kind) {
                    uses.push(NameUse {
                        name: value.clone(),
                        kind: NameKind::Fault,
                        file: path.to_string(),
                        line: toks[j].line,
                    });
                }
                j = k;
            }
            _ => {}
        }
        j += 1;
    }
}

/// Checks collected uses against the checked-in inventory, both ways.
pub fn check_inventory(
    inventory_path: &str,
    inventory_src: Option<&str>,
    uses: &[NameUse],
    out: &mut Vec<Violation>,
) {
    let Some(src) = inventory_src else {
        out.push(Violation {
            rule: Rule::NameInventory,
            file: inventory_path.to_string(),
            line: 1,
            message: format!(
                "missing inventory file `{inventory_path}`; regenerate with `twoview-lint --workspace --write-inventory`"
            ),
        });
        return;
    };
    let inv = match Inventory::parse(src) {
        Ok(inv) => inv,
        Err(err) => {
            out.push(Violation {
                rule: Rule::NameInventory,
                file: inventory_path.to_string(),
                line: 1,
                message: format!("inventory does not parse: {err}"),
            });
            return;
        }
    };
    let used = Inventory::from_uses(uses);
    for u in uses {
        if !inv.section(u.kind).contains(&u.name) {
            out.push(Violation {
                rule: Rule::NameInventory,
                file: u.file.clone(),
                line: u.line,
                message: format!(
                    "{} name \"{}\" is not in {inventory_path}; add it (or `--write-inventory`)",
                    u.kind.section().trim_end_matches('s'),
                    u.name
                ),
            });
        }
    }
    for kind in [
        NameKind::Metric,
        NameKind::Span,
        NameKind::Event,
        NameKind::Fault,
    ] {
        for name in inv.section(kind).difference(used.section(kind)) {
            out.push(Violation {
                rule: Rule::NameInventory,
                file: inventory_path.to_string(),
                line: 1,
                message: format!(
                    "inventoried {} name \"{name}\" is no longer used anywhere in source",
                    kind.section().trim_end_matches('s'),
                ),
            });
        }
    }
}

/// Checks that every JSON key CI greps out of `BENCH_smoke.json` is
/// actually emitted by some source string literal, so a perfsuite key
/// rename cannot silently turn a CI gate into a no-op... the grep would
/// still "pass" structurally but never match again.
pub fn check_ci_greps(
    ci_path: &str,
    ci_src: Option<&str>,
    literals: &[String],
    out: &mut Vec<Violation>,
) {
    let Some(src) = ci_src else { return };
    for (lineno, line) in src.lines().enumerate() {
        if !line.contains("BENCH_smoke.json") || !line.contains("grep") {
            continue;
        }
        for quoted in single_quoted_segments(line) {
            for key in double_quoted_keys(&quoted) {
                let needle = format!("\"{key}\"");
                if !literals.iter().any(|lit| lit.contains(&needle)) {
                    out.push(Violation {
                        rule: Rule::NameInventory,
                        file: ci_path.to_string(),
                        line: (lineno + 1) as u32,
                        message: format!(
                            "CI greps \"{key}\" out of BENCH_smoke.json but no source literal emits that key"
                        ),
                    });
                }
            }
        }
    }
}

/// Segments between single quotes on one shell line.
fn single_quoted_segments(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('\'') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('\'') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

/// `"key"` occurrences inside a grep pattern.
fn double_quoted_keys(pattern: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = pattern;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        let key = &after[..close];
        if !key.is_empty()
            && key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            out.push(key.to_string());
        }
        rest = &after[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_round_trips_through_json() {
        let mut inv = Inventory::default();
        inv.metrics.insert("engine.fits".to_string());
        inv.spans.insert("job.run".to_string());
        inv.events.insert("job.retry".to_string());
        inv.faults.insert("mine.panic".to_string());
        let parsed = Inventory::parse(&inv.to_json()).expect("round trip");
        assert_eq!(parsed, inv);
    }

    #[test]
    fn grep_keys_extract() {
        let line = r#"          grep -q '"all_identities": true' BENCH_smoke.json"#;
        let segs = single_quoted_segments(line);
        assert_eq!(segs, [r#""all_identities": true"#]);
        assert_eq!(double_quoted_keys(&segs[0]), ["all_identities"]);
    }
}
