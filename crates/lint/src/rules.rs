//! The five lint rules, each a token-pattern walk over one file.
//!
//! Scoping summary (see README "Static analysis"):
//!
//! | rule            | applies to                                  |
//! |-----------------|---------------------------------------------|
//! | `determinism`   | lib code of `core`, `mining`, `data`         |
//! | `lock_discipline` | lib + bin code, all crates                 |
//! | `unsafe_audit`  | everything (tests owe `// SAFETY:` too)      |
//! | `panic_hygiene` | lib code, all crates                         |
//! | `name_inventory`| lib + bin code (collection); whole workspace |
//!
//! `#[cfg(test)]` regions are invisible to every rule except the
//! `// SAFETY:` audit. Each rule honours the scoped escape hatch
//! `// lint: allow(<rule>) — reason`.

use crate::context::{in_regions, Directives, FileKind};
use crate::lexer::{Lexed, Tok};
use crate::report::{Rule, Violation};

/// Everything the per-file rules need about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Classification from [`crate::context::classify`].
    pub kind: &'a FileKind,
    /// Lexed tokens + comments.
    pub lexed: &'a Lexed,
    /// `#[cfg(test)]` line ranges.
    pub test_regions: &'a [(u32, u32)],
    /// Parsed `// lint:` directives.
    pub directives: &'a Directives,
}

impl FileCtx<'_> {
    /// Whether a token on `line` is inside a `#[cfg(test)]` region.
    fn is_test_line(&self, line: u32) -> bool {
        in_regions(self.test_regions, line)
    }

    /// Emits a violation unless an allow directive covers `line` for
    /// `rule`; a consumed directive is marked used.
    fn emit(&self, out: &mut Vec<Violation>, rule: Rule, line: u32, message: String) {
        for allow in &self.directives.allows {
            if allow.rule == rule.name() && (allow.covers == line || allow.line == line) {
                allow.used.set(true);
                return;
            }
        }
        out.push(Violation {
            rule,
            file: self.path.to_string(),
            line,
            message,
        });
    }
}

/// Index just past the `)` matching the `(` at `open` (which must index
/// a `(`); saturates at end of input.
fn skip_call(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Whether tokens at `i` start `::` (two adjacent `:` puncts).
fn is_path_sep(toks: &[crate::lexer::Token], i: usize) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(':')))
        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct(':')))
}

/// `determinism`: solver/model paths must be bit-identical across
/// threads, kernels and tidset modes, so hash-order iteration,
/// wall-clock reads and thread identity are banned in `core`, `mining`
/// and `data` lib code; float orderings must use `total_cmp`.
pub fn determinism(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let FileKind::Lib(krate) = ctx.kind else {
        return;
    };
    if !matches!(krate.as_str(), "core" | "mining" | "data") {
        return;
    }
    let timing_ok = ctx.directives.timing_designated.is_some();
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Tok::Ident(id) = &tok.kind else { continue };
        if ctx.is_test_line(tok.line) {
            continue;
        }
        match id.as_str() {
            "HashMap" | "HashSet" => ctx.emit(
                out,
                Rule::Determinism,
                tok.line,
                format!("`{id}` in a solver/model path: hash iteration order is nondeterministic; use BTreeMap/BTreeSet (or a sorted Vec)"),
            ),
            "SystemTime" if !timing_ok => ctx.emit(
                out,
                Rule::Determinism,
                tok.line,
                "`SystemTime` in a solver/model path: wall-clock reads break replayability; move timing to a timing-designated module".to_string(),
            ),
            "Instant"
                if !timing_ok
                    && is_path_sep(toks, i + 1)
                    && matches!(toks.get(i + 3).map(|t| &t.kind), Some(Tok::Ident(n)) if n == "now") =>
            {
                ctx.emit(
                    out,
                    Rule::Determinism,
                    tok.line,
                    "`Instant::now()` in a solver/model path: wall-clock reads are nondeterministic; allow-list stats-only timing explicitly".to_string(),
                );
            }
            "ThreadId" => ctx.emit(
                out,
                Rule::Determinism,
                tok.line,
                "thread identity in a solver/model path breaks the thread-count-invariance contract".to_string(),
            ),
            "thread"
                if is_path_sep(toks, i + 1)
                    && matches!(toks.get(i + 3).map(|t| &t.kind), Some(Tok::Ident(n)) if n == "current") =>
            {
                ctx.emit(
                    out,
                    Rule::Determinism,
                    tok.line,
                    "`thread::current()` in a solver/model path breaks the thread-count-invariance contract".to_string(),
                );
            }
            "partial_cmp" => {
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('('))) {
                    let after = skip_call(toks, i + 1);
                    if matches!(toks.get(after).map(|t| &t.kind), Some(Tok::Punct('.')))
                        && matches!(toks.get(after + 1).map(|t| &t.kind), Some(Tok::Ident(n)) if n == "unwrap" || n == "expect")
                    {
                        ctx.emit(
                            out,
                            Rule::Determinism,
                            tok.line,
                            "`partial_cmp(..).unwrap()` on floats: NaN panics and total order differ across platforms; use `total_cmp`".to_string(),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// `lock_discipline`: a poisoned lock must never cascade one panicked
/// job into failures of unrelated jobs. Raw `std::sync` primitives stay
/// inside `twoview-runtime` (whose `sync` module wraps them); the
/// poison-blind `.lock().unwrap()` pattern is banned everywhere.
pub fn lock_discipline(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.kind, FileKind::Lib(_) | FileKind::Bin(_)) {
        return;
    }
    if ctx.path.ends_with("crates/runtime/src/sync.rs") || ctx.path == "crates/runtime/src/sync.rs"
    {
        // The designated module: implements the tolerant wrappers.
        return;
    }
    let in_runtime = ctx.path.starts_with("crates/runtime/src");
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Tok::Ident(id) = &tok.kind else { continue };
        if ctx.is_test_line(tok.line) {
            continue;
        }
        match id.as_str() {
            "Mutex" | "Condvar" | "RwLock" if !in_runtime => ctx.emit(
                out,
                Rule::LockDiscipline,
                tok.line,
                format!("raw `std::sync::{id}` outside twoview-runtime; use `twoview_runtime::sync` (TolerantMutex / PoisonTolerant traits)"),
            ),
            "lock" | "wait" | "wait_timeout" => {
                let preceded_by_dot =
                    i > 0 && matches!(toks[i - 1].kind, Tok::Punct('.'));
                if !preceded_by_dot {
                    continue;
                }
                if !matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('('))) {
                    continue;
                }
                let after = skip_call(toks, i + 1);
                if matches!(toks.get(after).map(|t| &t.kind), Some(Tok::Punct('.')))
                    && matches!(toks.get(after + 1).map(|t| &t.kind), Some(Tok::Ident(n)) if n == "unwrap" || n == "expect")
                {
                    ctx.emit(
                        out,
                        Rule::LockDiscipline,
                        tok.line,
                        format!("poison-blind `.{id}(..).unwrap()`: one panicked holder cascades into every later locker; use `plock`/`pwait` from `twoview_runtime::sync`"),
                    );
                }
            }
            _ => {}
        }
    }
}

/// `unsafe_audit` (per-file half): every `unsafe` token must carry a
/// written rationale — a `// SAFETY:` comment (or a `# Safety` doc
/// section) on the same line or in the contiguous comment/attribute run
/// directly above. Applies to tests too: documentation is owed wherever
/// the keyword appears.
pub fn unsafe_audit(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if matches!(ctx.kind, FileKind::Skipped) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for tok in toks.iter() {
        let Tok::Ident(id) = &tok.kind else { continue };
        if id != "unsafe" {
            continue;
        }
        if has_safety_rationale(ctx.lexed, tok.line) {
            continue;
        }
        ctx.emit(
            out,
            Rule::UnsafeAudit,
            tok.line,
            "`unsafe` without a `// SAFETY:` rationale on the same line or directly above"
                .to_string(),
        );
    }
}

/// Whether a SAFETY rationale covers an `unsafe` token on `line`:
/// same-line comment, or the contiguous run of comment/attribute lines
/// directly above (doc comments with a `# Safety` heading count).
fn has_safety_rationale(lexed: &Lexed, line: u32) -> bool {
    let is_safety = |text: &str| text.contains("SAFETY:") || text.contains("# Safety");
    // Same-line (trailing or leading) comment.
    for c in &lexed.comments {
        if c.line <= line && line <= c.end_line && is_safety(&c.text) {
            return true;
        }
    }
    // Walk upward through comment and attribute lines.
    let mut k = line.saturating_sub(1);
    while k >= 1 {
        if let Some(c) = lexed
            .comments
            .iter()
            .find(|c| c.line <= k && k <= c.end_line)
        {
            if is_safety(&c.text) {
                return true;
            }
            if c.line == 0 || c.line == 1 {
                return false;
            }
            k = c.line - 1;
            continue;
        }
        if lexed.line_has_tokens(k) {
            // Attribute lines (`#[inline]`, `#[target_feature..]`) are
            // transparent; any other code line ends the run.
            let first = lexed.tokens.iter().find(|t| t.line == k);
            if matches!(first.map(|t| &t.kind), Some(Tok::Punct('#'))) {
                k -= 1;
                continue;
            }
            return false;
        }
        // Blank line ends the run: the rationale must be adjacent.
        return false;
    }
    false
}

/// `panic_hygiene`: library code returns `Result`, it does not panic.
/// `.unwrap()`/`.expect()` outside tests/benches need either a
/// conversion to an error path or a written `// lint: allow` rationale.
pub fn panic_hygiene(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.kind, FileKind::Lib(_)) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Tok::Ident(id) = &tok.kind else { continue };
        if !(id == "unwrap" || id == "expect") {
            continue;
        }
        if ctx.is_test_line(tok.line) {
            continue;
        }
        let preceded_by_dot = i > 0 && matches!(toks[i - 1].kind, Tok::Punct('.'));
        let called = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('(')));
        if preceded_by_dot && called {
            ctx.emit(
                out,
                Rule::PanicHygiene,
                tok.line,
                format!("`.{id}()` in library code: return an error or add `// lint: allow(panic_hygiene) — <why this cannot fail>`"),
            );
        }
    }
}

/// Reports directive-level problems: malformed `lint:` comments, allows
/// without a written reason, unknown rule names, and stale (unused)
/// allows. Runs after every other rule so usage flags are final.
pub fn allowlist_hygiene(ctx: &FileCtx, out: &mut Vec<Violation>) {
    const KNOWN: [&str; 5] = [
        "determinism",
        "lock_discipline",
        "unsafe_audit",
        "panic_hygiene",
        "name_inventory",
    ];
    for (line, msg) in &ctx.directives.malformed {
        out.push(Violation {
            rule: Rule::Allowlist,
            file: ctx.path.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }
    for allow in &ctx.directives.allows {
        if !KNOWN.contains(&allow.rule.as_str()) {
            out.push(Violation {
                rule: Rule::Allowlist,
                file: ctx.path.to_string(),
                line: allow.line,
                message: format!("`lint: allow({})` names no known rule", allow.rule),
            });
            continue;
        }
        if allow.reason.is_empty() {
            out.push(Violation {
                rule: Rule::Allowlist,
                file: ctx.path.to_string(),
                line: allow.line,
                message: format!(
                    "`lint: allow({})` carries no reason; write one after an em-dash",
                    allow.rule
                ),
            });
        }
        if !allow.used.get() {
            out.push(Violation {
                rule: Rule::Allowlist,
                file: ctx.path.to_string(),
                line: allow.line,
                message: format!(
                    "stale `lint: allow({})`: nothing on its line triggers that rule",
                    allow.rule
                ),
            });
        }
    }
    if let Some((line, reason)) = &ctx.directives.timing_designated {
        if reason.is_empty() {
            out.push(Violation {
                rule: Rule::Allowlist,
                file: ctx.path.to_string(),
                line: *line,
                message: "`lint: timing-designated` carries no reason".to_string(),
            });
        }
    }
}
