//! A minimal Rust lexer: just enough to tell identifiers, punctuation,
//! string/char literals and comments apart, with line numbers.
//!
//! The analyzer works on token patterns (`Ident("partial_cmp")` followed
//! by a balanced call then `.unwrap`), never on raw text, so pattern
//! words inside strings, comments or doc examples can never trip a lint.
//! Comments are kept in a side channel because two lints read them: the
//! `// SAFETY:` audit and the `// lint: allow(...)` escape hatch.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `#`, ...).
    Punct(char),
    /// String literal content, escapes `\"` and `\\` resolved.
    Str(String),
    /// Char literal (content irrelevant to every lint).
    Char,
    /// Numeric literal (content irrelevant to every lint).
    Num,
    /// Lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A line or block comment with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after `//` (line) or between `/*`/`*/` (block).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any code token starts on `line`.
    pub fn line_has_tokens(&self, line: u32) -> bool {
        self.tokens.binary_search_by(|t| t.line.cmp(&line)).is_ok()
    }

    /// Whether any comment covers `line`.
    pub fn line_has_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line)
    }

    /// The first token line strictly after `line`, if any.
    pub fn next_token_line(&self, line: u32) -> Option<u32> {
        let idx = self.tokens.partition_point(|t| t.line <= line);
        self.tokens.get(idx).map(|t| t.line)
    }
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are closed at end of input (the linter runs on code that
/// `rustc` already accepted, so this is purely defensive).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    line,
                    end_line: line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&bytes[start..end]).into_owned(),
                    line: start_line,
                    end_line: line,
                });
            }
            b'"' => {
                let (content, ni, nl) = lex_string(bytes, i + 1, line);
                out.tokens.push(Token {
                    kind: Tok::Str(content),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let (kind, ni, nl) = lex_prefixed_string(bytes, i, line);
                out.tokens.push(Token { kind, line });
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    // Escaped char literal: consume to the closing quote.
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                } else {
                    while j < bytes.len() && is_ident_char(bytes[j]) {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'\'') && j > i + 1 {
                        out.tokens.push(Token {
                            kind: Tok::Char,
                            line,
                        });
                        i = j + 1;
                    } else if j == i + 1 && bytes.get(j) == Some(&b'\'') {
                        // `''` — malformed; skip both quotes.
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            kind: Tok::Lifetime,
                            line,
                        });
                        i = j;
                    }
                }
            }
            b'0'..=b'9' => {
                let mut j = i + 1;
                while j < bytes.len() && (is_ident_char(bytes[j])) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Num,
                    line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Ident(String::from_utf8_lossy(&bytes[i..j]).into_owned()),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Whether position `i` starts a raw/byte string (`r"`, `r#`, `b"`,
/// `br"`, `br#`) rather than a plain identifier beginning with r/b.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'"') {
            return true;
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    false
}

/// Lexes a plain string body starting just after the opening quote.
/// Returns (content with `\"`/`\\` resolved, next index, next line).
fn lex_string(bytes: &[u8], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let mut content = Vec::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return (String::from_utf8_lossy(&content).into_owned(), i + 1, line),
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(b'"') => content.push(b'"'),
                    Some(b'\\') => content.push(b'\\'),
                    Some(b'n') => content.push(b'\n'),
                    Some(&other) => {
                        content.push(b'\\');
                        content.push(other);
                    }
                    None => {}
                }
                i += 2;
            }
            b'\n' => {
                line += 1;
                content.push(b'\n');
                i += 1;
            }
            c => {
                content.push(c);
                i += 1;
            }
        }
    }
    (String::from_utf8_lossy(&content).into_owned(), i, line)
}

/// Lexes a raw or byte string starting at its `r`/`b` prefix. Byte
/// strings keep their (lossy) content; raw strings are matched against
/// the exact `#` fence count.
fn lex_prefixed_string(bytes: &[u8], mut i: usize, mut line: u32) -> (Tok, usize, u32) {
    if bytes[i] == b'b' {
        i += 1;
    }
    let mut hashes = 0usize;
    if bytes.get(i) == Some(&b'r') {
        i += 1;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
    }
    // Skip the opening quote.
    i += 1;
    let start = i;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if hashes == 0 {
            if bytes[i] == b'\\' {
                i += 2;
                continue;
            }
            if bytes[i] == b'"' {
                let content = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                return (Tok::Str(content), i + 1, line);
            }
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                let content = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                return (Tok::Str(content), j, line);
            }
        }
        i += 1;
    }
    (
        Tok::Str(String::from_utf8_lossy(&bytes[start..]).into_owned()),
        i,
        line,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in a block */
            let s = "HashMap .unwrap()";
            let r = r#"SystemTime"#;
            let real = foo;
        "##;
        assert_eq!(idents(src), ["let", "s", "let", "r", "let", "real", "foo"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn string_escapes_resolve() {
        let lexed = lex(r#"let s = "a \"key\": {}";"#);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [r#"a "key": {}"#]);
    }

    #[test]
    fn comments_carry_lines() {
        let lexed = lex("let a = 1;\n// SAFETY: fine\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert!(lexed.line_has_tokens(3));
        assert!(!lexed.line_has_tokens(2));
    }

    #[test]
    fn raw_string_fences_match_exactly() {
        let lexed = lex(r###"let s = r##"inner "# quote"##; let t = u;"###);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [r##"inner "# quote"##]);
    }
}
