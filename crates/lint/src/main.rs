//! `twoview-lint` CLI: walks the workspace, runs every rule, writes
//! `LINT_report.json`, and exits non-zero on any violation.
//!
//! ```text
//! twoview-lint --workspace                 lint the enclosing workspace
//! twoview-lint --workspace --root <dir>    lint an explicit root
//! twoview-lint --workspace --write-inventory   regenerate NAMES_inventory.json
//! twoview-lint --workspace --report <path>     report destination
//! ```

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use twoview_lint::{collect_inventory, lint, LintInput, SourceFile, CI_PATH, INVENTORY_PATH};

const REPORT_PATH: &str = "LINT_report.json";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_inventory = false;
    let mut report_path = REPORT_PATH.to_string();
    let mut quiet = false;
    let mut workspace = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--write-inventory" => write_inventory = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = p,
                None => return usage("--report needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace (the only supported scope)");
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("twoview-lint: no workspace root (Cargo.toml with [workspace]) above the current directory");
                return ExitCode::from(2);
            }
        },
    };

    let mut input = LintInput::default();
    let mut rs_files = Vec::new();
    walk(&root, &root, &mut rs_files);
    rs_files.sort();
    for rel in rs_files {
        match fs::read_to_string(root.join(&rel)) {
            Ok(content) => input.files.push(SourceFile::new(rel, content)),
            Err(err) => {
                eprintln!("twoview-lint: cannot read {rel}: {err}");
                return ExitCode::from(2);
            }
        }
    }
    input.inventory = fs::read_to_string(root.join(INVENTORY_PATH)).ok();
    input.ci_yaml = fs::read_to_string(root.join(CI_PATH)).ok();

    if write_inventory {
        let inventory = collect_inventory(&input).to_json();
        if let Err(err) = fs::write(root.join(INVENTORY_PATH), &inventory) {
            eprintln!("twoview-lint: cannot write {INVENTORY_PATH}: {err}");
            return ExitCode::from(2);
        }
        if !quiet {
            println!("wrote {INVENTORY_PATH} from current source");
        }
        input.inventory = Some(inventory);
    }

    let report = lint(&input);
    if let Err(err) = fs::write(root.join(&report_path), report.to_json()) {
        eprintln!("twoview-lint: cannot write {report_path}: {err}");
        return ExitCode::from(2);
    }

    if !quiet {
        for v in &report.violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "twoview-lint: {} files, {} violations, {} allows ({})",
            report.files_scanned,
            report.violations.len(),
            report.allows.len(),
            report_path,
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("twoview-lint: {problem}");
    eprintln!("usage: twoview-lint --workspace [--root <dir>] [--write-inventory] [--report <path>] [--quiet]");
    ExitCode::from(2)
}

/// Ascends from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collects workspace-relative `.rs` paths, skipping build
/// output, vendored stand-ins and VCS internals.
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) {
    const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
