//! Violations, allow tallies, and the machine-readable `LINT_report.json`.

use std::fmt;

/// The lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Bit-identical solver/model paths: no hash iteration, wall clock,
    /// thread identity or `partial_cmp().unwrap()`.
    Determinism,
    /// No raw `std::sync` locks or poison-blind `.lock().unwrap()`.
    LockDiscipline,
    /// Every `unsafe` carries `// SAFETY:`; crate roots stamp the
    /// matching boundary attribute.
    UnsafeAudit,
    /// No `.unwrap()`/`.expect()` in library code.
    PanicHygiene,
    /// obs/faults names ↔ inventory ↔ CI greps stay in sync.
    NameInventory,
    /// The escape hatch itself: malformed, reason-less or stale allows.
    Allowlist,
}

impl Rule {
    /// All rules in report order.
    pub const ALL: [Rule; 6] = [
        Rule::Determinism,
        Rule::LockDiscipline,
        Rule::UnsafeAudit,
        Rule::PanicHygiene,
        Rule::NameInventory,
        Rule::Allowlist,
    ];

    /// Stable rule name (used in `allow(...)` and the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::LockDiscipline => "lock_discipline",
            Rule::UnsafeAudit => "unsafe_audit",
            Rule::PanicHygiene => "panic_hygiene",
            Rule::NameInventory => "name_inventory",
            Rule::Allowlist => "allowlist",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (1 for file-level findings).
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// One consumed `// lint: allow` entry, tallied in the report.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Rule the allow suppresses.
    pub rule: String,
    /// File the directive lives in.
    pub file: String,
    /// Line of the directive.
    pub line: u32,
    /// The written reason.
    pub reason: String,
}

/// The full lint result.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files analyzed (skipped files excluded).
    pub files_scanned: usize,
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// All consumed allow directives, sorted by (file, line).
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Allow count for one rule.
    pub fn allow_count(&self, rule: Rule) -> usize {
        self.allows.iter().filter(|a| a.rule == rule.name()).count()
    }

    /// Sorts violations and allows into their stable report order.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Renders `LINT_report.json`: per-rule counts, the allow tally with
    /// reasons, and every violation.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"violations_total\": {},\n",
            self.violations.len()
        ));
        out.push_str(&format!("  \"allows_total\": {},\n", self.allows.len()));
        out.push_str("  \"rules\": {\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            let comma = if i + 1 < Rule::ALL.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {{ \"violations\": {}, \"allows\": {} }}{comma}\n",
                rule.name(),
                self.count(*rule),
                self.allow_count(*rule),
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"allowlist\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let comma = if i + 1 < self.allows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\" }}{comma}\n",
                escape(&a.file),
                a.line,
                escape(&a.rule),
                escape(&a.reason),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}{comma}\n",
                escape(&v.file),
                v.line,
                v.rule.name(),
                escape(&v.message),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the report holds no control chars).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
