//! # twoview-lint
//!
//! Project-invariant static analysis for the twoview workspace. The
//! runtime tests prove the load-bearing guarantees — bit-identical
//! models across threads/kernels/tidset modes, poison-tolerant locking,
//! audited `unsafe`, inventoried observability names — but only for the
//! code paths they happen to execute. This linter makes the *contracts*
//! themselves compile-time-checkable: a hand-rolled, std-only Rust
//! lexer plus token-pattern rules that walk every `.rs` file and fail
//! CI the moment code drifts.
//!
//! Rules (each individually testable, see `tests/selftest.rs`):
//!
//! * [`determinism`](rules::determinism) — no `HashMap`/`HashSet`,
//!   `Instant::now`/`SystemTime`, or thread identity in the solver/model
//!   crates (`core`, `mining`, `data`); float orderings via `total_cmp`.
//! * [`lock_discipline`](rules::lock_discipline) — raw `std::sync`
//!   primitives stay inside `twoview-runtime`; the poison-blind
//!   `.lock().unwrap()` pattern is banned everywhere.
//! * [`unsafe_audit`](rules::unsafe_audit) — every `unsafe` carries a
//!   `// SAFETY:` rationale, and every crate root stamps its boundary
//!   attribute (`#![forbid(unsafe_code)]`, or
//!   `#![deny(unsafe_op_in_unsafe_fn)]` where `unsafe` exists).
//! * [`panic_hygiene`](rules::panic_hygiene) — no `.unwrap()`/
//!   `.expect()` in library code outside tests/benches.
//! * [`name_inventory`](names) — every obs metric/span/event and fault
//!   point name used in source appears in `NAMES_inventory.json` and
//!   vice versa; every key CI greps out of `BENCH_smoke.json` is emitted
//!   by some source literal.
//!
//! Escape hatch: `// lint: allow(<rule>) — reason` on (or directly
//! above) the offending line. Allows are counted, require a written
//! reason, and go stale (fail the lint) when the code they covered
//! stops triggering the rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod lexer;
pub mod names;
pub mod report;
pub mod rules;

use context::FileKind;
use lexer::Tok;
use names::{Inventory, NameUse};
use report::{AllowRecord, Report, Rule, Violation};

/// Workspace-relative path of the checked-in name inventory.
pub const INVENTORY_PATH: &str = "NAMES_inventory.json";
/// Workspace-relative path of the CI workflow the grep-drift check reads.
pub const CI_PATH: &str = ".github/workflows/ci.yml";

/// One source file handed to the linter (real or fixture).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// Full file content.
    pub content: String,
}

impl SourceFile {
    /// Convenience constructor for tests and the walker.
    pub fn new(path: impl Into<String>, content: impl Into<String>) -> SourceFile {
        SourceFile {
            path: path.into(),
            content: content.into(),
        }
    }
}

/// Everything one lint run looks at.
#[derive(Debug, Default)]
pub struct LintInput {
    /// All `.rs` files of the workspace.
    pub files: Vec<SourceFile>,
    /// Content of [`INVENTORY_PATH`], when it exists.
    pub inventory: Option<String>,
    /// Content of [`CI_PATH`], when it exists.
    pub ci_yaml: Option<String>,
}

struct Prepared {
    path: String,
    kind: FileKind,
    lexed: lexer::Lexed,
    test_regions: Vec<(u32, u32)>,
    directives: context::Directives,
}

fn prepare(files: &[SourceFile]) -> Vec<Prepared> {
    files
        .iter()
        .map(|f| {
            let kind = context::classify(&f.path);
            let lexed = lexer::lex(&f.content);
            let test_regions = context::test_regions(&lexed);
            let directives = context::parse_directives(&lexed);
            Prepared {
                path: f.path.clone(),
                kind,
                lexed,
                test_regions,
                directives,
            }
        })
        .collect()
}

/// Runs every rule over the input and returns the full report.
pub fn lint(input: &LintInput) -> Report {
    let prepared = prepare(&input.files);
    let mut violations = Vec::new();
    let mut uses: Vec<NameUse> = Vec::new();
    let mut literals: Vec<String> = Vec::new();

    for p in &prepared {
        if matches!(p.kind, FileKind::Skipped) {
            continue;
        }
        let ctx = rules::FileCtx {
            path: &p.path,
            kind: &p.kind,
            lexed: &p.lexed,
            test_regions: &p.test_regions,
            directives: &p.directives,
        };
        rules::determinism(&ctx, &mut violations);
        rules::lock_discipline(&ctx, &mut violations);
        rules::unsafe_audit(&ctx, &mut violations);
        rules::panic_hygiene(&ctx, &mut violations);
        names::collect_obs_uses(
            &p.path,
            &p.kind,
            &p.lexed,
            &p.test_regions,
            &mut uses,
            &mut violations,
        );
        names::collect_fault_points(&p.path, &p.lexed, &mut uses);
        if matches!(p.kind, FileKind::Lib(_) | FileKind::Bin(_)) {
            for tok in &p.lexed.tokens {
                if let Tok::Str(s) = &tok.kind {
                    literals.push(s.clone());
                }
            }
        }
    }

    boundary_attributes(&prepared, &mut violations);
    names::check_inventory(
        INVENTORY_PATH,
        input.inventory.as_deref(),
        &uses,
        &mut violations,
    );
    names::check_ci_greps(
        CI_PATH,
        input.ci_yaml.as_deref(),
        &literals,
        &mut violations,
    );

    // Allow-directive hygiene runs last: every rule has marked its
    // consumed allows, so the stale check is now meaningful.
    let mut allows = Vec::new();
    for p in &prepared {
        if matches!(p.kind, FileKind::Skipped) {
            continue;
        }
        let ctx = rules::FileCtx {
            path: &p.path,
            kind: &p.kind,
            lexed: &p.lexed,
            test_regions: &p.test_regions,
            directives: &p.directives,
        };
        rules::allowlist_hygiene(&ctx, &mut violations);
        for a in &p.directives.allows {
            if a.used.get() {
                allows.push(AllowRecord {
                    rule: a.rule.clone(),
                    file: p.path.clone(),
                    line: a.line,
                    reason: a.reason.clone(),
                });
            }
        }
    }

    let mut report = Report {
        files_scanned: prepared
            .iter()
            .filter(|p| !matches!(p.kind, FileKind::Skipped))
            .count(),
        violations,
        allows,
    };
    report.finish();
    report
}

/// Collects the current obs/faults namespace from source, for
/// `--write-inventory` and the round-trip self-test.
pub fn collect_inventory(input: &LintInput) -> Inventory {
    let prepared = prepare(&input.files);
    let mut uses = Vec::new();
    let mut scratch = Vec::new();
    for p in &prepared {
        names::collect_obs_uses(
            &p.path,
            &p.kind,
            &p.lexed,
            &p.test_regions,
            &mut uses,
            &mut scratch,
        );
        names::collect_fault_points(&p.path, &p.lexed, &mut uses);
    }
    Inventory::from_uses(&uses)
}

/// The unsafe-boundary stamp: each compilation root must carry the
/// attribute matching its unsafe surface. Roots whose target holds no
/// `unsafe` must `#![forbid(unsafe_code)]` (compiler-enforced, not just
/// linter-enforced); roots with `unsafe` must
/// `#![deny(unsafe_op_in_unsafe_fn)]` so unsafe bodies cannot silently
/// widen their scope.
fn boundary_attributes(prepared: &[Prepared], out: &mut Vec<Violation>) {
    for p in prepared {
        let target_files: Vec<&Prepared> = match (&p.kind, lib_root_crate(&p.path)) {
            // A lib root speaks for every lib file of its crate.
            (FileKind::Lib(_), Some(krate)) => prepared
                .iter()
                .filter(|q| match &q.kind {
                    FileKind::Lib(k) => k == &krate,
                    _ => false,
                })
                .collect(),
            // A bin file is its own compilation root.
            (FileKind::Bin(_), _) => vec![p],
            _ => continue,
        };
        let has_unsafe = target_files.iter().any(|q| {
            q.lexed
                .tokens
                .iter()
                .any(|t| matches!(&t.kind, Tok::Ident(id) if id == "unsafe"))
        });
        let attrs = inner_lint_attrs(&p.lexed);
        let ok = if has_unsafe {
            attrs
                .iter()
                .any(|(_, name)| name == "unsafe_op_in_unsafe_fn")
        } else {
            attrs
                .iter()
                .any(|(verb, name)| verb == "forbid" && name == "unsafe_code")
        };
        if !ok {
            let wanted = if has_unsafe {
                "#![deny(unsafe_op_in_unsafe_fn)] (this target holds `unsafe`)"
            } else {
                "#![forbid(unsafe_code)] (this target holds no `unsafe`)"
            };
            out.push(Violation {
                rule: Rule::UnsafeAudit,
                file: p.path.clone(),
                line: 1,
                message: format!(
                    "compilation root is missing its unsafe-boundary attribute: {wanted}"
                ),
            });
        }
    }
}

/// When `path` is a crate lib root, the crate key it roots.
fn lib_root_crate(path: &str) -> Option<String> {
    if path == "src/lib.rs" {
        return Some("twoview".to_string());
    }
    let rest = path.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then(|| krate.to_string())
}

/// Inner `#![verb(name)]` attributes of a file: (verb, lint name) pairs.
fn inner_lint_attrs(lexed: &lexer::Lexed) -> Vec<(String, String)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 < toks.len() {
        let is_inner = matches!(toks[i].kind, Tok::Punct('#'))
            && matches!(toks[i + 1].kind, Tok::Punct('!'))
            && matches!(toks[i + 2].kind, Tok::Punct('['));
        if !is_inner {
            i += 1;
            continue;
        }
        if let Some(Tok::Ident(verb)) = toks.get(i + 3).map(|t| &t.kind) {
            // Collect every ident up to the closing `]` (handles
            // `#![deny(a, b)]` and nested paths like `clippy::x`).
            let mut j = i + 4;
            let mut depth = 1i32;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(name) => out.push((verb.clone(), name.clone())),
                    _ => {}
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_attr_extraction() {
        let lexed = lexer::lex("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n");
        let attrs = inner_lint_attrs(&lexed);
        assert!(attrs.contains(&("forbid".to_string(), "unsafe_code".to_string())));
        assert!(attrs.contains(&("warn".to_string(), "missing_docs".to_string())));
    }

    #[test]
    fn lib_root_detection() {
        assert_eq!(lib_root_crate("src/lib.rs").as_deref(), Some("twoview"));
        assert_eq!(
            lib_root_crate("crates/core/src/lib.rs").as_deref(),
            Some("core")
        );
        assert_eq!(lib_root_crate("crates/core/src/select.rs"), None);
    }
}
