//! Fixture-based self-tests: one positive and one negative case per
//! rule, the allow-directive syntax, the inventory round trip, and the
//! two acceptance proofs over the real workspace (deleting a SAFETY
//! comment or renaming an obs metric must flip the lint to failing).
//!
//! Fixtures are plain strings — the linter is token-level, so they do
//! not need to compile.

use twoview_lint::names::Inventory;
use twoview_lint::report::{Report, Rule};
use twoview_lint::{collect_inventory, lint, LintInput, SourceFile};

/// A lint input whose inventory is present-but-empty, so fixtures that
/// register no names stay clean on the `name_inventory` rule.
fn fixture_input(files: Vec<SourceFile>) -> LintInput {
    LintInput {
        files,
        inventory: Some(Inventory::default().to_json()),
        ci_yaml: None,
    }
}

fn run(path: &str, content: &str) -> Report {
    lint(&fixture_input(vec![SourceFile::new(path, content)]))
}

fn count(report: &Report, rule: Rule) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

// --- determinism -----------------------------------------------------

#[test]
fn determinism_flags_hash_containers_and_wall_clock() {
    let report = run(
        "crates/core/src/fix.rs",
        "use std::collections::HashMap;\n\
         pub fn f() {\n\
             let t = std::time::Instant::now();\n\
             let _ = (t, HashSet::<u32>::new());\n\
         }\n",
    );
    assert_eq!(count(&report, Rule::Determinism), 3);
}

#[test]
fn determinism_flags_partial_cmp_unwrap_but_not_total_cmp() {
    let bad = run(
        "crates/mining/src/fix.rs",
        "pub fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n",
    );
    assert_eq!(count(&bad, Rule::Determinism), 1);
    let good = run(
        "crates/mining/src/fix.rs",
        "pub fn f(a: f64, b: f64) { a.total_cmp(&b); }\n",
    );
    assert!(good.is_clean(), "{:?}", good.violations);
}

#[test]
fn determinism_is_scoped_to_the_model_crates() {
    let report = run(
        "crates/eval/src/fix.rs",
        "use std::collections::HashMap;\n\
         pub fn f() { let _ = std::time::Instant::now(); }\n",
    );
    assert_eq!(count(&report, Rule::Determinism), 0);
}

#[test]
fn determinism_ignores_strings_comments_and_test_regions() {
    let report = run(
        "crates/data/src/fix.rs",
        "//! A HashMap mentioned in prose is fine.\n\
         pub const DOC: &str = \"replaced the HashMap with a BTreeMap\";\n\
         #[cfg(test)]\n\
         mod tests {\n\
             use std::collections::HashMap;\n\
             fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }\n\
         }\n",
    );
    assert_eq!(
        count(&report, Rule::Determinism),
        0,
        "{:?}",
        report.violations
    );
}

#[test]
fn determinism_timing_designated_file_may_read_the_clock() {
    let report = run(
        "crates/core/src/fix.rs",
        "// lint: timing-designated — stats module, timing never feeds the model\n\
         pub fn f() { let _ = std::time::Instant::now(); }\n",
    );
    assert_eq!(
        count(&report, Rule::Determinism),
        0,
        "{:?}",
        report.violations
    );
}

// --- lock_discipline -------------------------------------------------

#[test]
fn lock_discipline_flags_raw_primitives_outside_runtime() {
    let report = run(
        "crates/core/src/fix.rs",
        "use std::sync::{Condvar, Mutex};\n\
         pub struct S { m: RwLock<u32> }\n",
    );
    assert_eq!(count(&report, Rule::LockDiscipline), 3);
}

#[test]
fn lock_discipline_flags_poison_blind_locking_everywhere() {
    // Even inside the runtime crate (where raw primitives are allowed),
    // `.lock().unwrap()` is the banned poison-blind pattern.
    let report = run(
        "crates/runtime/src/fix.rs",
        "pub fn f() { shared.queue.lock().unwrap().pop(); }\n",
    );
    assert_eq!(count(&report, Rule::LockDiscipline), 1);
}

#[test]
fn lock_discipline_exempts_the_sync_module_and_tolerant_wrappers() {
    let sync = run(
        "crates/runtime/src/sync.rs",
        "use std::sync::{Condvar, Mutex};\n\
         pub fn f(m: &Mutex<u32>) { let _ = m.lock(); }\n",
    );
    assert_eq!(count(&sync, Rule::LockDiscipline), 0);
    let wrapper = run(
        "crates/core/src/fix.rs",
        "use twoview_runtime::sync::TolerantMutex;\n\
         pub fn f(m: &TolerantMutex<u32>) { let _ = m.lock(); }\n",
    );
    assert_eq!(
        count(&wrapper, Rule::LockDiscipline),
        0,
        "{:?}",
        wrapper.violations
    );
}

// --- unsafe_audit ----------------------------------------------------

#[test]
fn unsafe_audit_requires_a_safety_rationale() {
    let bare = run(
        "crates/data/src/fix.rs",
        "pub fn f(p: *const u32) -> u32 {\n\
             unsafe { *p }\n\
         }\n",
    );
    assert_eq!(count(&bare, Rule::UnsafeAudit), 1);

    let documented = run(
        "crates/data/src/fix.rs",
        "pub fn f(p: *const u32) -> u32 {\n\
             // SAFETY: the caller hands a valid, aligned pointer.\n\
             unsafe { *p }\n\
         }\n",
    );
    assert_eq!(count(&documented, Rule::UnsafeAudit), 0);
}

#[test]
fn unsafe_audit_blank_line_breaks_the_rationale_run() {
    let report = run(
        "crates/data/src/fix.rs",
        "pub fn f(p: *const u32) -> u32 {\n\
             // SAFETY: too far away to count.\n\
             \n\
             unsafe { *p }\n\
         }\n",
    );
    assert_eq!(count(&report, Rule::UnsafeAudit), 1);
}

#[test]
fn unsafe_audit_applies_inside_tests_too() {
    let report = run(
        "crates/data/src/fix.rs",
        "#[cfg(test)]\n\
         mod tests {\n\
             fn t(p: *const u32) -> u32 { unsafe { *p } }\n\
         }\n",
    );
    assert_eq!(count(&report, Rule::UnsafeAudit), 1);
}

#[test]
fn boundary_attribute_matches_the_unsafe_surface() {
    // A safe crate without the forbid stamp: flagged at its lib root.
    let unstamped = run("crates/core/src/lib.rs", "pub mod fix;\n");
    assert_eq!(count(&unstamped, Rule::UnsafeAudit), 1);

    let stamped = run(
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod fix;\n",
    );
    assert_eq!(count(&stamped, Rule::UnsafeAudit), 0);

    // A crate holding `unsafe` must deny unsafe_op_in_unsafe_fn instead;
    // forbid(unsafe_code) alone no longer matches its surface.
    let mixed = lint(&fixture_input(vec![
        SourceFile::new(
            "crates/data/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod kern;\n",
        ),
        SourceFile::new(
            "crates/data/src/kern.rs",
            "pub fn f(p: *const u32) -> u32 {\n\
                 // SAFETY: caller contract.\n\
                 unsafe { *p }\n\
             }\n",
        ),
    ]));
    assert_eq!(count(&mixed, Rule::UnsafeAudit), 1);

    let denied = lint(&fixture_input(vec![
        SourceFile::new(
            "crates/data/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\npub mod kern;\n",
        ),
        SourceFile::new(
            "crates/data/src/kern.rs",
            "pub fn f(p: *const u32) -> u32 {\n\
                 // SAFETY: caller contract.\n\
                 unsafe { *p }\n\
             }\n",
        ),
    ]));
    assert_eq!(
        count(&denied, Rule::UnsafeAudit),
        0,
        "{:?}",
        denied.violations
    );
}

// --- panic_hygiene ---------------------------------------------------

#[test]
fn panic_hygiene_flags_library_unwraps_only() {
    let lib = run(
        "crates/core/src/fix.rs",
        "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n",
    );
    assert_eq!(count(&lib, Rule::PanicHygiene), 1);

    // Bins and test regions may panic freely.
    let bin = run(
        "crates/eval/src/bin/fix.rs",
        "#![forbid(unsafe_code)]\n\
         fn main() { std::env::args().next().unwrap(); }\n",
    );
    assert_eq!(count(&bin, Rule::PanicHygiene), 0);
    let test = run(
        "crates/core/src/fix.rs",
        "#[cfg(test)]\n\
         mod tests {\n\
             fn t(v: &[u32]) { v.first().unwrap(); }\n\
         }\n",
    );
    assert_eq!(count(&test, Rule::PanicHygiene), 0);
}

// --- allow directives ------------------------------------------------

#[test]
fn allow_with_reason_suppresses_and_is_recorded() {
    let report = run(
        "crates/core/src/fix.rs",
        "pub fn f(v: &[u32]) -> u32 {\n\
             // lint: allow(panic_hygiene) — fixture invariant: v is non-empty\n\
             *v.first().unwrap()\n\
         }\n",
    );
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "panic_hygiene");
    assert_eq!(report.allows[0].reason, "fixture invariant: v is non-empty");
}

#[test]
fn allow_without_reason_is_a_violation() {
    let report = run(
        "crates/core/src/fix.rs",
        "pub fn f(v: &[u32]) -> u32 {\n\
             // lint: allow(panic_hygiene)\n\
             *v.first().unwrap()\n\
         }\n",
    );
    // The unwrap is suppressed, but the reason-less directive is flagged.
    assert_eq!(count(&report, Rule::PanicHygiene), 0);
    assert_eq!(count(&report, Rule::Allowlist), 1);
}

#[test]
fn allow_naming_an_unknown_rule_is_a_violation() {
    let report = run(
        "crates/core/src/fix.rs",
        "// lint: allow(speling) — not a rule\n\
         pub fn f() {}\n",
    );
    assert_eq!(count(&report, Rule::Allowlist), 1);
}

#[test]
fn stale_allow_is_a_violation() {
    let report = run(
        "crates/core/src/fix.rs",
        "// lint: allow(panic_hygiene) — nothing here panics any more\n\
         pub fn f() {}\n",
    );
    assert_eq!(count(&report, Rule::Allowlist), 1);
    assert!(report.violations[0].message.contains("stale"));
}

#[test]
fn allow_only_covers_its_own_line() {
    // The directive sits above line 3; the unwrap on line 5 stays flagged
    // (and the allow itself therefore reads stale).
    let report = run(
        "crates/core/src/fix.rs",
        "pub fn f(v: &[u32]) -> u32 {\n\
             // lint: allow(panic_hygiene) — covers the next line only\n\
             let a = *v.first().unwrap();\n\
             let b: u32 = 1;\n\
             a + b + *v.last().unwrap()\n\
         }\n",
    );
    assert_eq!(count(&report, Rule::PanicHygiene), 1);
    assert_eq!(report.violations[0].line, 5);
}

// --- name inventory --------------------------------------------------

fn obs_fixture() -> SourceFile {
    SourceFile::new(
        "crates/core/src/fix.rs",
        "pub fn f() {\n\
             obs::counter(\"fix.calls\").incr();\n\
             let _s = obs::span(\"fix.run\");\n\
             obs::event(\"fix.done\");\n\
         }\n",
    )
}

#[test]
fn inventory_round_trips_from_source() {
    let mut input = fixture_input(vec![obs_fixture()]);
    let collected = collect_inventory(&input);
    assert!(collected.metrics.contains("fix.calls"));
    assert!(collected.spans.contains("fix.run"));
    assert!(collected.events.contains("fix.done"));

    input.inventory = Some(collected.to_json());
    let report = lint(&input);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn inventory_drift_is_flagged_both_ways() {
    let mut input = fixture_input(vec![obs_fixture()]);
    let mut collected = collect_inventory(&input);
    // Simulate a rename that only reached the inventory.
    collected.metrics.remove("fix.calls");
    collected.metrics.insert("fix.invocations".to_string());
    input.inventory = Some(collected.to_json());

    let report = lint(&input);
    // One side: source uses an uninventoried name; other side: the
    // inventory lists a name no longer emitted.
    assert_eq!(
        count(&report, Rule::NameInventory),
        2,
        "{:?}",
        report.violations
    );
}

#[test]
fn missing_inventory_file_is_a_violation() {
    let mut input = fixture_input(vec![obs_fixture()]);
    input.inventory = None;
    let report = lint(&input);
    assert_eq!(count(&report, Rule::NameInventory), 1);
    assert!(report.violations[0].message.contains("missing inventory"));
}

#[test]
fn non_literal_obs_name_is_a_violation() {
    let report = run(
        "crates/core/src/fix.rs",
        "pub fn f(name: &str) { obs::counter(name).incr(); }\n",
    );
    assert_eq!(count(&report, Rule::NameInventory), 1);
}

#[test]
fn ci_grep_keys_must_exist_in_source_literals() {
    let emitter = SourceFile::new(
        "crates/bench/src/fix.rs",
        "pub fn j() -> String { format!(\"{{\\\"some_key\\\": {}}}\", 1) }\n",
    );
    let grep = |key: &str| format!("      - run: grep -q '\"{key}\": true' BENCH_smoke.json\n");

    let mut input = fixture_input(vec![emitter.clone()]);
    input.ci_yaml = Some(grep("some_key"));
    assert!(lint(&input).is_clean(), "{:?}", lint(&input).violations);

    let mut input = fixture_input(vec![emitter]);
    input.ci_yaml = Some(grep("renamed_key"));
    let report = lint(&input);
    assert_eq!(
        count(&report, Rule::NameInventory),
        1,
        "{:?}",
        report.violations
    );
}

// --- acceptance proofs over the real workspace -----------------------

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn walk(root: &std::path::Path, dir: &std::path::Path, out: &mut Vec<String>) {
    const SKIP: [&str; 4] = ["target", "vendor", ".git", "node_modules"];
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).expect("under root");
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
}

fn real_workspace_input() -> LintInput {
    let root = workspace_root();
    let mut rels = Vec::new();
    walk(&root, &root, &mut rels);
    rels.sort();
    let files = rels
        .into_iter()
        .map(|rel| {
            let content = std::fs::read_to_string(root.join(&rel)).expect("readable source");
            SourceFile::new(rel, content)
        })
        .collect();
    LintInput {
        files,
        inventory: std::fs::read_to_string(root.join(twoview_lint::INVENTORY_PATH)).ok(),
        ci_yaml: std::fs::read_to_string(root.join(twoview_lint::CI_PATH)).ok(),
    }
}

#[test]
fn the_workspace_itself_is_clean() {
    let report = lint(&real_workspace_input());
    assert!(
        report.is_clean(),
        "workspace lint regressions: {:?}",
        report.violations
    );
    // Every recorded allow carries a written reason.
    for allow in &report.allows {
        assert!(!allow.reason.is_empty(), "reason-less allow: {allow:?}");
    }
}

#[test]
fn deleting_any_safety_comment_fails_the_lint() {
    let mut input = real_workspace_input();
    let file = input
        .files
        .iter_mut()
        .find(|f| f.path == "crates/runtime/src/pool.rs")
        .expect("pool.rs present");
    let before = file.content.lines().count();
    file.content = file
        .content
        .lines()
        .filter(|l| !l.contains("SAFETY:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        file.content.lines().count() < before,
        "fixture removed nothing"
    );
    let report = lint(&input);
    assert!(count(&report, Rule::UnsafeAudit) > 0);
}

#[test]
fn renaming_any_obs_metric_fails_the_lint() {
    let mut input = real_workspace_input();
    let needle = "\"select.iterations\"";
    let file = input
        .files
        .iter_mut()
        .find(|f| f.content.contains(needle) && f.path.ends_with(".rs"))
        .expect("a file registers select.iterations");
    file.content = file.content.replace(needle, "\"select.loop_count\"");
    let report = lint(&input);
    assert!(
        count(&report, Rule::NameInventory) >= 2,
        "{:?}",
        report.violations
    );
}
