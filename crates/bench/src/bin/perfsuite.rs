//! `perfsuite` — the repo's machine-readable performance trajectory.
//!
//! Times the TRANSLATOR hot paths on synthetic corpora and writes a
//! `BENCH_select.json` snapshot (at the repo root by default) so speedups
//! and regressions are comparable across PRs:
//!
//! * **candidate mining** — closed frequent two-view itemsets;
//! * **gain refresh** — one full pass recomputing every candidate's three
//!   directional gains, measured against both cover-state layouts: the
//!   columnar production [`CoverState`] and the row-major pre-columnar
//!   reference [`RowCoverState`] (the recorded `speedup` is the headline
//!   number of the columnar transposition);
//! * **full runs** — SELECT (1 thread and all cores), GREEDY, and a
//!   node-capped EXACT;
//! * **identity checks** — SELECT must produce the same table and total
//!   encoded length with `rub` pruning on/off and for 1 vs N refresh
//!   threads.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run --release -p twoview-bench --bin perfsuite            # full
//! cargo run --release -p twoview-bench --bin perfsuite -- --smoke # CI
//! cargo run --release -p twoview-bench --bin perfsuite -- --out p.json
//! ```

use std::time::Instant;

use twoview_core::greedy::translator_greedy_candidates;
use twoview_core::select::{translator_select_candidates, SelectConfig};
use twoview_core::{
    translator_exact_with, CoverState, ExactConfig, GreedyConfig, RowCoverState, TranslatorModel,
};
use twoview_data::prelude::*;
use twoview_data::synthetic::{self, StructureSpec, SyntheticSpec};
use twoview_mining::{mine_closed_twoview, MinerConfig, TwoViewCandidate};

/// The dense synthetic corpus: ~30% density on both sides with strong
/// planted cross-view structure — the regime where per-transaction gain
/// loops hurt the most (large supports, long rows).
fn dense_corpus(n: usize) -> TwoViewDataset {
    let spec = SyntheticSpec {
        name: "dense".into(),
        n_transactions: n,
        n_left: 40,
        n_right: 30,
        density_left: 0.30,
        density_right: 0.30,
        structure: StructureSpec::strong(6),
        seed: 7,
    };
    synthetic::generate(&spec).expect("valid spec").dataset
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// One full gain-refresh pass: every candidate's three directional gains
/// through the given layout's `pair_gains`. Returns the gain sum as a
/// checksum (also keeps the loop from being optimised away).
fn refresh_pass(
    cands: &[TwoViewCandidate],
    tids: &[(Bitmap, Bitmap)],
    pair_gains: impl Fn(&ItemSet, &ItemSet, &Bitmap, &Bitmap) -> [f64; 3],
) -> f64 {
    let mut sum = 0.0;
    for (c, (lt, rt)) in cands.iter().zip(tids) {
        let g = pair_gains(&c.left, &c.right, lt, rt);
        sum += g[0] + g[1] + g[2];
    }
    sum
}

fn models_match(a: &TranslatorModel, b: &TranslatorModel) -> bool {
    a.table == b.table && (a.score.l_total - b.score.l_total).abs() < 1e-9
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Smoke runs default to their own file so a CI-sized local run never
    // clobbers the committed full-corpus BENCH_select.json record.
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if smoke {
            "BENCH_smoke.json"
        } else {
            "BENCH_select.json"
        })
        .to_string();

    let n = if smoke { 300 } else { 2000 };
    let minsup = (n / 10).max(1);
    let reps = if smoke { 2 } else { 3 };

    eprintln!("perfsuite: dense corpus n={n}, minsup={minsup}");
    let data = dense_corpus(n);

    // --- candidate mining -------------------------------------------------
    let mut mcfg = MinerConfig::with_minsup(minsup);
    mcfg.max_itemsets = 2_000_000;
    let (mine_ms, mined) = time_best(reps, || mine_closed_twoview(&data, &mcfg));
    let cands = mined.candidates;
    eprintln!(
        "  mined {} closed candidates in {mine_ms:.1} ms",
        cands.len()
    );

    // --- gain refresh: columnar vs row-major ------------------------------
    // Measure against a mid-build state: apply the first rules SELECT(1)
    // actually picks, so covered/error tables are non-trivial.
    let warm = translator_select_candidates(
        &data,
        &SelectConfig {
            max_iterations: Some(3),
            ..SelectConfig::new(1, minsup)
        },
        &cands,
    );
    let mut col_state = CoverState::new(&data);
    let mut row_state = RowCoverState::new(&data);
    for rule in warm.table.iter() {
        col_state.apply_rule(rule.clone());
        row_state.apply_rule(rule.clone());
    }
    let tids: Vec<(Bitmap, Bitmap)> = cands
        .iter()
        .map(|c| (data.support_set(&c.left), data.support_set(&c.right)))
        .collect();
    let (refresh_columnar_ms, sum_col) = time_best(reps, || {
        refresh_pass(&cands, &tids, |l, r, lt, rt| {
            col_state.pair_gains(l, r, lt, rt)
        })
    });
    let (refresh_rows_ms, sum_rows) = time_best(reps, || {
        refresh_pass(&cands, &tids, |l, r, lt, rt| {
            row_state.pair_gains(l, r, lt, rt)
        })
    });
    let layouts_agree = (sum_col - sum_rows).abs() < 1e-6 * (1.0 + sum_col.abs());
    let speedup = refresh_rows_ms / refresh_columnar_ms.max(1e-9);
    eprintln!(
        "  gain refresh: rows {refresh_rows_ms:.2} ms, columnar {refresh_columnar_ms:.2} ms \
         ({speedup:.1}x, checksums agree: {layouts_agree})"
    );

    // --- full runs --------------------------------------------------------
    let cfg_1t = SelectConfig {
        n_threads: Some(1),
        ..SelectConfig::new(1, minsup)
    };
    let (select_1t_ms, model_1t) = time_best(reps, || {
        translator_select_candidates(&data, &cfg_1t, &cands)
    });
    let cfg_mt = SelectConfig {
        n_threads: None,
        ..SelectConfig::new(1, minsup)
    };
    let (select_mt_ms, model_mt) = time_best(reps, || {
        translator_select_candidates(&data, &cfg_mt, &cands)
    });
    let cfg_norub = SelectConfig {
        use_rub: false,
        n_threads: Some(1),
        ..SelectConfig::new(1, minsup)
    };
    let (select_norub_ms, model_norub) = time_best(reps, || {
        translator_select_candidates(&data, &cfg_norub, &cands)
    });
    // Cost gate forced off: every dirty candidate goes through the
    // rub-prune branch, which must still be model-identical.
    let cfg_rub_forced = SelectConfig {
        rub_cost_gate: false,
        n_threads: Some(1),
        ..SelectConfig::new(1, minsup)
    };
    let (select_rub_forced_ms, model_rub_forced) = time_best(reps, || {
        translator_select_candidates(&data, &cfg_rub_forced, &cands)
    });
    let threads_identical = models_match(&model_1t, &model_mt);
    let rub_identical =
        models_match(&model_1t, &model_norub) && models_match(&model_1t, &model_rub_forced);
    eprintln!(
        "  SELECT(1): {select_1t_ms:.1} ms (1 thread) / {select_mt_ms:.1} ms (all cores) / \
         {select_norub_ms:.1} ms (rub off) / {select_rub_forced_ms:.1} ms (rub forced); {} rules",
        model_1t.table.len()
    );

    let (greedy_ms, greedy_model) = time_best(reps, || {
        translator_greedy_candidates(&data, &GreedyConfig::new(minsup), &cands)
    });
    let exact_cfg = ExactConfig {
        max_nodes: Some(if smoke { 20_000 } else { 200_000 }),
        max_rules: Some(3),
        candidate_seed_minsup: Some(minsup),
        ..ExactConfig::default()
    };
    let (exact_ms, exact_model) = time_best(1, || translator_exact_with(&data, &exact_cfg));
    eprintln!(
        "  GREEDY: {greedy_ms:.1} ms ({} rules); EXACT (capped): {exact_ms:.1} ms ({} rules)",
        greedy_model.table.len(),
        exact_model.table.len()
    );

    // --- JSON -------------------------------------------------------------
    let json = format!(
        "{{\n  \"suite\": \"select\",\n  \"mode\": \"{mode}\",\n  \"corpus\": {{\n    \
         \"name\": \"dense-synthetic\",\n    \"n_transactions\": {n},\n    \"n_left\": 40,\n    \
         \"n_right\": 30,\n    \"density\": 0.30,\n    \"minsup\": {minsup},\n    \
         \"n_candidates\": {ncand}\n  }},\n  \"timings_ms\": {{\n    \
         \"mine_closed\": {mine_ms:.3},\n    \
         \"gain_refresh_rows\": {refresh_rows_ms:.3},\n    \
         \"gain_refresh_columnar\": {refresh_columnar_ms:.3},\n    \
         \"select1_single_thread\": {select_1t_ms:.3},\n    \
         \"select1_multi_thread\": {select_mt_ms:.3},\n    \
         \"select1_no_rub\": {select_norub_ms:.3},\n    \
         \"select1_rub_forced\": {select_rub_forced_ms:.3},\n    \
         \"greedy\": {greedy_ms:.3},\n    \
         \"exact_capped\": {exact_ms:.3}\n  }},\n  \
         \"gain_refresh_speedup\": {speedup:.3},\n  \
         \"select1_rules\": {nrules},\n  \
         \"select1_l_total\": {ltotal:.6},\n  \"identity\": {{\n    \
         \"layout_checksums_agree\": {layouts_agree},\n    \
         \"threads_identical\": {threads_identical},\n    \
         \"rub_identical\": {rub_identical}\n  }}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        ncand = cands.len(),
        nrules = model_1t.table.len(),
        ltotal = model_1t.score.l_total,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("  wrote {out_path}");

    if !(layouts_agree && threads_identical && rub_identical) {
        eprintln!("perfsuite: IDENTITY CHECK FAILED");
        std::process::exit(1);
    }
}
