//! `perfsuite` — the repo's machine-readable performance trajectory.
//!
//! Times the TRANSLATOR hot paths over a small **matrix of synthetic
//! corpora** (varying `n`, vocabulary size, and density — including the
//! wide-sparse and tall-sparse cells where support ≪ n) and writes a
//! `BENCH_select.json` snapshot (at the repo root by default) so speedups
//! and regressions are comparable across PRs. Per corpus it records:
//!
//! * **candidate mining** — closed frequent two-view itemsets, serial vs
//!   the pool's parallel first-level expansion (bit-identical results);
//! * **gain refresh** — one full pass recomputing every candidate's three
//!   directional gains against both cover-state layouts: the columnar
//!   production [`CoverState`] and the row-major pre-columnar reference
//!   [`RowCoverState`];
//! * **SELECT(1)** — serial, legacy per-round `std::thread::scope`
//!   refresh, and the persistent-pool refresh (the pool-vs-scope
//!   comparison is the headline number of the runtime crate), plus the
//!   `rub`-off / `rub`-forced ablations;
//! * **GREEDY** and **EXACT** — EXACT node-capped at 1 thread (serial
//!   reference), 2 threads, and all cores through the parallel root
//!   fan-out; on the smallest corpus also an *uncapped* serial-vs-parallel
//!   run, whose result must be bit-identical;
//! * **adaptive tidsets** — the same mining / gain-refresh / SELECT(1)
//!   runs under [`TidsetMode::ForceDense`] (the pre-adaptive layout),
//!   `ForceSparse` and `ForceRuns`, recording the adaptive-vs-dense
//!   speedups and the run's **representation mix** (sparse vs dense vs
//!   run-compressed tidset counts, actual bytes, bytes saved vs the
//!   all-dense layout);
//! * **kernel paths** — mining and SELECT(1) rerun with every merge
//!   forced onto the scalar gallop reference path
//!   ([`KernelPath::Scalar`]) instead of the SIMD block kernels;
//! * **incremental rub bounds** — SELECT(1)'s default incremental `Σ tub`
//!   maintenance vs the cost-gated recomputation baseline, with prune /
//!   refresh counts and the serial bound-maintenance time;
//! * **observability** — a traced storm drill on the mid-dense corpus:
//!   per-phase span rollups (construction mining, cache warm, solver
//!   time, refresh / rub-prune totals), the `EngineStats`-vs-registry
//!   consistency identity, and the obs-disabled overhead gate (< 2% on
//!   mid-dense SELECT(1) vs the recent history envelope);
//! * **identity checks** — thread counts, pool vs scope, parallel vs
//!   serial mining, rub on/off/forced, incremental-vs-recomputed bounds,
//!   layout checksums, SIMD-vs-scalar kernels, and forced-sparse /
//!   forced-dense / forced-runs / adaptive model identity must all
//!   agree; the process exits non-zero (and CI fails) if any is false.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run --release -p twoview-bench --bin perfsuite            # full
//! cargo run --release -p twoview-bench --bin perfsuite -- --smoke # CI
//! cargo run --release -p twoview-bench --bin perfsuite -- --out p.json
//! ```

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use twoview_core::engine::Algorithm;
use twoview_core::greedy::translator_greedy_candidates;
use twoview_core::select::{
    translator_select_candidates, translator_select_candidates_with_stats, SelectConfig,
    SelectStats,
};
use twoview_core::{
    translator_exact_with, CoverState, Engine, ExactConfig, GreedyConfig, RowCoverState,
    TranslatorModel,
};
use twoview_data::prelude::*;
use twoview_data::synthetic::{self, StructureSpec, SyntheticSpec};
use twoview_data::tidset;
use twoview_mining::{mine_closed_twoview, MinerConfig, TwoViewCandidate};
use twoview_runtime::faults::{self, points, FaultPlan};
use twoview_runtime::{AdmissionPolicy, Deadline, JobError, Priority, RetryPolicy};

/// One cell of the corpus matrix.
struct CorpusSpec {
    name: &'static str,
    n_full: usize,
    n_smoke: usize,
    n_left: usize,
    n_right: usize,
    density: f64,
    concepts: usize,
    /// Per-transaction concept activation probability (the paper-style
    /// generator's `occurrence`); the sparse cells lower it so planted
    /// supports stay ≪ n.
    occurrence: f64,
    /// `minsup = n / minsup_div` (clamped to ≥ 1).
    minsup_div: usize,
    /// Concept-activation burst length (`1` = the classic per-transaction
    /// generator; `> 1` plants consecutive activation blocks so item
    /// tidsets form long runs — the run-container's target shape).
    burst_len: usize,
    /// Run the uncapped EXACT serial-vs-parallel identity check here
    /// (affordable only where the search space is small).
    exact_uncapped_check: bool,
}

/// The matrix: small/sparse, mid/dense (the pre-matrix `perfsuite` corpus,
/// kept comparable across PRs), large/sparse, plus the two paper-style
/// **sparse** cells (wide-sparse: many items, few per row; tall-sparse:
/// many rows, low density) where supports sit far below the sparse/dense
/// threshold — a step toward the ROADMAP's 14-dataset matrix.
const CORPORA: &[CorpusSpec] = &[
    CorpusSpec {
        name: "small-sparse",
        n_full: 600,
        n_smoke: 200,
        n_left: 16,
        n_right: 12,
        density: 0.15,
        concepts: 4,
        occurrence: 0.25,
        minsup_div: 12,
        burst_len: 1,
        exact_uncapped_check: true,
    },
    CorpusSpec {
        name: "mid-dense",
        n_full: 2000,
        n_smoke: 300,
        n_left: 40,
        n_right: 30,
        density: 0.30,
        concepts: 6,
        occurrence: 0.25,
        minsup_div: 10,
        burst_len: 1,
        exact_uncapped_check: false,
    },
    CorpusSpec {
        name: "large-sparse",
        n_full: 6000,
        n_smoke: 500,
        n_left: 48,
        n_right: 36,
        density: 0.12,
        concepts: 8,
        occurrence: 0.25,
        minsup_div: 15,
        burst_len: 1,
        exact_uncapped_check: false,
    },
    CorpusSpec {
        name: "wide-sparse",
        n_full: 20000,
        n_smoke: 1500,
        n_left: 150,
        n_right: 120,
        density: 0.01,
        concepts: 10,
        occurrence: 0.02,
        minsup_div: 10000, // minsup 2: deep DFS over tiny tidsets
        burst_len: 1,
        exact_uncapped_check: false,
    },
    CorpusSpec {
        name: "tall-sparse",
        n_full: 20000,
        n_smoke: 1200,
        n_left: 48,
        n_right: 36,
        density: 0.008,
        concepts: 8,
        occurrence: 0.02,
        minsup_div: 10000, // minsup 2
        burst_len: 1,
        exact_uncapped_check: false,
    },
    // Concept activations arrive in blocks of consecutive transactions, so
    // item tidsets collapse into long `(start, len)` runs — the cell where
    // the RLE run container and the fused run kernels carry the mining and
    // refresh loops.
    CorpusSpec {
        name: "clustered-runs",
        n_full: 8000,
        n_smoke: 600,
        n_left: 32,
        n_right: 24,
        density: 0.02,
        concepts: 6,
        occurrence: 0.35,
        minsup_div: 20,
        burst_len: 48,
        exact_uncapped_check: false,
    },
];

fn generate(spec: &CorpusSpec, smoke: bool) -> TwoViewDataset {
    let n = if smoke { spec.n_smoke } else { spec.n_full };
    let mut structure = if spec.burst_len > 1 {
        StructureSpec::bursty(spec.concepts, spec.burst_len)
    } else {
        StructureSpec::strong(spec.concepts)
    };
    structure.occurrence = spec.occurrence;
    let spec = SyntheticSpec {
        name: spec.name.into(),
        n_transactions: n,
        n_left: spec.n_left,
        n_right: spec.n_right,
        density_left: spec.density,
        density_right: spec.density,
        structure,
        seed: 7,
    };
    synthetic::generate(&spec).expect("valid spec").dataset
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// One full gain-refresh pass through the given layout's `pair_gains`.
/// Returns the gain sum as a checksum (also keeps the loop live).
fn refresh_pass(
    cands: &[TwoViewCandidate],
    tids: &[(Tidset, Tidset)],
    pair_gains: impl Fn(&ItemSet, &ItemSet, &Tidset, &Tidset) -> [f64; 3],
) -> f64 {
    let mut sum = 0.0;
    for (c, (lt, rt)) in cands.iter().zip(tids) {
        let g = pair_gains(&c.left, &c.right, lt, rt);
        sum += g[0] + g[1] + g[2];
    }
    sum
}

fn seed_tids(data: &TwoViewDataset, cands: &[TwoViewCandidate]) -> Vec<(Tidset, Tidset)> {
    cands
        .iter()
        .map(|c| (data.support_set(&c.left), data.support_set(&c.right)))
        .collect()
}

fn models_match(a: &TranslatorModel, b: &TranslatorModel) -> bool {
    a.table == b.table && (a.score.l_total - b.score.l_total).abs() < 1e-9
}

/// Identity flags of one corpus run; all must be true.
struct Identities {
    layout_checksums_agree: bool,
    mining_threads_identical: bool,
    select_threads_identical: bool,
    select_pool_vs_scope_identical: bool,
    rub_identical: bool,
    exact_threads_identical: bool,
    exact_uncapped_identical: bool,
    /// Mined candidates and SELECT(1) models are bit-identical across
    /// forced-sparse, forced-dense, forced-runs and adaptive tidset modes,
    /// and the adaptive seed-tidset fingerprints match the forced-dense
    /// and forced-runs ones.
    tidset_modes_identical: bool,
    /// Mined candidates, SELECT(1) model and seed-tidset fingerprints are
    /// bit-identical when every merge kernel takes the scalar gallop path
    /// instead of the SIMD block path.
    kernel_paths_identical: bool,
    /// The probe-armed incremental `Σ tub` bound maintenance produces the
    /// same model as the cost-gated recomputation and prunes at least as
    /// many refreshes. Whether the probe actually armed the index on this
    /// corpus is reported separately (`select_rub.incremental_active`) —
    /// declining to arm on a corpus where the bound never bites is the
    /// designed outcome, not a failure.
    incremental_rub_identical: bool,
}

impl Identities {
    fn all(&self) -> bool {
        self.layout_checksums_agree
            && self.mining_threads_identical
            && self.select_threads_identical
            && self.select_pool_vs_scope_identical
            && self.rub_identical
            && self.exact_threads_identical
            && self.exact_uncapped_identical
            && self.tidset_modes_identical
            && self.kernel_paths_identical
            && self.incremental_rub_identical
    }
}

/// Representation mix of one adaptive run: the dataset's item columns plus
/// the candidate seed tidsets.
#[derive(Default)]
struct TidsetMix {
    sparse: usize,
    dense: usize,
    runs: usize,
    bytes: usize,
    dense_bytes: usize,
}

impl TidsetMix {
    fn add(&mut self, t: &Tidset) {
        if t.is_runs() {
            self.runs += 1;
        } else if t.is_sparse() {
            self.sparse += 1;
        } else {
            self.dense += 1;
        }
        self.bytes += t.heap_bytes();
        self.dense_bytes += tidset::dense_bytes(t.universe());
    }

    fn bytes_saved(&self) -> usize {
        self.dense_bytes.saturating_sub(self.bytes)
    }
}

/// Per-corpus numbers main() needs beyond the JSON blob.
struct CorpusOutcome {
    identities_ok: bool,
    select_pool_ms: f64,
    mine_serial_ms: f64,
    mix_sparse: usize,
    mix_dense: usize,
    mix_runs: usize,
    mix_bytes_saved: usize,
}

fn run_corpus(spec: &CorpusSpec, smoke: bool, json: &mut String) -> CorpusOutcome {
    // Smoke corpora are tiny (sub-3ms SELECT runs), where scheduler noise
    // easily exceeds the 25% gate margin; more best-of reps stabilise the
    // recorded minimum at negligible cost.
    let reps = if smoke { 5 } else { 3 };
    let max_threads = twoview_runtime::configured_threads().max(2);
    tidset::set_tidset_mode(TidsetMode::Adaptive);
    let data = generate(spec, smoke);
    let n = data.n_transactions();
    let minsup = (n / spec.minsup_div).max(1);
    eprintln!(
        "perfsuite[{}]: n={n}, {}x{} items, density {:.3}, minsup {minsup}",
        spec.name, spec.n_left, spec.n_right, spec.density
    );

    // --- candidate mining: serial vs pool -------------------------------
    let mut mcfg_serial = MinerConfig::builder().minsup(minsup).build();
    mcfg_serial.max_itemsets = 2_000_000;
    mcfg_serial.n_threads = Some(1);
    let mut mcfg_par = mcfg_serial.clone();
    mcfg_par.n_threads = Some(max_threads);
    let (mine_serial_ms, mined) = time_best(reps, || mine_closed_twoview(&data, &mcfg_serial));
    let (mine_par_ms, mined_par) = time_best(reps, || mine_closed_twoview(&data, &mcfg_par));
    let mining_threads_identical = mined.candidates == mined_par.candidates;
    let cands = mined.candidates;
    eprintln!(
        "  mining: {ncand} closed candidates, serial {mine_serial_ms:.1} ms / \
         pool {mine_par_ms:.1} ms (identical: {mining_threads_identical})",
        ncand = cands.len()
    );

    // --- gain refresh: columnar vs row-major ----------------------------
    // Measured against a mid-build state: apply the first rules SELECT(1)
    // actually picks, so covered/error tables are non-trivial.
    let warm = translator_select_candidates(
        &data,
        &SelectConfig {
            max_iterations: Some(3),
            ..SelectConfig::builder().k(1).minsup(minsup).build()
        },
        &cands,
    );
    let mut col_state = CoverState::new(&data);
    let mut row_state = RowCoverState::new(&data);
    for rule in warm.table.iter() {
        col_state.apply_rule(rule.clone());
        row_state.apply_rule(rule.clone());
    }
    let tids = seed_tids(&data, &cands);
    let (refresh_columnar_ms, sum_col) = time_best(reps, || {
        refresh_pass(&cands, &tids, |l, r, lt, rt| {
            col_state.pair_gains(l, r, lt, rt)
        })
    });
    let (refresh_rows_ms, sum_rows) = time_best(reps, || {
        refresh_pass(&cands, &tids, |l, r, lt, rt| {
            row_state.pair_gains(l, r, lt, rt)
        })
    });
    let layout_checksums_agree = (sum_col - sum_rows).abs() < 1e-6 * (1.0 + sum_col.abs());
    let refresh_speedup = refresh_rows_ms / refresh_columnar_ms.max(1e-9);
    eprintln!(
        "  gain refresh: rows {refresh_rows_ms:.2} ms, columnar {refresh_columnar_ms:.2} ms \
         ({refresh_speedup:.1}x, checksums agree: {layout_checksums_agree})"
    );

    // --- representation mix of the adaptive run -------------------------
    let mut mix = TidsetMix::default();
    for item in 0..data.vocab().n_items() as ItemId {
        mix.add(data.tidset(item));
    }
    for (lt, rt) in &tids {
        mix.add(lt);
        mix.add(rt);
    }
    eprintln!(
        "  tidsets: {} sparse / {} dense / {} runs, {} KiB actual vs {} KiB all-dense \
         ({} KiB saved)",
        mix.sparse,
        mix.dense,
        mix.runs,
        mix.bytes / 1024,
        mix.dense_bytes / 1024,
        mix.bytes_saved() / 1024
    );

    // --- SELECT(1): serial vs legacy scope vs pool ----------------------
    let select_cfg = |n_threads, legacy_scope| SelectConfig {
        n_threads: Some(n_threads),
        legacy_scope,
        ..SelectConfig::builder().k(1).minsup(minsup).build()
    };
    // The serial run doubles as the incremental-rub leg (it is the
    // default); its stats carry the prune counts and the serial
    // bound-maintenance time.
    let mut inc_stats = SelectStats::default();
    let (select_serial_ms, model_serial) = time_best(reps, || {
        translator_select_candidates_with_stats(
            &data,
            &select_cfg(1, false),
            &cands,
            &mut inc_stats,
        )
    });
    let (select_scope_ms, model_scope) = time_best(reps, || {
        translator_select_candidates(&data, &select_cfg(max_threads, true), &cands)
    });
    let (select_pool_ms, model_pool) = time_best(reps, || {
        translator_select_candidates(&data, &select_cfg(max_threads, false), &cands)
    });
    let (select_norub_ms, model_norub) = time_best(reps, || {
        let cfg = SelectConfig {
            use_rub: false,
            ..select_cfg(1, false)
        };
        translator_select_candidates(&data, &cfg, &cands)
    });
    // Cost gate forced off: every dirty candidate goes through the
    // rub-prune branch, which must still be model-identical.
    let (select_rub_forced_ms, model_rub_forced) = time_best(reps, || {
        let cfg = SelectConfig {
            rub_cost_gate: false,
            ..select_cfg(1, false)
        };
        translator_select_candidates(&data, &cfg, &cands)
    });
    // The pre-incremental baseline: per-candidate bound recomputation
    // behind the cost gate. Same model; the incremental leg must prune at
    // least as much (every candidate becomes bound-eligible).
    let mut gate_stats = SelectStats::default();
    let (select_costgate_ms, model_costgate) = time_best(reps, || {
        let cfg = SelectConfig {
            incremental_rub: false,
            ..select_cfg(1, false)
        };
        translator_select_candidates_with_stats(&data, &cfg, &cands, &mut gate_stats)
    });
    // Round-2 prunes are the provable comparison: same cover state and
    // threshold in both runs, eligibility the only difference (see
    // `SelectStats::round2_prunes`). Cumulative counts are reported too
    // but early pruning legitimately shifts later-round thresholds.
    let incremental_rub_identical = models_match(&model_serial, &model_costgate)
        && inc_stats.round2_prunes >= gate_stats.round2_prunes;
    eprintln!(
        "  rub bounds: incremental {select_serial_ms:.1} ms ({} prunes, round2 {} / {} refreshes, \
         maintain {:.2} ms) vs cost-gated {select_costgate_ms:.1} ms ({} prunes, round2 {} / \
         {} refreshes; identical: {incremental_rub_identical})",
        inc_stats.rub_prunes,
        inc_stats.round2_prunes,
        inc_stats.refreshes,
        inc_stats.bound_maintain_ms,
        gate_stats.rub_prunes,
        gate_stats.round2_prunes,
        gate_stats.refreshes,
    );
    let select_threads_identical = models_match(&model_serial, &model_pool);
    let select_pool_vs_scope_identical = models_match(&model_pool, &model_scope);
    let rub_identical =
        models_match(&model_serial, &model_norub) && models_match(&model_serial, &model_rub_forced);
    let select_pool_not_slower = select_pool_ms <= select_scope_ms * 1.10;
    eprintln!(
        "  SELECT(1): serial {select_serial_ms:.1} ms / scope {select_scope_ms:.1} ms / \
         pool {select_pool_ms:.1} ms ({} rules; pool ≥ scope: {select_pool_not_slower})",
        model_serial.table.len()
    );

    // --- forced-dense / forced-sparse baselines -------------------------
    // The dataset is regenerated under each mode so its columns, the seed
    // tidsets, and every intermediate take that representation; mined
    // candidates and models must be bit-identical to the adaptive run
    // (representation is an invisible performance detail), while the
    // timing deltas are the adaptive representation's value.
    tidset::set_tidset_mode(TidsetMode::ForceDense);
    let data_dense = generate(spec, smoke);
    let (mine_dense_ms, mined_dense) =
        time_best(reps, || mine_closed_twoview(&data_dense, &mcfg_serial));
    let mut col_dense = CoverState::new(&data_dense);
    for rule in warm.table.iter() {
        col_dense.apply_rule(rule.clone());
    }
    let tids_dense = seed_tids(&data_dense, &cands);
    let (refresh_dense_ms, sum_dense) = time_best(reps, || {
        refresh_pass(&cands, &tids_dense, |l, r, lt, rt| {
            col_dense.pair_gains(l, r, lt, rt)
        })
    });
    let (select_dense_ms, model_dense) = time_best(reps, || {
        translator_select_candidates(&data_dense, &select_cfg(1, false), &cands)
    });
    let dense_fingerprints_match = tids.iter().zip(&tids_dense).all(|((a, b), (c, d))| {
        a.fingerprint() == c.fingerprint() && b.fingerprint() == d.fingerprint()
    });

    tidset::set_tidset_mode(TidsetMode::ForceSparse);
    let data_sparse = generate(spec, smoke);
    let (mine_sparse_ms, mined_sparse) =
        time_best(reps, || mine_closed_twoview(&data_sparse, &mcfg_serial));
    let (select_sparse_ms, model_sparse) = time_best(reps, || {
        translator_select_candidates(&data_sparse, &select_cfg(1, false), &cands)
    });

    tidset::set_tidset_mode(TidsetMode::ForceRuns);
    let data_runs = generate(spec, smoke);
    let (mine_runs_ms, mined_runs) =
        time_best(reps, || mine_closed_twoview(&data_runs, &mcfg_serial));
    let (select_runs_ms, model_runs) = time_best(reps, || {
        translator_select_candidates(&data_runs, &select_cfg(1, false), &cands)
    });
    let tids_runs = seed_tids(&data_runs, &cands);
    let runs_fingerprints_match = tids.iter().zip(&tids_runs).all(|((a, b), (c, d))| {
        a.fingerprint() == c.fingerprint() && b.fingerprint() == d.fingerprint()
    });
    tidset::set_tidset_mode(TidsetMode::Adaptive);

    let tidset_modes_identical = mined_dense.candidates == cands
        && mined_sparse.candidates == cands
        && mined_runs.candidates == cands
        && models_match(&model_serial, &model_dense)
        && models_match(&model_serial, &model_sparse)
        && models_match(&model_serial, &model_runs)
        && (sum_dense - sum_col).abs() < 1e-6 * (1.0 + sum_col.abs())
        && dense_fingerprints_match
        && runs_fingerprints_match;

    // --- scalar kernel path ---------------------------------------------
    // Same adaptive representations, but every sparse/runs merge takes the
    // scalar gallop reference path instead of the SIMD block kernels. The
    // mined candidates, model and seed fingerprints must not move.
    let prev_path = kernel_path();
    set_kernel_path(KernelPath::Scalar);
    let (mine_scalar_ms, mined_scalar) =
        time_best(reps, || mine_closed_twoview(&data, &mcfg_serial));
    let (select_scalar_ms, model_scalar) = time_best(reps, || {
        translator_select_candidates(&data, &select_cfg(1, false), &cands)
    });
    let tids_scalar = seed_tids(&data, &cands);
    set_kernel_path(prev_path);
    let kernel_paths_identical = mined_scalar.candidates == cands
        && models_match(&model_serial, &model_scalar)
        && tids.iter().zip(&tids_scalar).all(|((a, b), (c, d))| {
            a.fingerprint() == c.fingerprint() && b.fingerprint() == d.fingerprint()
        });
    let mine_speedup_vs_scalar = mine_scalar_ms / mine_serial_ms.max(1e-9);
    eprintln!(
        "  kernel paths: mine scalar {mine_scalar_ms:.1} ms (simd {mine_speedup_vs_scalar:.2}x), \
         SELECT scalar {select_scalar_ms:.1} ms (identical: {kernel_paths_identical})"
    );
    let mine_speedup_vs_dense = mine_dense_ms / mine_serial_ms.max(1e-9);
    let refresh_speedup_vs_dense = refresh_dense_ms / refresh_columnar_ms.max(1e-9);
    let select_speedup_vs_dense = select_dense_ms / select_serial_ms.max(1e-9);
    eprintln!(
        "  tidset modes: mine dense {mine_dense_ms:.1} ms / sparse {mine_sparse_ms:.1} ms / \
         runs {mine_runs_ms:.1} ms (adaptive {mine_speedup_vs_dense:.2}x vs dense); refresh \
         dense {refresh_dense_ms:.2} ms ({refresh_speedup_vs_dense:.2}x); SELECT dense \
         {select_dense_ms:.1} ms / sparse {select_sparse_ms:.1} ms / runs {select_runs_ms:.1} ms \
         ({select_speedup_vs_dense:.2}x; identical: {tidset_modes_identical})"
    );

    // --- GREEDY ---------------------------------------------------------
    let (greedy_ms, greedy_model) = time_best(reps, || {
        translator_greedy_candidates(
            &data,
            &GreedyConfig::builder().minsup(minsup).build(),
            &cands,
        )
    });

    // --- EXACT: capped, 1 / 2 / max threads -----------------------------
    let exact_cfg = |n_threads| ExactConfig {
        max_nodes: Some(if smoke { 20_000 } else { 200_000 }),
        max_rules: Some(3),
        candidate_seed_minsup: Some(minsup),
        n_threads: Some(n_threads),
        ..ExactConfig::default()
    };
    let (exact_1t_ms, _exact_1t) = time_best(1, || translator_exact_with(&data, &exact_cfg(1)));
    let (exact_2t_ms, exact_2t) = time_best(1, || translator_exact_with(&data, &exact_cfg(2)));
    let (exact_mt_ms, exact_mt) =
        time_best(1, || translator_exact_with(&data, &exact_cfg(max_threads)));
    // Capped parallel runs use deterministic per-subtree budgets: every
    // thread count > 1 must produce the same model. Compare 2 vs 3
    // threads explicitly — on a ≤2-core machine `max_threads` collapses
    // to 2 and a 2-vs-max comparison would be vacuous — plus 2 vs max.
    let exact_3t = translator_exact_with(&data, &exact_cfg(3));
    let exact_threads_identical =
        models_match(&exact_2t, &exact_3t) && models_match(&exact_2t, &exact_mt);
    let exact_speedup_2t = exact_1t_ms / exact_2t_ms.max(1e-9);
    eprintln!(
        "  GREEDY {greedy_ms:.1} ms ({} rules); EXACT capped: 1t {exact_1t_ms:.1} ms / \
         2t {exact_2t_ms:.1} ms / {max_threads}t {exact_mt_ms:.1} ms \
         ({exact_speedup_2t:.2}x at 2t, identical: {exact_threads_identical})",
        greedy_model.table.len(),
    );

    // --- EXACT uncapped identity (small corpus only) --------------------
    let exact_uncapped_identical = if spec.exact_uncapped_check {
        let uncapped = |n_threads| ExactConfig {
            max_nodes: None,
            max_rules: Some(2),
            candidate_seed_minsup: Some(minsup),
            n_threads: Some(n_threads),
            ..ExactConfig::default()
        };
        let serial = translator_exact_with(&data, &uncapped(1));
        let parallel = translator_exact_with(&data, &uncapped(max_threads));
        let same = models_match(&serial, &parallel);
        eprintln!("  EXACT uncapped serial-vs-parallel identical: {same}");
        same
    } else {
        true
    };

    let identities = Identities {
        layout_checksums_agree,
        mining_threads_identical,
        select_threads_identical,
        select_pool_vs_scope_identical,
        rub_identical,
        exact_threads_identical,
        exact_uncapped_identical,
        tidset_modes_identical,
        kernel_paths_identical,
        incremental_rub_identical,
    };

    write!(
        json,
        r#"    {{
      "name": "{name}",
      "n_transactions": {n},
      "n_left": {nl},
      "n_right": {nr},
      "density": {density},
      "minsup": {minsup},
      "n_candidates": {ncand},
      "timings_ms": {{
        "mine_closed_serial": {mine_serial_ms:.3},
        "mine_closed_pool": {mine_par_ms:.3},
        "mine_closed_dense": {mine_dense_ms:.3},
        "mine_closed_sparse": {mine_sparse_ms:.3},
        "mine_closed_runs": {mine_runs_ms:.3},
        "mine_closed_scalar_kernel": {mine_scalar_ms:.3},
        "gain_refresh_rows": {refresh_rows_ms:.3},
        "gain_refresh_columnar": {refresh_columnar_ms:.3},
        "gain_refresh_dense": {refresh_dense_ms:.3},
        "select1_serial": {select_serial_ms:.3},
        "select1_scope": {select_scope_ms:.3},
        "select1_pool": {select_pool_ms:.3},
        "select1_no_rub": {select_norub_ms:.3},
        "select1_rub_forced": {select_rub_forced_ms:.3},
        "select1_rub_costgate": {select_costgate_ms:.3},
        "select1_dense": {select_dense_ms:.3},
        "select1_sparse": {select_sparse_ms:.3},
        "select1_runs": {select_runs_ms:.3},
        "select1_scalar_kernel": {select_scalar_ms:.3},
        "greedy": {greedy_ms:.3},
        "exact_capped_1t": {exact_1t_ms:.3},
        "exact_capped_2t": {exact_2t_ms:.3},
        "exact_capped_maxt": {exact_mt_ms:.3}
      }},
      "gain_refresh_speedup": {refresh_speedup:.3},
      "exact_speedup_2t": {exact_speedup_2t:.3},
      "select_pool_not_slower": {select_pool_not_slower},
      "select1_rules": {nrules},
      "select1_l_total": {ltotal:.6},
      "tidset": {{
        "sparse_count": {mix_sparse},
        "dense_count": {mix_dense},
        "runs_count": {mix_runs},
        "bytes": {mix_bytes},
        "dense_bytes": {mix_dense_bytes},
        "bytes_saved": {mix_saved},
        "mine_speedup_vs_dense": {mine_speedup_vs_dense:.3},
        "refresh_speedup_vs_dense": {refresh_speedup_vs_dense:.3},
        "select_speedup_vs_dense": {select_speedup_vs_dense:.3},
        "mine_speedup_vs_scalar_kernel": {mine_speedup_vs_scalar:.3}
      }},
      "select_rub": {{
        "prunes_incremental": {inc_prunes},
        "round2_prunes_incremental": {inc_round2},
        "refreshes_incremental": {inc_refreshes},
        "bound_maintain_ms": {inc_maintain_ms:.3},
        "incremental_active": {inc_active},
        "prunes_costgate": {gate_prunes},
        "round2_prunes_costgate": {gate_round2},
        "refreshes_costgate": {gate_refreshes}
      }},
      "identity": {{
        "layout_checksums_agree": {layout_checksums_agree},
        "mining_threads_identical": {mining_threads_identical},
        "select_threads_identical": {select_threads_identical},
        "select_pool_vs_scope_identical": {select_pool_vs_scope_identical},
        "rub_identical": {rub_identical},
        "exact_threads_identical": {exact_threads_identical},
        "exact_uncapped_identical": {exact_uncapped_identical},
        "tidset_modes_identical": {tidset_modes_identical},
        "kernel_paths_identical": {kernel_paths_identical},
        "incremental_rub_identical": {incremental_rub_identical}
      }}
    }}"#,
        name = spec.name,
        nl = spec.n_left,
        nr = spec.n_right,
        density = spec.density,
        ncand = cands.len(),
        nrules = model_serial.table.len(),
        ltotal = model_serial.score.l_total,
        mix_sparse = mix.sparse,
        mix_dense = mix.dense,
        mix_runs = mix.runs,
        mix_bytes = mix.bytes,
        mix_dense_bytes = mix.dense_bytes,
        mix_saved = mix.bytes_saved(),
        inc_prunes = inc_stats.rub_prunes,
        inc_round2 = inc_stats.round2_prunes,
        inc_refreshes = inc_stats.refreshes,
        inc_maintain_ms = inc_stats.bound_maintain_ms,
        inc_active = inc_stats.incremental_active,
        gate_prunes = gate_stats.rub_prunes,
        gate_round2 = gate_stats.round2_prunes,
        gate_refreshes = gate_stats.refreshes,
    )
    .expect("write json");

    CorpusOutcome {
        identities_ok: identities.all(),
        select_pool_ms,
        mine_serial_ms,
        mix_sparse: mix.sparse,
        mix_dense: mix.dense,
        mix_runs: mix.runs,
        mix_bytes_saved: mix.bytes_saved(),
    }
}

/// Engine serving benchmark on the mid-dense corpus: build (mines once),
/// then two SELECT(1) fits through the job queue. The acceptance invariant
/// is `fit_mine_ms == 0` — the second fit's candidate-mining time is
/// exactly zero because both fits reuse the build-time cache — plus
/// bit-identity of the served model with the serial `*_candidates` run.
struct EngineOutcome {
    json: String,
    identity: bool,
    fit_mine_ms: f64,
}

fn run_engine_bench(smoke: bool) -> EngineOutcome {
    let spec = &CORPORA[1]; // mid-dense
    let data = generate(spec, smoke);
    let minsup = (data.n_transactions() / spec.minsup_div).max(1);

    let t0 = Instant::now();
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()
        .expect("engine build");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let cfg = SelectConfig::builder().k(1).minsup(minsup).build();
    let t0 = Instant::now();
    let fit1 = engine
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("fit 1");
    let fit1_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let fit2 = engine
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("fit 2");
    let fit2_ms = t0.elapsed().as_secs_f64() * 1e3;

    let stats = engine.stats();
    let serial = translator_select_candidates(&data, &cfg, engine.candidates());
    let identity =
        models_match(&fit1, &serial) && models_match(&fit2, &serial) && stats.fit_mine_ms == 0.0;
    eprintln!(
        "  engine[mid-dense]: build {build_ms:.1} ms ({} candidates), \
         fit1 {fit1_ms:.1} ms / fit2 {fit2_ms:.1} ms, \
         re-mining inside fits {:.3} ms (identity: {identity})",
        stats.n_candidates, stats.fit_mine_ms
    );
    let json = format!(
        r#"  "engine": {{
    "corpus": "mid-dense",
    "n_candidates": {n_candidates},
    "build_ms": {build_ms:.3},
    "fit1_ms": {fit1_ms:.3},
    "fit2_ms": {fit2_ms:.3},
    "fit_mine_ms": {fit_mine_ms:.3},
    "fit_reuses_cache_identical": {identity}
  }}"#,
        n_candidates = stats.n_candidates,
        fit_mine_ms = stats.fit_mine_ms,
    );
    EngineOutcome {
        json,
        identity,
        fit_mine_ms: stats.fit_mine_ms,
    }
}

/// Robustness drill + faults-disabled overhead, on the mid-dense corpus.
///
/// A fully deterministic scenario exercises every serving-hardening
/// counter: a fit that panics once at an injected checkpoint fault and
/// recovers via retry (`jobs_retried`), a failed seed-cache warm that
/// degrades fits to the uncached recompute path (`fits_degraded`), a
/// queue-wait deadline expiring while queued (`jobs_timed_out`), and a
/// full bounded lane turning a submission away (`jobs_rejected`). The
/// recovered model must be bit-identical to the fault-free reference.
///
/// Separately, the mid-dense SELECT(1) pool time — the fault probes are
/// compiled in always, gated behind one relaxed atomic load — is compared
/// against the `BENCH_history.jsonl` baseline (the envelope of the most
/// recent same-mode same-thread entries, which damps single-run scheduler
/// noise): the disabled-faults overhead must stay under 2%.
struct RobustnessOutcome {
    json: String,
    scenario_ok: bool,
    overhead_ok: bool,
}

fn run_robustness_bench(smoke: bool, history: &str, mode: &str, pool_ms: f64) -> RobustnessOutcome {
    let spec = &CORPORA[1]; // mid-dense
    let data = generate(spec, smoke);
    let minsup = (data.n_transactions() / spec.minsup_div).max(1);
    let cfg = SelectConfig::builder().k(1).minsup(minsup).build();

    // Fault-free reference model.
    faults::clear();
    let clean = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()
        .expect("clean engine");
    let reference = clean
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("clean fit");
    drop(clean);

    // --- retry after an injected panic + degraded cache warm ------------
    // Count the checkpoint probes one served SELECT fit performs (hits
    // are recorded even at probability 0), then pick the fault seed whose
    // deterministic draw sequence is fire-once-then-pass for that many
    // draws: attempt 1 panics at its first checkpoint, attempt 2 runs
    // clean. No luck involved — the harness draws are pure functions of
    // (seed, point, hit index).
    faults::configure(
        FaultPlan::new()
            .point(points::SELECT_CHECKPOINT_PANIC, 0.0, 0)
            .point(points::CACHE_WARM_FAIL, 1.0, 0),
    );
    let probe = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .build()
        .expect("probe engine");
    probe
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("probe fit");
    drop(probe);
    let checkpoints = faults::snapshot()
        .iter()
        .find(|(n, _, _)| n == points::SELECT_CHECKPOINT_PANIC)
        .map(|&(_, hits, _)| hits)
        .expect("select probe point registered");
    assert!(checkpoints > 0, "a served SELECT fit must hit checkpoints");
    let p = 1.0 / (checkpoints as f64 + 1.0);
    let seed = (0..1_000_000u64)
        .find(|&s| {
            faults::configure(FaultPlan::new().point(points::SELECT_CHECKPOINT_PANIC, p, s));
            faults::should_fire(points::SELECT_CHECKPOINT_PANIC)
                && (0..checkpoints).all(|_| !faults::should_fire(points::SELECT_CHECKPOINT_PANIC))
        })
        .expect("a fire-once-then-pass seed exists");

    faults::configure(
        FaultPlan::new()
            .point(points::SELECT_CHECKPOINT_PANIC, p, seed)
            .point(points::CACHE_WARM_FAIL, 1.0, 0),
    );
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .retry_policy(RetryPolicy::new(4, Duration::from_millis(1)))
        .build()
        .expect("faulted engine");
    let recovered = engine
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("fit recovers via retry");
    let faulted = engine.stats();
    faults::clear();
    let recovered_identical = models_match(&recovered, &reference);
    drop(engine);

    // --- bounded admission + queue-wait deadline -------------------------
    // One executor held by a gated blocker, lane capacity 1: the first fit
    // (with an already-expired queue-wait deadline) fills the lane, the
    // second is turned away, and releasing the gate times the first out.
    let engine = Engine::builder()
        .dataset(data.clone())
        .minsup(minsup)
        .job_executors(1)
        .lane_capacity(1)
        .admission(AdmissionPolicy::Reject)
        .build()
        .expect("bounded engine");
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let blocker = engine.queue().submit(Priority::Batch, move |_ctx| {
        gate_rx.recv().ok();
        Ok(())
    });
    blocker.wait_started();
    let doomed = engine.fit_opts(
        Algorithm::Select(cfg.clone()),
        Priority::Batch,
        Deadline::queue_wait(Duration::ZERO),
    );
    let turned_away = engine
        .fit_with(Algorithm::Select(cfg.clone()), Priority::Batch)
        .join()
        .expect_err("lane is full");
    gate_tx.send(()).ok();
    let timed_out = doomed.join().expect_err("queue deadline already expired");
    blocker.join().expect("blocker completes");
    let bounded = engine.stats();
    drop(engine);

    let scenario_ok = recovered_identical
        && faulted.jobs_retried >= 1
        && faulted.fits_degraded >= 1
        && !faulted.seed_cache_warm
        && matches!(turned_away, JobError::Rejected)
        && matches!(timed_out, JobError::DeadlineExceeded)
        && bounded.jobs_rejected == 1
        && bounded.jobs_timed_out == 1;
    eprintln!(
        "  robustness[mid-dense]: retried {} (recovered identical: {recovered_identical}), \
         degraded {}, rejected {}, timed out {} (scenario ok: {scenario_ok})",
        faulted.jobs_retried, faulted.fits_degraded, bounded.jobs_rejected, bounded.jobs_timed_out
    );

    // --- faults-disabled overhead on mid-dense SELECT(1) -----------------
    // `pool_ms` is run_corpus's mid-dense SELECT(1) pool measurement — the
    // same site every history baseline was recorded from, so the
    // comparison is apples-to-apples (re-timing here, at a different point
    // in the suite's execution, reads systematically different numbers).
    let baseline = recent_envelope(history, mode, "select1_pool_ms_mid_dense");
    let overhead_pct = baseline.map(|b| (pool_ms / b.max(1e-9) - 1.0) * 100.0);
    let overhead_ok = overhead_pct.is_none_or(|pct| pct < 2.0);
    match (baseline, overhead_pct) {
        (Some(b), Some(pct)) => eprintln!(
            "  robustness: faults-disabled SELECT(1) pool {pool_ms:.2} ms vs recent baseline \
             envelope {b:.2} ms ({pct:+.2}%, ok: {overhead_ok})"
        ),
        _ => eprintln!(
            "  robustness: faults-disabled SELECT(1) pool {pool_ms:.2} ms; no {mode} baseline \
             to compare"
        ),
    }

    let json = format!(
        r#"  "robustness": {{
    "corpus": "mid-dense",
    "jobs_retried": {retried},
    "fits_degraded": {degraded},
    "jobs_rejected": {rejected},
    "jobs_timed_out": {timed_out_n},
    "executors_respawned": {respawned},
    "recovered_fit_identical": {recovered_identical},
    "scenario_ok": {scenario_ok},
    "select1_pool_ms": {pool_ms:.3},
    "select1_pool_baseline_ms": {baseline_json},
    "faults_disabled_overhead_pct": {pct_json},
    "faults_disabled_overhead_ok": {overhead_ok}
  }}"#,
        retried = faulted.jobs_retried,
        degraded = faulted.fits_degraded,
        rejected = bounded.jobs_rejected,
        timed_out_n = bounded.jobs_timed_out,
        respawned = faulted.executors_respawned + bounded.executors_respawned,
        baseline_json = baseline.map_or("null".into(), |b| format!("{b:.3}")),
        pct_json = overhead_pct.map_or("null".into(), |p| format!("{p:.2}")),
    );
    RobustnessOutcome {
        json,
        scenario_ok,
        overhead_ok,
    }
}

/// The baseline for disabled-probe overhead gates: the PR-to-PR
/// comparison uses the *recent* history (the last three same-mode
/// same-thread entries; older ones predate intervening optimisations and
/// machine recalibrations). Single-run wall clocks on a shared box carry
/// single-digit scheduler noise, so the bar is the recent *envelope*: the
/// slowest of those entries plus 2%. A systematic probe cost — the
/// failure these gates guard against, e.g. a fault or trace probe
/// accidentally taking a lock on the SELECT hot path — shifts the whole
/// distribution and clears that envelope by far.
fn recent_envelope(history: &str, mode: &str, field: &str) -> Option<f64> {
    let threads = twoview_runtime::configured_threads();
    let mut baselines: Vec<f64> = history
        .lines()
        .filter(|l| {
            l.contains(&format!("\"mode\":\"{mode}\""))
                && history_field(l, "threads") == Some(threads as f64)
        })
        .filter_map(|l| history_field(l, field))
        .collect();
    if baselines.len() > 3 {
        baselines.drain(..baselines.len() - 3);
    }
    baselines.into_iter().reduce(f64::max)
}

/// A `Write` sink backed by shared memory: the trace drill drains the
/// per-thread span buffers here so the rollup can read them back.
#[derive(Clone)]
struct TraceBuf(std::sync::Arc<twoview_runtime::sync::TolerantMutex<Vec<u8>>>);

impl std::io::Write for TraceBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Observability drill, on the mid-dense corpus.
///
/// Three properties of `twoview_runtime::obs` measured in one pass:
///
/// * **one source of truth** — a small fault storm (failed warm, rare
///   checkpoint panics, retries) runs through the engine while the trace
///   records; afterwards the `EngineStats` view and the registry
///   snapshot deltas must agree *exactly* on every counter both expose
///   (`stats_views_consistent`, an identity — the run fails otherwise);
/// * **per-phase span rollups** — the traced drill's span durations
///   summed by lifecycle phase (construction mining, cache warm, SELECT
///   and GREEDY solver time) plus the refresh / rub-prune totals the
///   `select.run` spans carry, recorded into the snapshot for
///   PR-over-PR comparison;
/// * **disabled-path overhead** — the obs probes (always-on counter
///   cells plus the one-relaxed-load trace gate) share the fault
///   probes' measurement site: mid-dense SELECT(1) pool time vs the
///   recent history envelope must stay under 2%
///   (`obs_disabled_overhead_ok`, grep-gated in CI like the faults
///   gate).
struct ObservabilityOutcome {
    json: String,
    overhead_ok: bool,
    views_consistent: bool,
}

fn run_observability_bench(
    smoke: bool,
    history: &str,
    mode: &str,
    pool_ms: f64,
) -> ObservabilityOutcome {
    let spec = &CORPORA[1]; // mid-dense
    let data = generate(spec, smoke);
    let minsup = (data.n_transactions() / spec.minsup_div).max(1);

    // --- traced storm drill ----------------------------------------------
    let buf = TraceBuf(std::sync::Arc::new(
        twoview_runtime::sync::TolerantMutex::new(Vec::new()),
    ));
    twoview_runtime::obs::trace_to_writer(Box::new(buf.clone()));
    let before = twoview_runtime::obs::snapshot();
    faults::configure(
        FaultPlan::new()
            .point(points::CACHE_WARM_FAIL, 1.0, 0)
            .point(points::SELECT_CHECKPOINT_PANIC, 0.02, 1),
    );
    let engine = Engine::builder()
        .dataset(data)
        .minsup(minsup)
        .retry_policy(RetryPolicy::new(8, Duration::from_millis(1)))
        .build()
        .expect("obs drill engine");
    let select_cfg = SelectConfig::builder().k(1).minsup(minsup).build();
    let greedy_cfg = GreedyConfig::builder().minsup(minsup).build();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            if i < 3 {
                engine.fit(Algorithm::Select(select_cfg.clone()))
            } else {
                engine.fit(Algorithm::Greedy(greedy_cfg.clone()))
            }
        })
        .collect();
    for h in handles {
        if let Err(e) = h.join() {
            assert!(
                e.to_string().contains("injected fault"),
                "only injected faults may fail the obs drill: {e}"
            );
        }
    }
    faults::clear();

    // One source of truth: `EngineStats` is a view over the same registry
    // cells `obs::snapshot` reads, so the deltas must agree exactly.
    let stats = engine.stats();
    let after = twoview_runtime::obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    let views = [
        ("engine.jobs_retried", stats.jobs_retried),
        ("engine.fits_degraded", stats.fits_degraded),
        ("engine.fits_completed", stats.fits_completed),
        ("engine.jobs_submitted", stats.jobs_submitted),
        ("queue.jobs_rejected", stats.jobs_rejected),
        ("queue.jobs_shed", stats.jobs_shed),
        ("queue.jobs_timed_out", stats.jobs_timed_out),
        ("queue.executors_respawned", stats.executors_respawned),
    ];
    let views_consistent = views.iter().all(|&(name, view)| {
        let reg = delta(name);
        if reg != view {
            eprintln!("  observability: {name} registry delta {reg} != stats view {view}");
        }
        reg == view
    }) && stats.fits_degraded >= 1;
    drop(engine);
    twoview_runtime::obs::trace_off();

    // --- per-phase span rollups ------------------------------------------
    let trace = String::from_utf8(buf.0.lock().clone()).expect("utf-8 trace");
    let rollup_ms = |names: &[&str]| -> f64 {
        trace
            .lines()
            .filter(|l| {
                l.contains("\"kind\":\"span\"")
                    && names
                        .iter()
                        .any(|n| l.contains(&format!("\"name\":\"{n}\"")))
            })
            .filter_map(|l| history_field(l, "dur_us"))
            .sum::<f64>()
            / 1e3
    };
    let field_total = |span: &str, field: &str| -> u64 {
        trace
            .lines()
            .filter(|l| l.contains(&format!("\"name\":\"{span}\"")))
            .filter_map(|l| history_field(l, field))
            .sum::<f64>() as u64
    };
    let trace_spans = trace
        .lines()
        .filter(|l| l.contains("\"kind\":\"span\""))
        .count();
    let trace_events = trace
        .lines()
        .filter(|l| l.contains("\"kind\":\"event\""))
        .count();
    let mine_ms = rollup_ms(&["engine.build.mine", "engine.fit.mine"]);
    let warm_ms = rollup_ms(&["engine.cache.warm"]);
    let select_ms = rollup_ms(&["select.run"]);
    let greedy_ms = rollup_ms(&["greedy.run"]);
    let refreshes = field_total("select.run", "refreshes");
    let rub_prunes = field_total("select.run", "rub_prunes");
    eprintln!(
        "  observability[mid-dense]: {trace_spans} spans / {trace_events} events \
         (mine {mine_ms:.1} ms, warm {warm_ms:.1} ms, select {select_ms:.1} ms, greedy \
         {greedy_ms:.1} ms, {refreshes} refreshes, {rub_prunes} rub prunes); views \
         consistent: {views_consistent}"
    );

    // --- trace-disabled overhead on mid-dense SELECT(1) ------------------
    // Same measurement site and envelope discipline as the faults gate:
    // `pool_ms` was timed with the registry compiled in and the trace
    // gate cold, so it carries whatever the disabled obs path costs.
    let baseline = recent_envelope(history, mode, "select1_pool_ms_mid_dense");
    let overhead_pct = baseline.map(|b| (pool_ms / b.max(1e-9) - 1.0) * 100.0);
    let overhead_ok = overhead_pct.is_none_or(|pct| pct < 2.0);
    match (baseline, overhead_pct) {
        (Some(b), Some(pct)) => eprintln!(
            "  observability: obs-disabled SELECT(1) pool {pool_ms:.2} ms vs recent baseline \
             envelope {b:.2} ms ({pct:+.2}%, ok: {overhead_ok})"
        ),
        _ => eprintln!(
            "  observability: obs-disabled SELECT(1) pool {pool_ms:.2} ms; no {mode} baseline \
             to compare"
        ),
    }

    let json = format!(
        r#"  "observability": {{
    "corpus": "mid-dense",
    "trace_spans": {trace_spans},
    "trace_events": {trace_events},
    "phase_rollup": {{
      "mine_ms": {mine_ms:.3},
      "warm_ms": {warm_ms:.3},
      "select_ms": {select_ms:.3},
      "greedy_ms": {greedy_ms:.3},
      "refreshes": {refreshes},
      "rub_prunes": {rub_prunes}
    }},
    "stats_views_consistent": {views_consistent},
    "obs_disabled_overhead_pct": {pct_json},
    "obs_disabled_overhead_ok": {overhead_ok},
    "registry": {registry}
  }}"#,
        pct_json = overhead_pct.map_or("null".into(), |p| format!("{p:.2}")),
        registry = after.to_json(),
    );
    ObservabilityOutcome {
        json,
        overhead_ok,
        views_consistent,
    }
}

/// Persistence drill, on the mid-dense corpus.
///
/// Two properties of `twoview_core::persist` measured in one pass:
///
/// * **warm vs cold start** — a cold engine build (mines, then saves a
///   snapshot) against a warm build of the same config from that
///   snapshot. The identity `snapshot_roundtrip_identical` requires the
///   warm engine to load exactly one snapshot, skip mining entirely
///   (`build_mine_ms == 0`), serve every fit from the loaded cache
///   (`fit_mine_ms == 0`), and produce a bit-identical model;
/// * **torn-write recovery** — a deterministic `snapshot.torn` fault
///   damages the save in flight; the next build must reject the
///   damaged file (counted) and recover by re-mining to the same model.
struct PersistenceOutcome {
    json: String,
    roundtrip_identical: bool,
    torn_recovery_ok: bool,
    cold_build_ms: f64,
    warm_build_ms: f64,
}

fn run_persistence_bench(smoke: bool) -> PersistenceOutcome {
    let spec = &CORPORA[1]; // mid-dense
    let data = generate(spec, smoke);
    let minsup = (data.n_transactions() / spec.minsup_div).max(1);
    let dir =
        std::env::temp_dir().join(format!("twoview-perfsuite-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    faults::clear();
    let cfg = SelectConfig::builder().k(1).minsup(minsup).build();
    let build = || {
        Engine::builder()
            .dataset(data.clone())
            .minsup(minsup)
            .snapshot_dir(&dir)
            .build()
            .expect("persistence engine")
    };

    // Cold: mine + save.
    let t0 = Instant::now();
    let cold = build();
    let cold_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_model = cold
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("cold fit");
    let cold_cands = cold.candidates().to_vec();
    drop(cold);
    let snapshot_bytes = std::fs::metadata(dir.join(twoview_core::persist::ENGINE_SNAPSHOT_FILE))
        .map(|m| m.len())
        .unwrap_or(0);

    // Warm: load, skip mining, serve identically.
    let t0 = Instant::now();
    let warm = build();
    let warm_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_model = warm
        .fit(Algorithm::Select(cfg.clone()))
        .join()
        .expect("warm fit");
    let warm_stats = warm.stats();
    let roundtrip_identical = models_match(&warm_model, &cold_model)
        && warm.candidates() == cold_cands.as_slice()
        && warm_stats.snapshots_loaded == 1
        && warm_stats.snapshots_rejected == 0
        && warm_stats.build_mine_ms == 0.0
        && warm_stats.fit_mine_ms == 0.0;
    drop(warm);
    let warm_speedup = cold_build_ms / warm_build_ms.max(1e-9);

    // Torn-write recovery: damage the save in flight, then start over it.
    let _ = std::fs::remove_dir_all(&dir);
    faults::configure(FaultPlan::new().point(points::SNAPSHOT_TORN, 1.0, 7));
    drop(build()); // cold build whose snapshot save is torn
    faults::clear();
    let recovered = build();
    let recovered_model = recovered
        .fit(Algorithm::Select(cfg))
        .join()
        .expect("recovered fit");
    let recovered_stats = recovered.stats();
    let torn_recovery_ok = recovered_stats.snapshots_rejected == 1
        && recovered_stats.snapshots_loaded == 0
        && models_match(&recovered_model, &cold_model);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "  persistence[mid-dense]: cold build {cold_build_ms:.1} ms, warm build \
         {warm_build_ms:.1} ms ({warm_speedup:.1}x, snapshot {snapshot_kib} KiB); \
         roundtrip identical: {roundtrip_identical}, torn recovery: {torn_recovery_ok}",
        snapshot_kib = snapshot_bytes / 1024,
    );

    let json = format!(
        r#"  "persistence": {{
    "corpus": "mid-dense",
    "cold_build_ms": {cold_build_ms:.3},
    "warm_build_ms": {warm_build_ms:.3},
    "warm_speedup": {warm_speedup:.3},
    "snapshot_bytes": {snapshot_bytes},
    "snapshots_loaded": {loaded},
    "snapshots_rejected_torn": {rejected},
    "snapshot_roundtrip_identical": {roundtrip_identical},
    "torn_recovery_ok": {torn_recovery_ok}
  }}"#,
        loaded = warm_stats.snapshots_loaded,
        rejected = recovered_stats.snapshots_rejected,
    );
    PersistenceOutcome {
        json,
        roundtrip_identical,
        torn_recovery_ok,
        cold_build_ms,
        warm_build_ms,
    }
}

/// Appended to `BENCH_history.jsonl` after every run: one flat JSON object
/// per line so the regression gate (and humans with `grep`) can read it
/// without a JSON parser.
const HISTORY_PATH: &str = "BENCH_history.jsonl";

/// Reads `key` from a flat single-line JSON object written by this binary.
fn history_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"').parse().ok()
}

/// One gated metric: the history field name and this run's value.
struct GateCheck {
    field: &'static str,
    label: &'static str,
    new_ms: f64,
    /// Older history entries may predate the field (it was added with the
    /// adaptive-tidset work); required metrics error when missing instead.
    required: bool,
}

/// Fails the run if any gated timing regressed more than 25% against the
/// previous history entry *of the same mode and thread count* (full-vs-full
/// or smoke-vs-smoke; cross-mode timings are not comparable, and a
/// different `threads` value means different hardware — wall-clock
/// comparisons across machines would gate on the runner, not the code;
/// recalibrate by committing a fresh entry from the new environment).
/// Gated metrics: mid-dense SELECT(1) pool time and the wide-sparse
/// adaptive mining time.
fn gate_against_history(history: &str, mode: &str, checks: &[GateCheck]) -> Result<(), String> {
    let threads = twoview_runtime::configured_threads();
    let previous = history.lines().rev().find(|l| {
        l.contains(&format!("\"mode\":\"{mode}\""))
            && history_field(l, "threads") == Some(threads as f64)
    });
    let Some(prev_line) = previous else {
        eprintln!(
            "  gate: no previous {mode} entry at {threads} thread(s) in {HISTORY_PATH}; \
             nothing to compare"
        );
        return Ok(());
    };
    for check in checks {
        let Some(prev_ms) = history_field(prev_line, check.field) else {
            if check.required {
                return Err(format!(
                    "gate: previous {mode} entry has no {} field",
                    check.field
                ));
            }
            eprintln!(
                "  gate: previous {mode} entry predates {}; nothing to compare",
                check.field
            );
            continue;
        };
        let ratio = check.new_ms / prev_ms.max(1e-9);
        eprintln!(
            "  gate: {} {:.2} ms vs previous {prev_ms:.2} ms ({ratio:.2}x)",
            check.label, check.new_ms
        );
        if ratio > 1.25 {
            return Err(format!(
                "gate: {} regressed {ratio:.2}x (> 1.25x) vs the previous {mode} entry \
                 ({:.2} ms vs {prev_ms:.2} ms)",
                check.label, check.new_ms
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().any(|a| a == "--gate");
    // Smoke runs default to their own file so a CI-sized local run never
    // clobbers the committed full-corpus BENCH_select.json record.
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if smoke {
            "BENCH_smoke.json"
        } else {
            "BENCH_select.json"
        })
        .to_string();

    let mut corpora_json: Vec<String> = Vec::new();
    let mut all_identities = true;
    let mut outcomes: Vec<(&str, CorpusOutcome)> = Vec::new();
    for spec in CORPORA {
        let mut json = String::new();
        let outcome = run_corpus(spec, smoke, &mut json);
        all_identities &= outcome.identities_ok;
        outcomes.push((spec.name, outcome));
        corpora_json.push(json);
    }
    let engine = run_engine_bench(smoke);
    all_identities &= engine.identity;

    let mode = if smoke { "smoke" } else { "full" };
    let history = std::fs::read_to_string(HISTORY_PATH).unwrap_or_default();
    let mid_dense_pool_ms = outcomes
        .iter()
        .find(|(n, _)| *n == "mid-dense")
        .expect("corpus present")
        .1
        .select_pool_ms;
    let robustness = run_robustness_bench(smoke, &history, mode, mid_dense_pool_ms);
    all_identities &= robustness.scenario_ok;
    let observability = run_observability_bench(smoke, &history, mode, mid_dense_pool_ms);
    all_identities &= observability.views_consistent;
    let persistence = run_persistence_bench(smoke);
    all_identities &= persistence.roundtrip_identical && persistence.torn_recovery_ok;

    let json = format!(
        "{{\n  \"suite\": \"select\",\n  \"mode\": \"{mode}\",\n  \"threads\": {threads},\n  \
         \"corpora\": [\n{corpora}\n  ],\n{engine_json},\n{robustness_json},\n{obs_json},\n\
         {persistence_json},\n  \
         \"all_identities\": {all_identities}\n}}\n",
        threads = twoview_runtime::configured_threads(),
        corpora = corpora_json.join(",\n"),
        engine_json = engine.json,
        robustness_json = robustness.json,
        obs_json = observability.json,
        persistence_json = persistence.json,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("  wrote {out_path}");

    // Gate against the existing history, and append ONLY when both the
    // gate and the identity checks pass: a regressed run must not become
    // the baseline the retry compares against (the >25% ratchet would
    // accept any regression on its second occurrence), and a broken run's
    // timings (often anomalously fast — skipped work is cheap work) must
    // not poison the baseline either.
    let by_name = |name: &str| {
        &outcomes
            .iter()
            .find(|(n, _)| *n == name)
            .expect("corpus present")
            .1
    };
    let gate_result = if gate {
        gate_against_history(
            &history,
            mode,
            &[
                GateCheck {
                    field: "select1_pool_ms_mid_dense",
                    label: "mid-dense SELECT(1) pool",
                    new_ms: by_name("mid-dense").select_pool_ms,
                    required: true,
                },
                GateCheck {
                    field: "mine_ms_wide_sparse",
                    label: "wide-sparse adaptive mining",
                    new_ms: by_name("wide-sparse").mine_serial_ms,
                    required: false,
                },
                GateCheck {
                    field: "mine_ms_clustered_runs",
                    label: "clustered-runs adaptive mining",
                    new_ms: by_name("clustered-runs").mine_serial_ms,
                    required: false,
                },
            ],
        )
    } else {
        Ok(())
    };

    if gate_result.is_ok() && all_identities {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut line = format!(
            "{{\"ts\":{ts},\"mode\":\"{mode}\",\"threads\":{}",
            twoview_runtime::configured_threads()
        );
        let mut mix_sparse = 0usize;
        let mut mix_dense = 0usize;
        let mut mix_runs = 0usize;
        let mut mix_saved = 0usize;
        for (name, outcome) in &outcomes {
            let key = name.replace('-', "_");
            let _ = write!(
                line,
                ",\"select1_pool_ms_{key}\":{:.3}",
                outcome.select_pool_ms
            );
            mix_sparse += outcome.mix_sparse;
            mix_dense += outcome.mix_dense;
            mix_runs += outcome.mix_runs;
            mix_saved += outcome.mix_bytes_saved;
        }
        for name in ["wide-sparse", "tall-sparse", "clustered-runs"] {
            let _ = write!(
                line,
                ",\"mine_ms_{}\":{:.3}",
                name.replace('-', "_"),
                by_name(name).mine_serial_ms
            );
        }
        let _ = write!(
            line,
            ",\"tidsets_sparse\":{mix_sparse},\"tidsets_dense\":{mix_dense},\
             \"tidsets_runs\":{mix_runs},\"tidset_bytes_saved\":{mix_saved}"
        );
        let _ = write!(line, ",\"engine_fit_mine_ms\":{:.3}", engine.fit_mine_ms);
        let _ = write!(
            line,
            ",\"faults_disabled_overhead_ok\":{}",
            robustness.overhead_ok
        );
        // Whole-run registry totals: everything the suite's engines and
        // solvers recorded, so history tracks counter volume over PRs.
        let registry = twoview_runtime::obs::snapshot();
        let counter_total: u64 = registry.counters.iter().map(|(_, v)| v).sum();
        let _ = write!(
            line,
            ",\"obs_counters\":{},\"obs_counter_total\":{counter_total},\
             \"obs_fits_completed\":{},\"obs_disabled_overhead_ok\":{},\
             \"stats_views_consistent\":{}",
            registry.counters.len(),
            registry.counter("engine.fits_completed"),
            observability.overhead_ok,
            observability.views_consistent,
        );
        let _ = write!(
            line,
            ",\"persist_cold_build_ms\":{:.3},\"persist_warm_build_ms\":{:.3},\
             \"snapshot_roundtrip_identical\":{},\"snapshot_torn_recovery_ok\":{}",
            persistence.cold_build_ms,
            persistence.warm_build_ms,
            persistence.roundtrip_identical,
            persistence.torn_recovery_ok,
        );
        let _ = write!(line, ",\"all_identities\":{all_identities}}}");
        let mut history = history;
        history.push_str(&line);
        history.push('\n');
        std::fs::write(HISTORY_PATH, &history).expect("append bench history");
        eprintln!("  appended run to {HISTORY_PATH}");
    }

    if let Err(msg) = gate_result {
        eprintln!("perfsuite: {msg} (run NOT appended to {HISTORY_PATH})");
        std::process::exit(1);
    }
    if !all_identities {
        eprintln!("perfsuite: IDENTITY CHECK FAILED");
        std::process::exit(1);
    }
    // Reported (and CI grep-gated via the JSON snapshot) rather than a
    // hard process failure: the <2% bar is enforced where the snapshot is
    // consumed, keeping local full runs usable on noisy machines.
    if !robustness.overhead_ok {
        eprintln!("perfsuite: WARNING: faults-disabled overhead exceeded 2% vs history baseline");
    }
    if !observability.overhead_ok {
        eprintln!("perfsuite: WARNING: obs-disabled overhead exceeded 2% vs history baseline");
    }
}
