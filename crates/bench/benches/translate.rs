//! Substrate benchmarks: translation, gain evaluation, cover updates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twoview_bench::bench_dataset;
use twoview_core::{translate, translator_select, CoverState, SelectConfig};
use twoview_data::corpus::PaperDataset;
use twoview_data::Side;

fn bench_translate(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::House, 435);
    let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(8).build());
    let table = model.table;

    let mut g = c.benchmark_group("translate/house");
    g.bench_function("translate-view-l2r", |b| {
        b.iter(|| black_box(translate::translate_view(&data, &table, Side::Left)));
    });
    g.bench_function("check-lossless", |b| {
        b.iter(|| black_box(translate::check_lossless(&data, &table)));
    });
    g.bench_function("cover-from-table", |b| {
        b.iter(|| black_box(CoverState::from_table(&data, &table)));
    });
    g.bench_function("rule-gain", |b| {
        let state = CoverState::new(&data);
        let rule = table.rules()[0].clone();
        b.iter(|| black_box(state.rule_gain(&rule)));
    });
    g.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
