//! Bench for Table 1: corpus generation and dataset statistics.
//!
//! Regenerate the quality numbers with
//! `cargo run --release -p twoview-eval --bin table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twoview_core::CodeLengths;
use twoview_data::corpus::PaperDataset;
use twoview_data::Side;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/generate");
    g.sample_size(10);
    for ds in [PaperDataset::Wine, PaperDataset::House, PaperDataset::Yeast] {
        g.bench_with_input(BenchmarkId::from_parameter(ds.name()), &ds, |b, &ds| {
            b.iter(|| black_box(ds.generate_scaled(500)));
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let data = PaperDataset::House.generate().dataset;
    let mut g = c.benchmark_group("table1/stats");
    g.bench_function("densities", |b| {
        b.iter(|| {
            (
                black_box(data.density(Side::Left)),
                black_box(data.density(Side::Right)),
            )
        });
    });
    g.bench_function("l_empty", |b| {
        let codes = CodeLengths::new(&data);
        b.iter(|| black_box(codes.empty_model(&data)));
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_stats);
criterion_main!(benches);
