//! Bench for Table 3: runtimes of the four comparison methods.
//!
//! Regenerate the quality numbers with
//! `cargo run --release -p twoview-eval --bin table3`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twoview_baselines::{
    krimp, magnum_opus_rules, mine_association_rules, reremi_redescriptions, AssocConfig,
    KrimpConfig, MagnumConfig, ReremiConfig,
};
use twoview_bench::bench_dataset;
use twoview_core::{translator_select, SelectConfig};
use twoview_data::corpus::PaperDataset;

fn bench_baselines(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::Wine, 178);
    let mut g = c.benchmark_group("table3/wine");
    g.sample_size(10);
    g.bench_function("translator-select1", |b| {
        b.iter(|| {
            black_box(translator_select(
                &data,
                &SelectConfig::builder().k(1).minsup(2).build(),
            ))
        });
    });
    g.bench_function("magnum-opus-style", |b| {
        b.iter(|| black_box(magnum_opus_rules(&data, &MagnumConfig::default())));
    });
    g.bench_function("reremi-style", |b| {
        b.iter(|| black_box(reremi_redescriptions(&data, &ReremiConfig::default())));
    });
    g.bench_function("krimp", |b| {
        b.iter(|| black_box(krimp(&data, &KrimpConfig::new(2))));
    });
    g.bench_function("assoc-rules", |b| {
        b.iter(|| black_box(mine_association_rules(&data, &AssocConfig::new(4, 0.8))));
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
