//! Bench for Fig. 2: cost of fitting SELECT(1) on House with full tracing.
//!
//! Regenerate the trace series with
//! `cargo run --release -p twoview-eval --bin fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twoview_bench::bench_dataset;
use twoview_core::{translator_select, SelectConfig};
use twoview_data::corpus::PaperDataset;

fn bench_fig2(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::House, 200);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("house-select1-trace", |b| {
        b.iter(|| {
            let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(4).build());
            black_box(model.trace.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
