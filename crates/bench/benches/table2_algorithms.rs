//! Bench for Table 2: runtimes of the three TRANSLATOR search strategies.
//!
//! Regenerate the quality numbers (|T|, L%) with
//! `cargo run --release -p twoview-eval --bin table2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twoview_bench::{bench_dataset, bench_minsup};
use twoview_core::{
    translator_exact_with, translator_greedy, translator_select, ExactConfig, GreedyConfig,
    SelectConfig,
};
use twoview_data::corpus::PaperDataset;

const SCALE: usize = 250;

fn bench_methods(c: &mut Criterion) {
    for ds in [
        PaperDataset::Wine,
        PaperDataset::House,
        PaperDataset::Tictactoe,
    ] {
        let data = bench_dataset(ds, SCALE);
        let minsup = bench_minsup(ds, &data).max(2);
        let mut g = c.benchmark_group(format!("table2/{}", ds.name()));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("select", 1), &data, |b, d| {
            b.iter(|| {
                black_box(translator_select(
                    d,
                    &SelectConfig::builder().k(1).minsup(minsup).build(),
                ))
            });
        });
        g.bench_with_input(BenchmarkId::new("select", 25), &data, |b, d| {
            b.iter(|| {
                black_box(translator_select(
                    d,
                    &SelectConfig::builder().k(25).minsup(minsup).build(),
                ))
            });
        });
        g.bench_with_input(BenchmarkId::new("greedy", 1), &data, |b, d| {
            b.iter(|| {
                black_box(translator_greedy(
                    d,
                    &GreedyConfig::builder().minsup(minsup).build(),
                ))
            });
        });
        g.bench_with_input(BenchmarkId::new("exact-capped", 0), &data, |b, d| {
            let cfg = ExactConfig {
                max_nodes: Some(100_000),
                ..ExactConfig::default()
            };
            b.iter(|| black_box(translator_exact_with(d, &cfg)));
        });
        g.finish();
    }
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
