//! Substrate benchmarks: frequent and closed itemset mining.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twoview_bench::bench_dataset;
use twoview_data::corpus::PaperDataset;
use twoview_mining::{mine_closed, mine_closed_twoview, mine_frequent, MinerConfig};

fn bench_miners(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::Yeast, 500);
    let mut g = c.benchmark_group("mining/yeast-500");
    g.sample_size(10);
    for minsup in [2usize, 5, 20] {
        g.bench_with_input(BenchmarkId::new("frequent", minsup), &minsup, |b, &m| {
            b.iter(|| {
                black_box(mine_frequent(
                    &data,
                    &MinerConfig::builder().minsup(m).build(),
                ))
            });
        });
        g.bench_with_input(BenchmarkId::new("closed", minsup), &minsup, |b, &m| {
            b.iter(|| {
                black_box(mine_closed(
                    &data,
                    &MinerConfig::builder().minsup(m).build(),
                ))
            });
        });
        g.bench_with_input(
            BenchmarkId::new("closed-twoview", minsup),
            &minsup,
            |b, &m| {
                b.iter(|| {
                    black_box(mine_closed_twoview(
                        &data,
                        &MinerConfig::builder().minsup(m).build(),
                    ))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
