//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//!
//! 1. EXACT bound effectiveness (`rub` / `qub` on vs off);
//! 2. SELECT candidate class (closed vs all frequent itemsets);
//! 3. SELECT k sweep;
//! 4. SELECT gain cache on vs off;
//! 5. GREEDY candidate ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twoview_bench::bench_dataset;
use twoview_core::exact::best_rule;
use twoview_core::{
    translator_greedy, translator_select, CandidateOrder, CoverState, ExactConfig, GreedyConfig,
    SelectConfig,
};
use twoview_data::corpus::PaperDataset;

fn ablate_exact_bounds(c: &mut Criterion) {
    // Tiny data: the unpruned search is exponential.
    let data = bench_dataset(PaperDataset::Wine, 60);
    let state = CoverState::new(&data);
    let mut g = c.benchmark_group("ablation/exact-bounds");
    g.sample_size(10);
    let variants = [
        ("rub+qub", true, true),
        ("rub-only", true, false),
        ("qub-only", false, true),
    ];
    for (name, use_rub, use_qub) in variants {
        let cfg = ExactConfig {
            use_rub,
            use_qub,
            max_nodes: Some(3_000_000),
            candidate_seed_minsup: None,
            ..ExactConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(best_rule(&state, cfg)));
        });
    }
    g.finish();
}

fn ablate_select_candidates(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::Wine, 178);
    let mut g = c.benchmark_group("ablation/select-candidates");
    g.sample_size(10);
    g.bench_function("closed", |b| {
        b.iter(|| {
            black_box(translator_select(
                &data,
                &SelectConfig::builder().k(1).minsup(2).build(),
            ))
        });
    });
    g.bench_function("all-frequent", |b| {
        let cfg = SelectConfig {
            closed_candidates: false,
            ..SelectConfig::builder().k(1).minsup(2).build()
        };
        b.iter(|| black_box(translator_select(&data, &cfg)));
    });
    g.finish();
}

fn ablate_select_k(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::House, 250);
    let mut g = c.benchmark_group("ablation/select-k");
    g.sample_size(10);
    for k in [1usize, 5, 25, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(translator_select(
                    &data,
                    &SelectConfig::builder().k(k).minsup(5).build(),
                ))
            });
        });
    }
    g.finish();
}

fn ablate_gain_cache(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::House, 250);
    let mut g = c.benchmark_group("ablation/gain-cache");
    g.sample_size(10);
    g.bench_function("cached", |b| {
        b.iter(|| {
            black_box(translator_select(
                &data,
                &SelectConfig::builder().k(1).minsup(5).build(),
            ))
        });
    });
    g.bench_function("uncached", |b| {
        let cfg = SelectConfig {
            gain_cache: false,
            ..SelectConfig::builder().k(1).minsup(5).build()
        };
        b.iter(|| black_box(translator_select(&data, &cfg)));
    });
    g.finish();
}

fn ablate_greedy_order(c: &mut Criterion) {
    let data = bench_dataset(PaperDataset::Yeast, 400);
    let mut g = c.benchmark_group("ablation/greedy-order");
    g.sample_size(10);
    for (name, order) in [
        ("length-support", CandidateOrder::LengthThenSupport),
        ("support-length", CandidateOrder::SupportThenLength),
    ] {
        let cfg = GreedyConfig {
            order,
            ..GreedyConfig::builder().minsup(2).build()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(translator_greedy(&data, cfg)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_exact_bounds,
    ablate_select_candidates,
    ablate_select_k,
    ablate_gain_cache,
    ablate_greedy_order
);
criterion_main!(benches);
