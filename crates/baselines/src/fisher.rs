//! Fisher's exact test on 2×2 contingency tables.
//!
//! The significant-rule-discovery baseline (Webb, *Discovering Significant
//! Patterns*, Machine Learning 68(1), 2007 — the method behind the Magnum
//! Opus tool the paper compares against) tests each rule `X → y` for a
//! positive association between antecedent and consequent occurrence. The
//! one-sided p-value is the hypergeometric tail
//!
//! `P(|supp(X ∪ y)| ≥ k)` given margins `|supp(X)|`, `|supp(y)|`, `|D|`.

/// Precomputed `ln(k!)` table for exact hypergeometric probabilities.
#[derive(Clone, Debug)]
pub struct LnFactorials {
    table: Vec<f64>,
}

impl LnFactorials {
    /// Builds a table usable for populations up to `n`.
    pub fn new(n: usize) -> LnFactorials {
        let mut table = Vec::with_capacity(n + 1);
        table.push(0.0);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).ln();
            table.push(acc);
        }
        LnFactorials { table }
    }

    /// `ln(k!)`.
    #[inline]
    pub fn get(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// `ln C(n, k)`; `-inf` when `k > n`.
    #[inline]
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            f64::NEG_INFINITY
        } else {
            self.get(n) - self.get(k) - self.get(n - k)
        }
    }
}

/// One-sided Fisher exact p-value for over-representation.
///
/// Population `n`, draws `sx = |supp(X)|`, successes `sy = |supp(y)|`,
/// observed overlap `sxy`. Returns `P(overlap ≥ sxy)`.
pub fn fisher_exact_over(lf: &LnFactorials, n: usize, sx: usize, sy: usize, sxy: usize) -> f64 {
    debug_assert!(sx <= n && sy <= n && sxy <= sx.min(sy));
    let hi = sx.min(sy);
    // Overlap cannot be below max(0, sx + sy - n).
    let lo = sxy.max(sx.saturating_add(sy).saturating_sub(n));
    let denom = lf.ln_choose(n, sx);
    let mut p = 0.0;
    for k in lo..=hi {
        let ln_p = lf.ln_choose(sy, k) + lf.ln_choose(n - sy, sx - k) - denom;
        p += ln_p.exp();
    }
    p.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorials_match_direct_computation() {
        let lf = LnFactorials::new(20);
        assert_eq!(lf.get(0), 0.0);
        assert!((lf.get(5) - 120f64.ln()).abs() < 1e-9);
        assert!((lf.ln_choose(10, 3) - 120f64.ln()).abs() < 1e-9);
        assert_eq!(lf.ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn perfect_association_is_significant() {
        // n=20, sx=10, sy=10, overlap=10: hypergeometric P = 1/C(20,10).
        let lf = LnFactorials::new(20);
        let p = fisher_exact_over(&lf, 20, 10, 10, 10);
        let expect = 1.0 / 184_756.0; // C(20,10)
        assert!((p - expect).abs() < 1e-12, "{p}");
    }

    #[test]
    fn independence_is_not_significant() {
        // Overlap exactly at expectation: p-value should be large.
        let lf = LnFactorials::new(100);
        let p = fisher_exact_over(&lf, 100, 50, 50, 25);
        assert!(p > 0.4, "{p}");
    }

    #[test]
    fn tail_sums_to_one_from_minimum_overlap() {
        // Summing the whole support of the distribution gives 1.
        let lf = LnFactorials::new(30);
        let p = fisher_exact_over(&lf, 30, 12, 9, 0);
        assert!((p - 1.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn respects_lower_feasibility_bound() {
        // sx + sy > n forces a minimum overlap; asking for less than the
        // minimum must still return 1.
        let lf = LnFactorials::new(10);
        let p = fisher_exact_over(&lf, 10, 8, 7, 2);
        assert!((p - 1.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn monotone_in_observed_overlap() {
        let lf = LnFactorials::new(50);
        let mut prev = 1.1;
        for k in 5..=15 {
            let p = fisher_exact_over(&lf, 50, 15, 20, k);
            assert!(p <= prev + 1e-12, "k={k}: {p} > {prev}");
            prev = p;
        }
    }
}
