//! Significant rule discovery à la Magnum Opus (Webb, ML 2007).
//!
//! The paper compares against the Magnum Opus tool, which implements
//! Webb's *significant pattern discovery*: rules are kept only when the
//! association between antecedent and consequent passes Fisher's exact test
//! under a Bonferroni-style correction for the size of the hypothesis
//! space, and only when they are *productive* — strictly more confident
//! than every immediate generalisation. Magnum Opus itself is closed
//! source; this module reimplements the published method (see DESIGN.md §4
//! for the substitution rationale).
//!
//! Mirroring the paper's protocol (§6.3), the miner runs once per
//! orientation — antecedents from one view, single-item consequents from
//! the other — and rules found in both orientations merge into a single
//! bidirectional rule.

use std::collections::HashMap;

use twoview_core::{Direction, TranslationRule, TranslationTable};
use twoview_data::prelude::*;
use twoview_mining::{mine_frequent, MinerConfig};

use crate::fisher::{fisher_exact_over, LnFactorials};

/// Parameters of the significant-rule search.
#[derive(Clone, Debug)]
pub struct MagnumConfig {
    /// Family-wise error rate before correction (Magnum Opus default 0.05).
    pub alpha: f64,
    /// Maximum antecedent size (Magnum Opus default 4).
    pub max_antecedent: usize,
    /// Minimum absolute support of the antecedent (search-space control).
    pub min_coverage: usize,
    /// Safety valve on enumerated antecedents per orientation.
    pub max_antecedents: usize,
    /// Keep only the most significant rules (Magnum Opus's default search
    /// returns the top 100).
    pub max_rules: usize,
}

impl Default for MagnumConfig {
    fn default() -> Self {
        MagnumConfig {
            alpha: 0.05,
            max_antecedent: 4,
            min_coverage: 5,
            max_antecedents: 500_000,
            max_rules: 100,
        }
    }
}

/// A significant rule with its test statistics.
#[derive(Clone, Debug)]
pub struct SignificantRule {
    /// Left-view itemset.
    pub left: ItemSet,
    /// Right-view itemset.
    pub right: ItemSet,
    /// Direction (merged rules become [`Direction::Both`]).
    pub direction: Direction,
    /// Joint support.
    pub support: usize,
    /// Confidence of the originating orientation.
    pub confidence: f64,
    /// Fisher exact p-value (of the weaker orientation for merged rules).
    pub p_value: f64,
}

/// Result of a run: the merged rule set plus the corrected threshold used.
#[derive(Clone, Debug)]
pub struct MagnumResult {
    /// Significant, productive rules (both orientations merged).
    pub rules: Vec<SignificantRule>,
    /// The Bonferroni-corrected significance level `α / m`.
    pub corrected_alpha: f64,
    /// Number of hypotheses `m` (antecedent–consequent pairs tested).
    pub n_hypotheses: usize,
}

impl MagnumResult {
    /// Converts the rule set into a translation table for MDL evaluation
    /// (paper Table 3 protocol).
    pub fn to_translation_table(&self) -> TranslationTable {
        TranslationTable::from_rules(
            self.rules
                .iter()
                .map(|r| TranslationRule::new(r.left.clone(), r.right.clone(), r.direction)),
        )
    }
}

/// Runs significant rule discovery on both orientations and merges.
pub fn magnum_opus_rules(data: &TwoViewDataset, cfg: &MagnumConfig) -> MagnumResult {
    let n = data.n_transactions();
    let lf = LnFactorials::new(n);

    let fwd = directional_rules(data, Side::Left, cfg, &lf);
    let bwd = directional_rules(data, Side::Right, cfg, &lf);
    let n_hypotheses = fwd.n_hypotheses + bwd.n_hypotheses;
    let corrected_alpha = cfg.alpha / n_hypotheses.max(1) as f64;

    // Significance filter with the global correction.
    let keep = |rules: Vec<RawRule>| -> Vec<RawRule> {
        rules
            .into_iter()
            .filter(|r| r.p_value <= corrected_alpha)
            .collect()
    };
    let fwd = keep(fwd.rules);
    let bwd = keep(bwd.rules);

    // Merge orientations: identical (left, right) pairs become bidirectional.
    let mut merged: HashMap<(ItemSet, ItemSet), SignificantRule> = HashMap::new();
    for r in fwd {
        merged.insert(
            (r.left.clone(), r.right.clone()),
            SignificantRule {
                left: r.left,
                right: r.right,
                direction: Direction::Forward,
                support: r.support,
                confidence: r.confidence,
                p_value: r.p_value,
            },
        );
    }
    for r in bwd {
        match merged.entry((r.left.clone(), r.right.clone())) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let m = e.get_mut();
                m.direction = Direction::Both;
                m.p_value = m.p_value.max(r.p_value);
                m.confidence = m.confidence.max(r.confidence);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SignificantRule {
                    left: r.left,
                    right: r.right,
                    direction: Direction::Backward,
                    support: r.support,
                    confidence: r.confidence,
                    p_value: r.p_value,
                });
            }
        }
    }
    let mut rules: Vec<SignificantRule> = merged.into_values().collect();
    rules.sort_by(|a, b| {
        a.p_value
            .total_cmp(&b.p_value)
            .then(b.support.cmp(&a.support))
            .then((&a.left, &a.right).cmp(&(&b.left, &b.right)))
    });
    rules.truncate(cfg.max_rules);
    MagnumResult {
        rules,
        corrected_alpha,
        n_hypotheses,
    }
}

/// Webb's alternative protocol: **holdout evaluation**. Rules are
/// discovered on an exploratory split without a search-space-wide
/// correction, then each discovered rule is retested on the unseen holdout
/// half with a correction only for the number of *discovered* rules — far
/// less conservative than the full Bonferroni correction when the search
/// space is large.
pub fn magnum_opus_rules_holdout(
    data: &TwoViewDataset,
    cfg: &MagnumConfig,
    exploratory_fraction: f64,
    seed: u64,
) -> MagnumResult {
    let (explore, hold) = twoview_data::sample::holdout_split(data, exploratory_fraction, seed);
    if explore.n_transactions() == 0 || hold.n_transactions() == 0 {
        return MagnumResult {
            rules: Vec::new(),
            corrected_alpha: cfg.alpha,
            n_hypotheses: 0,
        };
    }
    let lf_explore = LnFactorials::new(explore.n_transactions());
    let fwd = directional_rules(&explore, Side::Left, cfg, &lf_explore);
    let bwd = directional_rules(&explore, Side::Right, cfg, &lf_explore);

    // Exploratory screening: keep the rules significant at the *uncorrected*
    // level — the holdout test is the real filter.
    let screened: Vec<RawRule> = fwd
        .rules
        .into_iter()
        .chain(bwd.rules)
        .filter(|r| r.p_value <= cfg.alpha)
        .collect();
    let n_found = screened.len();
    let corrected_alpha = cfg.alpha / n_found.max(1) as f64;

    // Retest on the holdout half.
    let lf_hold = LnFactorials::new(hold.n_transactions());
    let mut merged: HashMap<(ItemSet, ItemSet), SignificantRule> = HashMap::new();
    for r in screened {
        let sx = hold.support_count(&r.left);
        let sy = hold.support_count(&r.right);
        if sx == 0 || sy == 0 {
            continue;
        }
        let sxy = hold
            .support_set(&r.left)
            .intersection_len(&hold.support_set(&r.right));
        let p = fisher_exact_over(&lf_hold, hold.n_transactions(), sx, sy, sxy);
        if p > corrected_alpha {
            continue;
        }
        // Orientation of the original discovery: single-item right side from
        // the backward pass; merge duplicates into Both like the main path.
        let confidence = sxy as f64 / sx as f64;
        match merged.entry((r.left.clone(), r.right.clone())) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let m = e.get_mut();
                m.direction = Direction::Both;
                m.p_value = m.p_value.max(p);
                m.confidence = m.confidence.max(confidence);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SignificantRule {
                    left: r.left,
                    right: r.right,
                    direction: if r.forward {
                        Direction::Forward
                    } else {
                        Direction::Backward
                    },
                    support: sxy,
                    confidence,
                    p_value: p,
                });
            }
        }
    }
    let mut rules: Vec<SignificantRule> = merged.into_values().collect();
    rules.sort_by(|a, b| {
        a.p_value
            .total_cmp(&b.p_value)
            .then(b.support.cmp(&a.support))
            .then((&a.left, &a.right).cmp(&(&b.left, &b.right)))
    });
    rules.truncate(cfg.max_rules);
    MagnumResult {
        rules,
        corrected_alpha,
        n_hypotheses: n_found,
    }
}

struct RawRule {
    left: ItemSet,
    right: ItemSet,
    support: usize,
    confidence: f64,
    p_value: f64,
    /// `true` when discovered in the L→R orientation.
    forward: bool,
}

struct DirectionalOutput {
    rules: Vec<RawRule>,
    n_hypotheses: usize,
}

/// One orientation: antecedents over `from`, single-item consequents over
/// the opposite view.
fn directional_rules(
    data: &TwoViewDataset,
    from: Side,
    cfg: &MagnumConfig,
    lf: &LnFactorials,
) -> DirectionalOutput {
    let vocab = data.vocab();
    let n = data.n_transactions();

    // Mine frequent antecedents over the source view only by projecting the
    // dataset: itemsets restricted to `from` items.
    let antecedents = mine_side_itemsets(data, from, cfg);
    let consequents: Vec<ItemId> = vocab.items_on(from.opposite()).collect();
    let n_hypotheses = antecedents.len() * consequents.len();

    // Supports of antecedents are needed for the productivity check; index
    // them for O(1) lookup.
    let supp_index: HashMap<&ItemSet, usize> =
        antecedents.iter().map(|(s, sup)| (s, *sup)).collect();

    let mut rules = Vec::new();
    for (ante, sx) in &antecedents {
        let tid_x = data.support_set(ante);
        for &y in &consequents {
            let sy = data.support(y);
            if sy == 0 {
                continue;
            }
            let sxy = tid_x.intersection_len(data.tidset(y));
            if sxy == 0 {
                continue;
            }
            let confidence = sxy as f64 / *sx as f64;
            // Lift filter: only positive associations are of interest.
            if confidence <= sy as f64 / n as f64 {
                continue;
            }
            // Productivity: strictly higher confidence than every immediate
            // generalisation X \ {x} → y.
            if !is_productive(data, ante, y, confidence, &supp_index) {
                continue;
            }
            let p_value = fisher_exact_over(lf, n, *sx, sy, sxy);
            let (left, right) = match from {
                Side::Left => (ante.clone(), ItemSet::singleton(y)),
                Side::Right => (ItemSet::singleton(y), ante.clone()),
            };
            rules.push(RawRule {
                left,
                right,
                support: sxy,
                confidence,
                p_value,
                forward: from == Side::Left,
            });
        }
    }
    DirectionalOutput {
        rules,
        n_hypotheses,
    }
}

/// Frequent itemsets restricted to one view (the antecedent space).
fn mine_side_itemsets(
    data: &TwoViewDataset,
    side: Side,
    cfg: &MagnumConfig,
) -> Vec<(ItemSet, usize)> {
    let mut miner_cfg = MinerConfig::builder()
        .minsup(cfg.min_coverage)
        .max_len(cfg.max_antecedent)
        .build();
    miner_cfg.max_itemsets = cfg.max_antecedents;
    // Mine over the joint data but keep only single-view itemsets; the
    // miner's DFS order makes this equivalent to mining the projection.
    let res = mine_frequent(data, &miner_cfg);
    let vocab = data.vocab();
    res.itemsets
        .into_iter()
        .filter(|f| f.items.iter().all(|i| vocab.side_of(i) == side))
        .map(|f| (f.items, f.support))
        .collect()
}

fn is_productive(
    data: &TwoViewDataset,
    ante: &ItemSet,
    y: ItemId,
    confidence: f64,
    supp_index: &HashMap<&ItemSet, usize>,
) -> bool {
    if ante.len() == 1 {
        return true; // no non-empty generalisation
    }
    for drop in ante.iter() {
        let general: ItemSet = ante.iter().filter(|&i| i != drop).collect();
        let sg = supp_index
            .get(&general)
            .copied()
            .unwrap_or_else(|| data.support_count(&general));
        if sg == 0 {
            return false;
        }
        let sgy = data.support_set(&general).intersection_len(data.tidset(y));
        if sgy as f64 / sg as f64 >= confidence {
            return false; // generalisation is at least as confident
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 40 transactions where a ⇔ x perfectly, b is noise, y is rare noise.
    fn strong_pair() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        let mut txs = Vec::new();
        for i in 0..40 {
            let mut t = Vec::new();
            if i % 2 == 0 {
                t.push(0);
                t.push(2);
            }
            if i % 5 == 0 {
                t.push(1);
            }
            if i % 7 == 0 {
                t.push(3);
            }
            txs.push(t);
        }
        TwoViewDataset::from_transactions(vocab, &txs)
    }

    #[test]
    fn finds_the_planted_association_and_merges_bidirectionally() {
        let d = strong_pair();
        let res = magnum_opus_rules(&d, &MagnumConfig::default());
        assert!(!res.rules.is_empty());
        let top = &res.rules[0];
        assert_eq!(top.left.as_slice(), &[0]);
        assert_eq!(top.right.as_slice(), &[2]);
        // a→x and x→a are both perfectly confident: must merge into ↔.
        assert_eq!(top.direction, Direction::Both);
        assert!(top.p_value <= res.corrected_alpha);
    }

    #[test]
    fn no_rules_on_independent_noise() {
        // Independent coin flips: nothing should survive the correction.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let vocab = Vocabulary::unnamed(3, 3);
        let txs: Vec<Vec<ItemId>> = (0..60)
            .map(|_| (0..6).filter(|_| rng.gen_bool(0.3)).collect())
            .collect();
        let d = TwoViewDataset::from_transactions(vocab, &txs);
        let res = magnum_opus_rules(&d, &MagnumConfig::default());
        assert!(
            res.rules.len() <= 1,
            "noise produced {} 'significant' rules",
            res.rules.len()
        );
    }

    #[test]
    fn productivity_prunes_redundant_specialisations() {
        let d = strong_pair();
        let res = magnum_opus_rules(&d, &MagnumConfig::default());
        // {a,b} -> x cannot be more confident than {a} -> x (conf 1.0), so
        // no rule with antecedent {a,b} may appear.
        assert!(res
            .rules
            .iter()
            .all(|r| !(r.left.contains(0) && r.left.contains(1))));
    }

    #[test]
    fn translation_table_conversion() {
        let d = strong_pair();
        let res = magnum_opus_rules(&d, &MagnumConfig::default());
        let table = res.to_translation_table();
        assert_eq!(table.len(), res.rules.len());
        let score = twoview_core::evaluate_table(&d, &table);
        assert!(score.l_total > 0.0);
    }

    #[test]
    fn holdout_finds_strong_rules_and_rejects_noise() {
        let d = strong_pair();
        let res = magnum_opus_rules_holdout(&d, &MagnumConfig::default(), 0.5, 11);
        assert!(
            res.rules
                .iter()
                .any(|r| r.left.contains(0) && r.right.contains(2)),
            "holdout missed the planted a<->x rule: {:?}",
            res.rules
        );
        // Pure noise: nothing survives the holdout retest.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let vocab = Vocabulary::unnamed(3, 3);
        let txs: Vec<Vec<ItemId>> = (0..80)
            .map(|_| (0..6).filter(|_| rng.gen_bool(0.3)).collect())
            .collect();
        let noise = TwoViewDataset::from_transactions(vocab, &txs);
        let res = magnum_opus_rules_holdout(&noise, &MagnumConfig::default(), 0.5, 11);
        assert!(res.rules.len() <= 1, "noise rules: {:?}", res.rules.len());
    }

    #[test]
    fn holdout_handles_degenerate_splits() {
        let d = strong_pair();
        let all = magnum_opus_rules_holdout(&d, &MagnumConfig::default(), 1.0, 3);
        assert!(all.rules.is_empty());
        let none = magnum_opus_rules_holdout(&d, &MagnumConfig::default(), 0.0, 3);
        assert!(none.rules.is_empty());
    }

    #[test]
    fn corrected_alpha_shrinks_with_space() {
        let d = strong_pair();
        let small = magnum_opus_rules(
            &d,
            &MagnumConfig {
                max_antecedent: 1,
                ..MagnumConfig::default()
            },
        );
        let large = magnum_opus_rules(&d, &MagnumConfig::default());
        assert!(large.n_hypotheses >= small.n_hypotheses);
        assert!(large.corrected_alpha <= small.corrected_alpha);
    }
}
