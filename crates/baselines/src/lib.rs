//! # twoview-baselines
//!
//! The four comparison methods of the paper's evaluation (§6.3), each
//! implemented from its original publication:
//!
//! * [`assoc`] — classic cross-view association rule mining (Agrawal et
//!   al., SIGMOD'93): demonstrates the pattern explosion;
//! * [`magnum`] — significant rule discovery à la Magnum Opus (Webb, ML
//!   2007): Fisher exact tests with Bonferroni-style correction and a
//!   productivity filter;
//! * [`reremi`] — redescription mining à la ReReMi (Galbrun & Miettinen,
//!   SADM 2012), restricted to monotone conjunctions;
//! * [`krimp`] — KRIMP (Vreeken et al., DMKD 2011) on the joint data, with
//!   the code-table→translation-table conversion the paper uses;
//! * [`fisher`] — exact hypergeometric testing shared by the above.
//!
//! Every baseline exposes a `to_translation_table` conversion so its output
//! can be scored with the paper's MDL criteria (`L%`, `|C|%`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod fisher;
pub mod krimp;
pub mod magnum;
pub mod reremi;

pub use assoc::{mine_association_rules, AssocConfig, AssocResult, AssociationRule};
pub use krimp::{krimp, KrimpConfig, KrimpModel};
pub use magnum::{
    magnum_opus_rules, magnum_opus_rules_holdout, MagnumConfig, MagnumResult, SignificantRule,
};
pub use reremi::{reremi_redescriptions, Redescription, ReremiConfig, ReremiResult};
