//! KRIMP: itemsets that compress (Vreeken, van Leeuwen & Siebes, DMKD 2011).
//!
//! Full reimplementation of the classic MDL pattern-set miner, used by the
//! paper as a baseline (§6.3): a *code table* maps itemsets to prefix codes
//! whose lengths derive from usage in the greedy *cover* of the database;
//! candidates are accepted when they shrink the total encoded size
//! `L(CT | D) + L(D | CT)`, with optional post-acceptance pruning.
//!
//! The paper evaluates KRIMP on the *joint* two-view data and then
//! reinterprets the mined code table as a translation table: every
//! non-singleton element that spans both views becomes a bidirectional
//! rule ([`KrimpModel::to_translation_table`]). Single-view elements cannot
//! form translation rules (one side would be empty) and are dropped — this
//! is precisely why KRIMP fares badly at the translation task, which is the
//! paper's point.

use twoview_core::{Direction, TranslationRule, TranslationTable};
use twoview_data::prelude::*;
use twoview_mining::{mine_closed, mine_frequent, MinerConfig};

/// KRIMP parameters.
#[derive(Clone, Debug)]
pub struct KrimpConfig {
    /// Candidate minimum support.
    pub minsup: usize,
    /// Use closed frequent itemsets as candidates (the usual choice; `all`
    /// is the alternative in the original paper).
    pub closed_candidates: bool,
    /// Candidate cap (safety valve).
    pub max_candidates: usize,
    /// Post-acceptance pruning (recommended and enabled by default).
    pub prune: bool,
}

impl KrimpConfig {
    /// Default configuration with the given minsup.
    pub fn new(minsup: usize) -> Self {
        KrimpConfig {
            minsup: minsup.max(1),
            closed_candidates: true,
            max_candidates: 200_000,
            prune: true,
        }
    }
}

/// One code table element.
#[derive(Clone, Debug)]
pub struct CodeTableEntry {
    /// The itemset (global ids).
    pub items: ItemSet,
    /// Support in the database.
    pub support: usize,
    /// Usage in the current cover.
    pub usage: usize,
}

/// A fitted KRIMP model.
#[derive(Clone, Debug)]
pub struct KrimpModel {
    /// All elements with non-zero usage, singletons included, in Standard
    /// Cover Order.
    pub entries: Vec<CodeTableEntry>,
    /// Total encoded size `L(CT | D) + L(D | CT)` in bits.
    pub l_total: f64,
    /// `L(D | CT)`.
    pub l_data: f64,
    /// `L(CT | D)`.
    pub l_code_table: f64,
    /// Encoded size of the singleton-only (standard) code table, for
    /// KRIMP's own compression ratio.
    pub l_baseline: f64,
    /// Number of candidates evaluated.
    pub n_candidates: usize,
}

impl KrimpModel {
    /// KRIMP's own compression ratio (relative to the singleton code table).
    pub fn compression_pct(&self) -> f64 {
        if self.l_baseline == 0.0 {
            100.0
        } else {
            100.0 * self.l_total / self.l_baseline
        }
    }

    /// Non-singleton elements of the code table.
    pub fn patterns(&self) -> impl Iterator<Item = &CodeTableEntry> {
        self.entries.iter().filter(|e| e.items.len() > 1)
    }

    /// Reinterprets the code table as a translation table (paper §6.3):
    /// cross-view elements become bidirectional rules; single-view elements
    /// are dropped (they cannot be translation rules).
    pub fn to_translation_table(&self, vocab: &Vocabulary) -> TranslationTable {
        TranslationTable::from_rules(self.patterns().filter_map(|e| {
            if e.items.spans_both_views(vocab) {
                let (l, r) = e.items.split(vocab);
                Some(TranslationRule::new(l, r, Direction::Both))
            } else {
                None
            }
        }))
    }
}

/// Internal fitting state.
struct Krimp<'d> {
    data: &'d TwoViewDataset,
    /// Joint row bitmaps (over global item ids).
    rows: Vec<Bitmap>,
    /// Entry arena (stable ids).
    items_of: Vec<ItemSet>,
    bitmap_of: Vec<Bitmap>,
    support_of: Vec<usize>,
    /// Entry ids in Standard Cover Order.
    cover_order: Vec<usize>,
    /// Usage per entry id.
    usage: Vec<usize>,
    /// Cover (entry ids) per transaction.
    covers: Vec<Vec<usize>>,
    /// Standard (singleton) code length per item, over the joint alphabet.
    st_code: Vec<f64>,
}

impl<'d> Krimp<'d> {
    fn new(data: &'d TwoViewDataset) -> Krimp<'d> {
        let vocab = data.vocab();
        let n_items = vocab.n_items();
        let rows: Vec<Bitmap> = (0..data.n_transactions())
            .map(|t| {
                Bitmap::from_indices(
                    n_items,
                    data.transaction_items(t).iter().map(|i| i as usize),
                )
            })
            .collect();
        let total_ones: usize = (0..n_items as ItemId).map(|i| data.support(i)).sum();
        let st_code: Vec<f64> = (0..n_items as ItemId)
            .map(|i| {
                let s = data.support(i);
                if s == 0 || total_ones == 0 {
                    f64::INFINITY
                } else {
                    -((s as f64) / total_ones as f64).log2()
                }
            })
            .collect();

        let mut k = Krimp {
            data,
            rows,
            items_of: Vec::new(),
            bitmap_of: Vec::new(),
            support_of: Vec::new(),
            cover_order: Vec::new(),
            usage: Vec::new(),
            covers: Vec::new(),
            st_code,
        };
        // Singletons for every occurring item.
        for i in 0..n_items as ItemId {
            if data.support(i) > 0 {
                k.add_entry(ItemSet::singleton(i));
            }
        }
        // Initial cover: every transaction covered by its singletons.
        k.covers = (0..k.rows.len()).map(|t| k.cover_transaction(t)).collect();
        k.recount_usages();
        k
    }

    /// Adds an entry to the arena and the cover order; returns its id.
    fn add_entry(&mut self, items: ItemSet) -> usize {
        let id = self.items_of.len();
        let bm = Bitmap::from_indices(
            self.data.vocab().n_items(),
            items.iter().map(|i| i as usize),
        );
        let support = self.data.support_count(&items);
        self.items_of.push(items);
        self.bitmap_of.push(bm);
        self.support_of.push(support);
        self.usage.push(0);
        let pos = self.cover_position(id);
        self.cover_order.insert(pos, id);
        id
    }

    /// Standard Cover Order position for entry `id`: length desc, support
    /// desc, lexicographic asc.
    fn cover_position(&self, id: usize) -> usize {
        let key = |e: usize| {
            (
                std::cmp::Reverse(self.items_of[e].len()),
                std::cmp::Reverse(self.support_of[e]),
            )
        };
        self.cover_order
            .binary_search_by(|&e| {
                key(e)
                    .cmp(&key(id))
                    .then_with(|| self.items_of[e].cmp(&self.items_of[id]))
            })
            .unwrap_err()
    }

    fn remove_entry_from_order(&mut self, id: usize) {
        let pos = self
            .cover_order
            .iter()
            .position(|&e| e == id)
            // lint: allow(panic_hygiene) — cover_order mirrors the live table; every live id is in it
            .expect("entry in cover order");
        self.cover_order.remove(pos);
    }

    /// Greedy cover of transaction `t` with the current table.
    fn cover_transaction(&self, t: usize) -> Vec<usize> {
        let mut remaining = self.rows[t].clone();
        let mut cover = Vec::new();
        if remaining.is_empty() {
            return cover;
        }
        for &e in &self.cover_order {
            if self.bitmap_of[e].is_subset(&remaining) {
                cover.push(e);
                remaining.subtract(&self.bitmap_of[e]);
                if remaining.is_empty() {
                    break;
                }
            }
        }
        debug_assert!(remaining.is_empty(), "singletons guarantee full cover");
        cover
    }

    fn recount_usages(&mut self) {
        self.usage.iter_mut().for_each(|u| *u = 0);
        for cover in &self.covers {
            for &e in cover {
                self.usage[e] += 1;
            }
        }
    }

    /// Total encoded size with the current usages:
    /// `L(D|CT) + L(CT|D)`, counting only entries in use.
    fn total_size(&self) -> f64 {
        let total_usage: usize = self.usage.iter().sum();
        if total_usage == 0 {
            return 0.0;
        }
        let tu = total_usage as f64;
        let mut l_data = 0.0;
        let mut l_ct = 0.0;
        for (e, &u) in self.usage.iter().enumerate() {
            if u == 0 {
                continue;
            }
            let code = -((u as f64) / tu).log2();
            l_data += u as f64 * code;
            let st: f64 = self.items_of[e]
                .iter()
                .map(|i| self.st_code[i as usize])
                .sum();
            l_ct += st + code;
        }
        l_data + l_ct
    }

    fn split_sizes(&self) -> (f64, f64) {
        let total_usage: usize = self.usage.iter().sum();
        let tu = total_usage as f64;
        let mut l_data = 0.0;
        let mut l_ct = 0.0;
        for (e, &u) in self.usage.iter().enumerate() {
            if u == 0 {
                continue;
            }
            let code = -((u as f64) / tu).log2();
            l_data += u as f64 * code;
            let st: f64 = self.items_of[e]
                .iter()
                .map(|i| self.st_code[i as usize])
                .sum();
            l_ct += st + code;
        }
        (l_data, l_ct)
    }

    /// Re-covers the transactions in `tids`, updating `covers` and usages.
    fn recover_transactions(&mut self, tids: &Tidset) {
        for t in tids.iter() {
            let new_cover = self.cover_transaction(t);
            for &e in &self.covers[t] {
                self.usage[e] -= 1;
            }
            for &e in &new_cover {
                self.usage[e] += 1;
            }
            self.covers[t] = new_cover;
        }
    }

    /// Attempts to add candidate `items`; keeps it only if total size
    /// shrinks. Returns whether it was accepted.
    fn try_candidate(&mut self, items: ItemSet, current_size: &mut f64, prune: bool) -> bool {
        let tids = self.data.support_set(&items);
        let id = self.add_entry(items);
        let saved_covers: Vec<(usize, Vec<usize>)> =
            tids.iter().map(|t| (t, self.covers[t].clone())).collect();
        self.recover_transactions(&tids);
        let new_size = self.total_size();
        if new_size < *current_size {
            *current_size = new_size;
            if prune {
                self.prune_unused(current_size);
            }
            true
        } else {
            // Roll back.
            for (t, cover) in saved_covers {
                for &e in &self.covers[t] {
                    self.usage[e] -= 1;
                }
                for &e in &cover {
                    self.usage[e] += 1;
                }
                self.covers[t] = cover;
            }
            self.remove_entry_from_order(id);
            // Arena keeps the dead entry (usage 0, not in cover order).
            false
        }
    }

    /// Post-acceptance pruning: repeatedly try removing the non-singleton
    /// in-use entry with the smallest usage; keep removals that shrink the
    /// total size.
    fn prune_unused(&mut self, current_size: &mut f64) {
        loop {
            // Candidates: non-singleton entries in cover order with usage
            // below their support (usage drop signals redundancy), smallest
            // usage first.
            let mut cands: Vec<usize> = self
                .cover_order
                .iter()
                .copied()
                .filter(|&e| self.items_of[e].len() > 1 && self.usage[e] > 0)
                .collect();
            cands.sort_by_key(|&e| self.usage[e]);
            let mut removed_any = false;
            for e in cands {
                if self.usage[e] == 0 {
                    continue;
                }
                // Transactions currently using e.
                let tids = Tidset::from_sorted(
                    self.rows.len(),
                    self.covers
                        .iter()
                        .enumerate()
                        .filter(|(_, cover)| cover.contains(&e))
                        .map(|(t, _)| t as u32)
                        .collect(),
                );
                let saved: Vec<(usize, Vec<usize>)> =
                    tids.iter().map(|t| (t, self.covers[t].clone())).collect();
                self.remove_entry_from_order(e);
                self.recover_transactions(&tids);
                let new_size = self.total_size();
                if new_size < *current_size {
                    *current_size = new_size;
                    removed_any = true;
                } else {
                    // Roll back the removal.
                    for (t, cover) in saved {
                        for &x in &self.covers[t] {
                            self.usage[x] -= 1;
                        }
                        for &x in &cover {
                            self.usage[x] += 1;
                        }
                        self.covers[t] = cover;
                    }
                    let pos = self.cover_position(e);
                    self.cover_order.insert(pos, e);
                }
            }
            if !removed_any {
                break;
            }
        }
    }
}

/// Fits KRIMP on the joint two-view database.
pub fn krimp(data: &TwoViewDataset, cfg: &KrimpConfig) -> KrimpModel {
    let mut miner_cfg = MinerConfig::builder().minsup(cfg.minsup).build();
    miner_cfg.max_itemsets = cfg.max_candidates;
    let mined = if cfg.closed_candidates {
        mine_closed(data, &miner_cfg)
    } else {
        mine_frequent(data, &miner_cfg)
    };
    // Standard Candidate Order: support desc, length desc, lexicographic.
    let mut candidates: Vec<(ItemSet, usize)> = mined
        .itemsets
        .into_iter()
        .filter(|f| f.items.len() >= 2)
        .map(|f| (f.items, f.support))
        .collect();
    candidates.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.0.len().cmp(&a.0.len()))
            .then(a.0.cmp(&b.0))
    });

    let mut k = Krimp::new(data);
    let l_baseline = k.total_size();
    let mut current = l_baseline;
    let n_candidates = candidates.len();
    for (items, _) in candidates {
        k.try_candidate(items, &mut current, cfg.prune);
    }

    let (l_data, l_ct) = k.split_sizes();
    let entries: Vec<CodeTableEntry> = k
        .cover_order
        .iter()
        .map(|&e| CodeTableEntry {
            items: k.items_of[e].clone(),
            support: k.support_of[e],
            usage: k.usage[e],
        })
        .filter(|e| e.usage > 0)
        .collect();
    KrimpModel {
        entries,
        l_total: l_data + l_ct,
        l_data,
        l_code_table: l_ct,
        l_baseline,
        n_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten transactions where {a,b,x} always co-occur.
    fn blocky() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        let mut txs = Vec::new();
        for i in 0..10 {
            if i < 6 {
                txs.push(vec![0, 1, 3]);
            } else if i < 8 {
                txs.push(vec![2, 4]);
            } else {
                txs.push(vec![0, 4]);
            }
        }
        TwoViewDataset::from_transactions(vocab, &txs)
    }

    #[test]
    fn covers_partition_transactions() {
        let d = blocky();
        let k = Krimp::new(&d);
        for (t, cover) in k.covers.iter().enumerate() {
            let mut acc = Bitmap::new(d.vocab().n_items());
            for &e in cover {
                assert!(k.bitmap_of[e].is_disjoint(&acc), "overlapping cover");
                acc.union_with(&k.bitmap_of[e]);
            }
            assert_eq!(acc, k.rows[t], "cover must reproduce transaction {t}");
        }
    }

    #[test]
    fn krimp_compresses_blocky_data() {
        let d = blocky();
        let model = krimp(&d, &KrimpConfig::new(1));
        assert!(model.l_total < model.l_baseline);
        assert!(model.compression_pct() < 100.0);
        // The dominant block {a,b,x} must be in the code table.
        assert!(
            model.patterns().any(|e| e.items.as_slice() == [0, 1, 3]),
            "entries: {:?}",
            model.entries
        );
    }

    #[test]
    fn usages_are_consistent_with_covers() {
        let d = blocky();
        let model = krimp(&d, &KrimpConfig::new(1));
        let total_usage: usize = model.entries.iter().map(|e| e.usage).sum();
        // Each transaction contributes at least one code (none is empty).
        assert!(total_usage >= d.n_transactions());
        for e in &model.entries {
            assert!(e.usage <= e.support, "{e:?}");
        }
    }

    #[test]
    fn translation_table_keeps_only_cross_view_patterns() {
        let d = blocky();
        let model = krimp(&d, &KrimpConfig::new(1));
        let table = model.to_translation_table(d.vocab());
        for rule in table.iter() {
            assert!(!rule.left.is_empty() && !rule.right.is_empty());
            assert_eq!(rule.direction, Direction::Both);
        }
        // {a,b,x} spans both views -> must yield {a,b} <-> {x}.
        assert!(table
            .iter()
            .any(|r| r.left.as_slice() == [0, 1] && r.right.as_slice() == [3]));
    }

    #[test]
    fn pruning_never_hurts_compression() {
        let d = blocky();
        let pruned = krimp(&d, &KrimpConfig::new(1));
        let unpruned = krimp(
            &d,
            &KrimpConfig {
                prune: false,
                ..KrimpConfig::new(1)
            },
        );
        assert!(pruned.l_total <= unpruned.l_total + 1e-9);
    }

    #[test]
    fn rejected_candidates_leave_state_intact() {
        let d = blocky();
        let mut k = Krimp::new(&d);
        let mut size = k.total_size();
        let before = size;
        // A candidate occurring once cannot pay for itself here.
        let accepted = k.try_candidate(ItemSet::from_items([0, 4]), &mut size, false);
        if !accepted {
            assert_eq!(size, before);
            let fresh = Krimp::new(&d);
            assert!((k.total_size() - fresh.total_size()).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let d = blocky();
        let a = krimp(&d, &KrimpConfig::new(1));
        let b = krimp(&d, &KrimpConfig::new(1));
        assert_eq!(a.entries.len(), b.entries.len());
        assert!((a.l_total - b.l_total).abs() < 1e-12);
    }
}
