//! Redescription mining à la ReReMi (Galbrun & Miettinen, SADM 2012),
//! restricted to monotone conjunctions — the configuration the paper uses
//! in its comparison (§6.3).
//!
//! A redescription is a pair of queries, one per view, satisfied by almost
//! the same transactions; quality is the Jaccard coefficient of the two
//! support sets. ReReMi grows redescriptions greedily from initial item
//! pairs with beam search, judging each candidate *individually* — exactly
//! the contrast to TRANSLATOR's global, non-redundant model that the paper
//! draws: the output is a set of high-accuracy bidirectional rules that may
//! overlap heavily and explain only part of the cross-view structure.

use std::collections::HashSet;

use twoview_core::{Direction, TranslationRule, TranslationTable};
use twoview_data::prelude::*;

/// Parameters of the redescription search.
#[derive(Clone, Debug)]
pub struct ReremiConfig {
    /// Minimum Jaccard of a reported redescription.
    pub min_jaccard: f64,
    /// Minimum absolute support of the intersection.
    pub min_support: usize,
    /// Number of initial singleton pairs to expand (best by Jaccard).
    pub n_initial_pairs: usize,
    /// Beam width during expansion.
    pub beam_width: usize,
    /// Maximum query length per side.
    pub max_side_len: usize,
    /// Maximum number of redescriptions returned.
    pub max_results: usize,
}

impl Default for ReremiConfig {
    fn default() -> Self {
        ReremiConfig {
            min_jaccard: 0.2,
            min_support: 3,
            n_initial_pairs: 100,
            beam_width: 4,
            max_side_len: 4,
            max_results: 100,
        }
    }
}

/// A mined redescription (monotone conjunctive queries on both sides).
#[derive(Clone, Debug)]
pub struct Redescription {
    /// Left-view query (conjunction of items).
    pub left: ItemSet,
    /// Right-view query.
    pub right: ItemSet,
    /// Jaccard coefficient of the two support sets.
    pub jaccard: f64,
    /// `|supp(left) ∩ supp(right)|`.
    pub support: usize,
}

/// Result wrapper.
#[derive(Clone, Debug)]
pub struct ReremiResult {
    /// Mined redescriptions, best Jaccard first.
    pub redescriptions: Vec<Redescription>,
}

impl ReremiResult {
    /// Converts to a translation table: redescriptions are, by definition,
    /// bidirectional rules (paper Table 3 protocol).
    pub fn to_translation_table(&self) -> TranslationTable {
        TranslationTable::from_rules(
            self.redescriptions
                .iter()
                .map(|r| TranslationRule::new(r.left.clone(), r.right.clone(), Direction::Both)),
        )
    }
}

#[derive(Clone)]
struct Candidate {
    left: ItemSet,
    right: ItemSet,
    tid_left: Tidset,
    tid_right: Tidset,
    jaccard: f64,
}

impl Candidate {
    fn support(&self) -> usize {
        self.tid_left.intersection_len(&self.tid_right)
    }
}

/// Mines redescriptions with per-pair beam search.
pub fn reremi_redescriptions(data: &TwoViewDataset, cfg: &ReremiConfig) -> ReremiResult {
    let vocab = data.vocab();

    // Rank all singleton pairs by Jaccard and take the best as seeds.
    let mut seeds: Vec<Candidate> = Vec::new();
    for a in vocab.items_on(Side::Left) {
        let ta = data.tidset(a);
        if ta.is_empty() {
            continue;
        }
        for b in vocab.items_on(Side::Right) {
            let tb = data.tidset(b);
            let inter = ta.intersection_len(tb);
            if inter < cfg.min_support {
                continue;
            }
            let j = inter as f64 / ta.union_len(tb) as f64;
            seeds.push(Candidate {
                left: ItemSet::singleton(a),
                right: ItemSet::singleton(b),
                tid_left: ta.clone(),
                tid_right: tb.clone(),
                jaccard: j,
            });
        }
    }
    seeds.sort_by(|x, y| {
        y.jaccard
            .total_cmp(&x.jaccard)
            .then((&x.left, &x.right).cmp(&(&y.left, &y.right)))
    });
    seeds.truncate(cfg.n_initial_pairs);

    // Expand each seed with beam search; collect all local optima.
    let mut found: Vec<Redescription> = Vec::new();
    let mut seen: HashSet<(ItemSet, ItemSet)> = HashSet::new();
    for seed in seeds {
        let best = beam_expand(data, cfg, seed);
        for cand in best {
            if cand.jaccard < cfg.min_jaccard || cand.support() < cfg.min_support {
                continue;
            }
            if seen.insert((cand.left.clone(), cand.right.clone())) {
                found.push(Redescription {
                    support: cand.support(),
                    left: cand.left,
                    right: cand.right,
                    jaccard: cand.jaccard,
                });
            }
        }
    }
    found.sort_by(|a, b| {
        b.jaccard
            .total_cmp(&a.jaccard)
            .then(b.support.cmp(&a.support))
            .then((&a.left, &a.right).cmp(&(&b.left, &b.right)))
    });
    found.truncate(cfg.max_results);
    ReremiResult {
        redescriptions: found,
    }
}

/// Beam search around one seed: alternately try extending either side with
/// one item; keep the `beam_width` best strict improvements; stop when no
/// candidate improves. Returns the final beam.
fn beam_expand(data: &TwoViewDataset, cfg: &ReremiConfig, seed: Candidate) -> Vec<Candidate> {
    let vocab = data.vocab();
    let mut beam = vec![seed];
    loop {
        let mut extensions: Vec<Candidate> = Vec::new();
        for cand in &beam {
            for side in Side::BOTH {
                let (own, own_tid) = match side {
                    Side::Left => (&cand.left, &cand.tid_left),
                    Side::Right => (&cand.right, &cand.tid_right),
                };
                if own.len() >= cfg.max_side_len {
                    continue;
                }
                for i in vocab.items_on(side) {
                    if own.contains(i) {
                        continue;
                    }
                    let new_tid = own_tid.and(data.tidset(i));
                    let (tl, tr) = match side {
                        Side::Left => (&new_tid, &cand.tid_right),
                        Side::Right => (&cand.tid_left, &new_tid),
                    };
                    let inter = tl.intersection_len(tr);
                    if inter < cfg.min_support {
                        continue;
                    }
                    let j = inter as f64 / tl.union_len(tr) as f64;
                    if j <= cand.jaccard {
                        continue; // monotone improvement only
                    }
                    let mut next = cand.clone();
                    match side {
                        Side::Left => {
                            next.left = next.left.with(i);
                            next.tid_left = new_tid;
                        }
                        Side::Right => {
                            next.right = next.right.with(i);
                            next.tid_right = new_tid;
                        }
                    }
                    next.jaccard = j;
                    extensions.push(next);
                }
            }
        }
        if extensions.is_empty() {
            return beam;
        }
        extensions.sort_by(|x, y| {
            y.jaccard
                .total_cmp(&x.jaccard)
                .then((&x.left, &x.right).cmp(&(&y.left, &y.right)))
        });
        extensions.dedup_by(|a, b| a.left == b.left && a.right == b.right);
        extensions.truncate(cfg.beam_width);
        beam = extensions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// {a,b} ⇔ {x,y} on half the transactions; c/z noise.
    fn structured() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        let mut txs = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                txs.push(vec![0, 1, 3, 4]);
            } else if i % 3 == 0 {
                txs.push(vec![2, 5]);
            } else {
                txs.push(vec![0, 5]);
            }
        }
        TwoViewDataset::from_transactions(vocab, &txs)
    }

    #[test]
    fn finds_high_jaccard_redescription() {
        let d = structured();
        let res = reremi_redescriptions(&d, &ReremiConfig::default());
        assert!(!res.redescriptions.is_empty());
        let top = &res.redescriptions[0];
        assert!(top.jaccard > 0.9, "top jaccard {}", top.jaccard);
        // The perfect redescription is {b} <-> {x} / {y} (b occurs only with
        // x and y): left must involve b, right x or y.
        assert!(top.left.contains(1));
    }

    #[test]
    fn jaccard_values_are_exact() {
        let d = structured();
        let res = reremi_redescriptions(&d, &ReremiConfig::default());
        for r in &res.redescriptions {
            let tl = d.support_set(&r.left);
            let tr = d.support_set(&r.right);
            assert!((r.jaccard - tl.jaccard(&tr)).abs() < 1e-12);
            assert_eq!(r.support, tl.intersection_len(&tr));
        }
    }

    #[test]
    fn thresholds_filter() {
        let d = structured();
        let strict = reremi_redescriptions(
            &d,
            &ReremiConfig {
                min_jaccard: 0.99,
                ..ReremiConfig::default()
            },
        );
        for r in &strict.redescriptions {
            assert!(r.jaccard >= 0.99);
        }
        let loose = reremi_redescriptions(&d, &ReremiConfig::default());
        assert!(loose.redescriptions.len() >= strict.redescriptions.len());
    }

    #[test]
    fn no_duplicates_and_sorted() {
        let d = structured();
        let res = reremi_redescriptions(&d, &ReremiConfig::default());
        let mut seen = HashSet::new();
        let mut prev = f64::INFINITY;
        for r in &res.redescriptions {
            assert!(seen.insert((r.left.clone(), r.right.clone())));
            assert!(r.jaccard <= prev + 1e-12);
            prev = r.jaccard;
        }
    }

    #[test]
    fn conversion_yields_bidirectional_rules_only() {
        let d = structured();
        let table = reremi_redescriptions(&d, &ReremiConfig::default()).to_translation_table();
        assert!(table.iter().all(|r| r.direction == Direction::Both));
    }

    #[test]
    fn max_results_cap() {
        let d = structured();
        let res = reremi_redescriptions(
            &d,
            &ReremiConfig {
                max_results: 2,
                min_jaccard: 0.0,
                ..ReremiConfig::default()
            },
        );
        assert!(res.redescriptions.len() <= 2);
    }
}
