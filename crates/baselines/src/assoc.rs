//! Classic cross-view association rule mining (Agrawal et al., SIGMOD'93),
//! restricted to rules spanning the two views.
//!
//! The paper uses this baseline to demonstrate the *pattern explosion*: with
//! support/confidence thresholds tuned to the values TRANSLATOR's rules
//! attain, the miner returns thousands-to-hundreds-of-thousands of rules
//! (§6.3, "up to 153,609 for House").

use twoview_data::prelude::*;
use twoview_mining::{mine_frequent_twoview, MinerConfig};

/// A mined association rule `antecedent → consequent` across the views.
#[derive(Clone, Debug, PartialEq)]
pub struct AssociationRule {
    /// Antecedent itemset (one view).
    pub antecedent: ItemSet,
    /// Consequent itemset (the other view).
    pub consequent: ItemSet,
    /// Translation direction: `true` if the antecedent is the left view.
    pub left_to_right: bool,
    /// `|supp(antecedent ∪ consequent)|`.
    pub support: usize,
    /// `supp(A ∪ C) / supp(A)`.
    pub confidence: f64,
}

/// Mining parameters.
#[derive(Clone, Debug)]
pub struct AssocConfig {
    /// Minimum absolute support of the joint itemset.
    pub minsup: usize,
    /// Minimum confidence of the emitted direction.
    pub minconf: f64,
    /// Safety valve on the number of frequent itemsets enumerated.
    pub max_itemsets: usize,
    /// Safety valve on the number of rules returned (the count of *all*
    /// qualifying rules is still reported).
    pub max_rules: usize,
}

impl AssocConfig {
    /// Rules with the given thresholds and generous caps.
    pub fn new(minsup: usize, minconf: f64) -> Self {
        AssocConfig {
            minsup: minsup.max(1),
            minconf,
            max_itemsets: 2_000_000,
            max_rules: 1_000_000,
        }
    }
}

/// Result of a mining run.
#[derive(Clone, Debug)]
pub struct AssocResult {
    /// Up to `max_rules` mined rules.
    pub rules: Vec<AssociationRule>,
    /// Total number of qualifying rules (may exceed `rules.len()`).
    pub total_rules: usize,
    /// Whether itemset enumeration was truncated.
    pub truncated: bool,
}

/// Mines all cross-view association rules of either direction.
///
/// For every frequent two-view itemset `Z = X ∪ Y` the two candidate rules
/// `X → Y` and `Y → X` are checked against `minconf`.
pub fn mine_association_rules(data: &TwoViewDataset, cfg: &AssocConfig) -> AssocResult {
    let mut miner_cfg = MinerConfig::builder().minsup(cfg.minsup).build();
    miner_cfg.max_itemsets = cfg.max_itemsets;
    let mined = mine_frequent_twoview(data, &miner_cfg);

    let mut rules = Vec::new();
    let mut total = 0usize;
    for cand in &mined.candidates {
        let sx = data.support_count(&cand.left);
        let sy = data.support_count(&cand.right);
        let sxy = cand.support;
        let fwd_conf = sxy as f64 / sx as f64;
        let bwd_conf = sxy as f64 / sy as f64;
        if fwd_conf >= cfg.minconf {
            total += 1;
            if rules.len() < cfg.max_rules {
                rules.push(AssociationRule {
                    antecedent: cand.left.clone(),
                    consequent: cand.right.clone(),
                    left_to_right: true,
                    support: sxy,
                    confidence: fwd_conf,
                });
            }
        }
        if bwd_conf >= cfg.minconf {
            total += 1;
            if rules.len() < cfg.max_rules {
                rules.push(AssociationRule {
                    antecedent: cand.right.clone(),
                    consequent: cand.left.clone(),
                    left_to_right: false,
                    support: sxy,
                    confidence: bwd_conf,
                });
            }
        }
    }
    AssocResult {
        rules,
        total_rules: total,
        truncated: mined.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2],
                vec![0, 1, 2, 3],
                vec![1, 3],
                vec![0],
            ],
        )
    }

    #[test]
    fn rules_meet_thresholds_and_span_views() {
        let d = toy();
        let res = mine_association_rules(&d, &AssocConfig::new(2, 0.7));
        assert!(!res.rules.is_empty());
        for r in &res.rules {
            assert!(r.confidence >= 0.7);
            assert!(r.support >= 2);
            let sides: Vec<Side> = r.antecedent.iter().map(|i| d.vocab().side_of(i)).collect();
            assert!(
                sides.windows(2).all(|w| w[0] == w[1]),
                "antecedent single-view"
            );
        }
    }

    #[test]
    fn both_directions_can_fire() {
        let d = toy();
        let res = mine_association_rules(&d, &AssocConfig::new(1, 0.9));
        // {a}→{x} has conf 4/5 < 0.9; {x}→{a} has conf 4/4 = 1.0.
        let a = ItemSet::singleton(0);
        let x = ItemSet::singleton(2);
        let fwd = res
            .rules
            .iter()
            .any(|r| r.left_to_right && r.antecedent == a && r.consequent == x);
        let bwd = res
            .rules
            .iter()
            .any(|r| !r.left_to_right && r.antecedent == x && r.consequent == a);
        assert!(!fwd);
        assert!(bwd);
    }

    #[test]
    fn pattern_explosion_with_loose_thresholds() {
        // Low thresholds multiply the rule count — the paper's motivation
        // for model-based selection.
        let d = toy();
        let strict = mine_association_rules(&d, &AssocConfig::new(3, 0.9));
        let loose = mine_association_rules(&d, &AssocConfig::new(1, 0.1));
        assert!(loose.total_rules > strict.total_rules);
    }

    #[test]
    fn rule_cap_respected_but_total_counted() {
        let d = toy();
        let mut cfg = AssocConfig::new(1, 0.0);
        cfg.max_rules = 2;
        let res = mine_association_rules(&d, &cfg);
        assert_eq!(res.rules.len(), 2);
        assert!(res.total_rules > 2);
    }

    #[test]
    fn confidences_are_exact() {
        let d = toy();
        let res = mine_association_rules(&d, &AssocConfig::new(1, 0.0));
        for r in &res.rules {
            let sa = d.support_count(&r.antecedent);
            let sac = d.support_count(&r.antecedent.union(&r.consequent));
            assert!((r.confidence - sac as f64 / sa as f64).abs() < 1e-12);
            assert_eq!(r.support, sac);
        }
    }
}
