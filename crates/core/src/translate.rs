//! The TRANSLATE scheme (paper Algorithm 1) and lossless reconstruction.
//!
//! `TRANSLATE` from a side unions the consequents of every rule whose
//! antecedent occurs in the source view of the transaction. XOR-ing the
//! correction row then reconstructs the target view exactly:
//! `t_R = TRANSLATE_{L→R}(t_L, T) ⊕ c_t^R`.

use twoview_data::prelude::*;

use crate::cover::CoverState;
use crate::rule::{Direction, TranslationRule};
use crate::table::TranslationTable;

/// Translates transaction `t` of `data` *from* `from` to the opposite view.
///
/// Returns a bitmap over the *local* indices of the target side.
pub fn translate_transaction(
    data: &TwoViewDataset,
    table: &TranslationTable,
    from: Side,
    t: usize,
) -> Bitmap {
    let vocab = data.vocab();
    let target = from.opposite();
    let source_row = data.row(from, t);
    let mut out = Bitmap::new(vocab.n_on(target));
    for rule in table.rules_from(from) {
        let antecedent = rule
            .antecedent(from)
            // lint: allow(panic_hygiene) — rules_from(from) yields only rules whose antecedent lives in `from`
            .expect("rules_from yields only firing rules");
        let fires = antecedent
            .iter()
            .all(|i| source_row.contains(vocab.local_index(i)));
        if fires {
            for i in rule.consequent(from).iter() {
                out.insert(vocab.local_index(i));
            }
        }
    }
    out
}

/// Translates the entire `from` view: one bitmap per transaction.
pub fn translate_view(data: &TwoViewDataset, table: &TranslationTable, from: Side) -> Vec<Bitmap> {
    (0..data.n_transactions())
        .map(|t| translate_transaction(data, table, from, t))
        .collect()
}

/// A cover state restricted to the `from → target` halves of `table`'s
/// rules — exactly what TRANSLATE predicts from `from`, so `U`/`E` are the
/// per-direction misses/false-positives (shared with
/// [`crate::predict::prediction_quality`]).
pub(crate) fn directional_state<'d>(
    data: &'d TwoViewDataset,
    table: &TranslationTable,
    from: Side,
) -> CoverState<'d> {
    let one_way = match from {
        Side::Left => Direction::Forward,
        Side::Right => Direction::Backward,
    };
    let mut state = CoverState::new(data);
    for rule in table.iter() {
        if rule.direction.fires_from(from) {
            state.apply_rule(TranslationRule::new(
                rule.left.clone(),
                rule.right.clone(),
                one_way,
            ));
        }
    }
    state
}

/// All correction rows `c_t = t_target ⊕ TRANSLATE(t_source, T)` of one
/// direction at once, indexed by transaction.
///
/// Computed through the columnar batch transposition
/// ([`CoverState::correction_rows_batch`]) over a direction-restricted
/// cover state — `C_t = U_t ∪ E_t` equals the XOR correction exactly,
/// because `predicted = (actual \ U_t) ∪ E_t` with the union disjoint —
/// instead of firing every rule per transaction. This replaced the old
/// per-row `correction_row` helper: every consumer needs whole-view
/// corrections, and one pass over the item columns beats `|D|` per-row
/// reconstructions.
pub fn correction_rows(data: &TwoViewDataset, table: &TranslationTable, from: Side) -> Vec<Bitmap> {
    directional_state(data, table, from).correction_rows_batch(from.opposite())
}

/// Applies a correction row to a translated row (XOR), reconstructing the
/// original target view.
pub fn apply_correction(translated: &Bitmap, correction: &Bitmap) -> Bitmap {
    translated.xor(correction)
}

/// Verifies the lossless-translation property for every transaction and
/// both directions. Returns the first violating `(side, transaction)`;
/// `None` means the property holds (it always should — this is the paper's
/// central model invariant, exercised heavily in tests).
pub fn check_lossless(data: &TwoViewDataset, table: &TranslationTable) -> Option<(Side, usize)> {
    for from in Side::BOTH {
        let corrections = correction_rows(data, table, from);
        for (t, correction) in corrections.iter().enumerate() {
            let translated = translate_transaction(data, table, from, t);
            if &apply_correction(&translated, correction) != data.row(from.opposite(), t) {
                return Some((from, t));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Direction, TranslationRule};

    /// The toy dataset of the paper's Fig. 1, shape-wise: rules fire on
    /// subsets of transactions and corrections fix both error kinds.
    fn toy() -> (TwoViewDataset, TranslationTable) {
        let vocab = Vocabulary::new(["A", "B", "C"], ["L", "U", "S", "P", "Q"]);
        let data = TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],    // A B | L U
                vec![2, 5, 6, 7],    // C   | S P Q
                vec![2, 5],          // C   | S
                vec![0, 1, 2, 3, 4], // A B C | L U
                vec![0, 1, 4],       // A B | U
            ],
        );
        let table = TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::from_items([0, 1]), // {A,B}
                ItemSet::from_items([3, 4]), // {L,U}
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::from_items([2]), // {C}
                ItemSet::from_items([5]), // {S}
                Direction::Forward,
            ),
        ]);
        (data, table)
    }

    #[test]
    fn translate_unions_firing_consequents() {
        let (data, table) = toy();
        // t0 contains {A,B} -> predicts {L,U}
        let t0 = translate_transaction(&data, &table, Side::Left, 0);
        assert_eq!(t0.to_vec(), vec![0, 1]); // local ids of L,U

        // t1 contains {C} -> predicts {S}
        let t1 = translate_transaction(&data, &table, Side::Left, 1);
        assert_eq!(t1.to_vec(), vec![2]);
        // t3 contains both antecedents -> union
        let t3 = translate_transaction(&data, &table, Side::Left, 3);
        assert_eq!(t3.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn unidirectional_rules_do_not_fire_backward() {
        let (data, table) = toy();
        // Right-to-left: only the bidirectional rule fires. t1 has S but the
        // C-rule is Forward-only, so nothing is predicted.
        let t1 = translate_transaction(&data, &table, Side::Right, 1);
        assert!(t1.is_empty());
        // t0 has {L,U} -> the <-> rule predicts {A,B}.
        let t0 = translate_transaction(&data, &table, Side::Right, 0);
        assert_eq!(t0.to_vec(), vec![0, 1]);
    }

    #[test]
    fn corrections_fix_both_error_kinds() {
        let (data, table) = toy();
        let corrections = correction_rows(&data, &table, Side::Left);
        // t4: {A,B} fires -> predicts {L,U}, but t4 has only U.
        // Correction must remove the erroneous L.
        assert_eq!(corrections[4].to_vec(), vec![0]); // L

        // t2: {C} fires -> predicts {S}; t2R = {S}: perfect, no correction.
        assert!(corrections[2].is_empty());
        // t1: prediction {S}, actual {S,P,Q}: correction adds P,Q.
        assert_eq!(corrections[1].to_vec(), vec![3, 4]);
    }

    #[test]
    fn batched_corrections_equal_literal_xor() {
        // The batched columnar path must equal t_target ⊕ TRANSLATE(t_src)
        // for every transaction and both directions.
        let (data, table) = toy();
        for from in Side::BOTH {
            let corrections = correction_rows(&data, &table, from);
            assert_eq!(corrections.len(), data.n_transactions());
            for (t, c) in corrections.iter().enumerate() {
                let mut literal = translate_transaction(&data, &table, from, t);
                literal.xor_with(data.row(from.opposite(), t));
                assert_eq!(c, &literal, "from {from}, t{t}");
            }
        }
    }

    #[test]
    fn lossless_everywhere() {
        let (data, table) = toy();
        assert_eq!(check_lossless(&data, &table), None);
    }

    #[test]
    fn lossless_with_empty_table() {
        let (data, _) = toy();
        assert_eq!(check_lossless(&data, &TranslationTable::new()), None);
    }

    #[test]
    fn rule_order_is_irrelevant() {
        let (data, table) = toy();
        let reversed = TranslationTable::from_rules(table.iter().rev().cloned());
        for t in 0..data.n_transactions() {
            assert_eq!(
                translate_transaction(&data, &table, Side::Left, t),
                translate_transaction(&data, &reversed, Side::Left, t)
            );
        }
    }
}
