//! Shared admissible bounds on rule gains (paper §5.2).
//!
//! All three TRANSLATOR algorithms prune candidate evaluation with the same
//! two bounds, both of which dominate every directional gain of a pair
//! `(X, Y)`:
//!
//! * **`qub(X ◇ Y)`** — the *quick* bound
//!   `|supp(X)|·L(Y) + |supp(Y)|·L(X) − L(X↔Y)`. It depends only on
//!   supports and code lengths, never on the cover state, so a candidate
//!   with `qub ≤ 0` can be dropped permanently; a candidate with
//!   `qub ≤ best` can skip exact gain evaluation at the current node. Not
//!   valid for extensions of `(X, Y)`.
//! * **`rub(X ◇ Y)`** — the *rule* bound
//!   `Σ_{X ⊆ t_L} tub(t_R) + Σ_{Y ⊆ t_R} tub(t_L) − L(X↔Y)`, where
//!   `tub(t)` is the encoded size of the transaction's still-uncovered
//!   items ([`CoverState::uncovered_weight`]). It is monotonically
//!   non-increasing under itemset extension, which makes it the subtree
//!   pruning bound of TRANSLATOR-EXACT; SELECT uses it per round to skip
//!   exact re-evaluation of dirty candidates that provably cannot enter
//!   the top-k.
//!
//! Domination proof sketch: a directional gain can credit at most the
//! uncovered weight of each supporting target row (that is `rub`'s sum),
//! and each such row contributes at most `L(Y)` (that is `qub`'s product);
//! subtracting the cheapest rule encoding `L(X↔Y)` keeps both sums upper
//! bounds for all three directions. The `proptests_bounds` suite checks
//! domination on random data; undershooting either bound would silently
//! break the exactness of the search.
//!
//! ## Incremental maintenance
//!
//! `rub`'s two `Σ tub` sums admit cheap incremental upkeep because cover
//! updates only ever *shrink* tub mass: applying a rule decrements
//! `uncovered_weight` for the freshly covered `(side, transaction)` cells
//! and never increases it. SELECT and EXACT therefore keep per-candidate
//! sums current by streaming those decrements through a
//! transaction→candidate inverted index
//! ([`SelectConfig::incremental_rub`](crate::select::SelectConfig::incremental_rub),
//! [`ExactConfig::incremental_rub`](crate::exact::ExactConfig::incremental_rub))
//! instead of re-walking supports, turning the bound into an O(1)
//! per-candidate check via [`rub_parts`]. The maintained sums carry float
//! drift from repeated subtraction, so prune decisions add a relative
//! slack (`1e-9 · (1 + |Σ_fwd| + |Σ_bwd|)`) that keeps the bound
//! admissible — the true `rub` never exceeds the slackened maintained
//! value, and both algorithms stay bit-identical to full recomputation.

use twoview_data::prelude::*;

use crate::cover::CoverState;
use crate::encoding::CodeLengths;

/// `qub` from precomputed parts: support counts and itemset code lengths.
///
/// `supp_x·len_y + supp_y·len_x − (len_x + len_y + 1)`; the trailing `+ 1`
/// is the bidirectional marker, the cheapest of the three rule encodings.
#[inline]
pub fn qub_parts(supp_x: f64, supp_y: f64, len_x: f64, len_y: f64) -> f64 {
    supp_x * len_y + supp_y * len_x - (len_x + len_y + 1.0)
}

/// `qub(X ◇ Y)` computed from a dataset and its code lengths.
pub fn qub(codes: &CodeLengths, data: &TwoViewDataset, left: &ItemSet, right: &ItemSet) -> f64 {
    qub_parts(
        data.support_count(left) as f64,
        data.support_count(right) as f64,
        codes.itemset(left),
        codes.itemset(right),
    )
}

/// `rub` from precomputed parts: the two `tub` sums over the supports and
/// the itemset code lengths.
#[inline]
pub fn rub_parts(sum_fwd: f64, sum_bwd: f64, len_x: f64, len_y: f64) -> f64 {
    sum_fwd + sum_bwd - (len_x + len_y + 1.0)
}

/// `rub(X ◇ Y)` against the current cover state, given the antecedent
/// tidsets: two weighted popcounts over the `tub` columns.
pub fn rub(
    state: &CoverState<'_>,
    left: &ItemSet,
    right: &ItemSet,
    left_tids: &Tidset,
    right_tids: &Tidset,
) -> f64 {
    let sum_fwd = left_tids.weighted_len(state.uncovered_weights(Side::Right));
    let sum_bwd = right_tids.weighted_len(state.uncovered_weights(Side::Left));
    rub_parts(
        sum_fwd,
        sum_bwd,
        state.codes().itemset(left),
        state.codes().itemset(right),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Direction, TranslationRule};

    fn structured() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4, 5],
                vec![0, 1, 2, 3, 4],
                vec![2, 5],
                vec![0, 5],
            ],
        )
    }

    /// Every occurring single/pair combination: qub and rub dominate all
    /// three directional gains, at the empty model and after a rule.
    #[test]
    fn bounds_dominate_gains() {
        let d = structured();
        let mut state = CoverState::new(&d);
        for round in 0..2 {
            let pairs = [
                (ItemSet::from_items([0, 1]), ItemSet::from_items([3, 4])),
                (ItemSet::from_items([0]), ItemSet::from_items([3])),
                (ItemSet::from_items([2]), ItemSet::from_items([5])),
            ];
            for (left, right) in &pairs {
                let lt = d.support_set(left);
                let rt = d.support_set(right);
                let gains = state.pair_gains(left, right, &lt, &rt);
                let q = qub(state.codes(), &d, left, right);
                let r = rub(&state, left, right, &lt, &rt);
                for g in gains {
                    assert!(q + 1e-9 >= g, "round {round}: qub {q} < gain {g}");
                    assert!(r + 1e-9 >= g, "round {round}: rub {r} < gain {g}");
                }
            }
            state.apply_rule(TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::from_items([3, 4]),
                Direction::Both,
            ));
        }
    }

    /// `rub` shrinks as rules cover the data (tub mass only decreases),
    /// while `qub` is state-independent.
    #[test]
    fn rub_is_monotone_under_coverage() {
        let d = structured();
        let mut state = CoverState::new(&d);
        let left = ItemSet::from_items([0, 1]);
        let right = ItemSet::from_items([3, 4]);
        let lt = d.support_set(&left);
        let rt = d.support_set(&right);
        let before = rub(&state, &left, &right, &lt, &rt);
        let q_before = qub(state.codes(), &d, &left, &right);
        state.apply_rule(TranslationRule::new(
            left.clone(),
            right.clone(),
            Direction::Both,
        ));
        let after = rub(&state, &left, &right, &lt, &rt);
        let q_after = qub(state.codes(), &d, &left, &right);
        assert!(after < before);
        assert_eq!(q_before, q_after);
    }

    #[test]
    fn parts_match_full_computation() {
        let d = structured();
        let state = CoverState::new(&d);
        let left = ItemSet::from_items([0]);
        let right = ItemSet::from_items([3, 4]);
        let lt = d.support_set(&left);
        let rt = d.support_set(&right);
        let len_l = state.codes().itemset(&left);
        let len_r = state.codes().itemset(&right);
        let q = qub_parts(lt.len() as f64, rt.len() as f64, len_l, len_r);
        assert!((q - qub(state.codes(), &d, &left, &right)).abs() < 1e-12);
        let sum_fwd = lt.weighted_len(state.uncovered_weights(Side::Right));
        let sum_bwd = rt.weighted_len(state.uncovered_weights(Side::Left));
        let r = rub_parts(sum_fwd, sum_bwd, len_l, len_r);
        assert!((r - rub(&state, &left, &right, &lt, &rt)).abs() < 1e-12);
    }
}
