//! MDL encoding: per-item code lengths and encoded sizes (paper §4.1).
//!
//! Every item is assigned a Shannon-optimal code for its empirical
//! probability in its own view: `L(I) = -log2(P(I | D_side))`, where the
//! probability is the item's share of its side's total item occurrences,
//! `P(I | D_L) = supp(I) / Σ_{J ∈ I_L} supp(J)` — the standard singleton
//! distribution also used by KRIMP's standard code table. (The paper's
//! formula text divides by `|D|`, but its reported `L(D, ∅)` values — e.g.
//! House = 31,625 bits, Emotions = 375,288 bits — are only attainable with
//! occurrence-share normalisation, which we therefore implement; see
//! EXPERIMENTS.md for the cross-check.) Itemsets, rules, translation tables
//! and correction tables are all encoded with these per-item codes; a
//! direction marker costs 1 bit (`↔`) or 2 bits (`→`/`←`). The three
//! additive constants the paper identifies (the code table itself, the
//! correction-table frameworks, the translation-table framework) are
//! identical for all models over a fixed dataset and are omitted, exactly
//! as in the paper.

use twoview_data::prelude::*;

use crate::rule::TranslationRule;
use crate::table::TranslationTable;

/// Per-item Shannon code lengths for one dataset.
///
/// Lengths are precomputed at construction and addressable both by global
/// item id and by `(side, local index)` — the latter is the hot path in
/// cover-state updates.
#[derive(Clone, Debug)]
pub struct CodeLengths {
    by_global: Vec<f64>,
    by_side: [Vec<f64>; 2],
    n: usize,
}

impl CodeLengths {
    /// Computes code lengths from the empirical item frequencies of `data`.
    ///
    /// Items that never occur get an infinite code length; they cannot
    /// appear in any occurring rule or correction, so the infinity never
    /// propagates into a total.
    pub fn new(data: &TwoViewDataset) -> CodeLengths {
        let n = data.n_transactions();
        let vocab = data.vocab();
        let side_ones = [data.ones(Side::Left) as f64, data.ones(Side::Right) as f64];
        let by_global: Vec<f64> = (0..vocab.n_items() as ItemId)
            .map(|i| {
                let supp = data.support(i);
                let total = side_ones[vocab.side_of(i) as usize];
                if supp == 0 || total == 0.0 {
                    f64::INFINITY
                } else {
                    -(supp as f64 / total).log2()
                }
            })
            .collect();
        let collect_side = |side: Side| -> Vec<f64> {
            vocab
                .items_on(side)
                .map(|i| by_global[i as usize])
                .collect()
        };
        CodeLengths {
            by_side: [collect_side(Side::Left), collect_side(Side::Right)],
            by_global,
            n,
        }
    }

    /// `|D|` at construction time.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.n
    }

    /// Code length of a global item.
    #[inline]
    pub fn item(&self, item: ItemId) -> f64 {
        self.by_global[item as usize]
    }

    /// Code length of the `local`-th item of `side`.
    #[inline]
    pub fn local(&self, side: Side, local: usize) -> f64 {
        self.by_side[side as usize][local]
    }

    /// The per-side code length table (indexed by local id).
    #[inline]
    pub fn side_table(&self, side: Side) -> &[f64] {
        &self.by_side[side as usize]
    }

    /// `L(X | D)`: sum of item code lengths.
    pub fn itemset(&self, items: &ItemSet) -> f64 {
        items.iter().map(|i| self.item(i)).sum()
    }

    /// `L(X ◇ Y) = L(X | D_L) + L(◇) + L(Y | D_R)`.
    pub fn rule(&self, rule: &TranslationRule) -> f64 {
        self.itemset(&rule.left) + rule.direction.encoded_length() + self.itemset(&rule.right)
    }

    /// `L(T)`: sum of rule lengths.
    pub fn table(&self, table: &TranslationTable) -> f64 {
        table.iter().map(|r| self.rule(r)).sum()
    }

    /// `L(D, ∅)`: the uncompressed size — both correction tables equal the
    /// data itself when the translation table is empty.
    ///
    /// Items that never occur are skipped: they have an infinite code
    /// length but zero occurrences (`0 · ∞` would otherwise poison the sum).
    pub fn empty_model(&self, data: &TwoViewDataset) -> f64 {
        (0..data.vocab().n_items() as ItemId)
            .filter(|&i| data.support(i) > 0)
            .map(|i| data.support(i) as f64 * self.item(i))
            .sum()
    }
}

/// Measures the paper's §4.1 design-choice claim: correction tables are
/// encoded with the *global* empirical code lengths rather than codes
/// optimal for the correction tables' own distribution, because (1) tables
/// are small, (2) compression should stem from rules only, (3) it enables
/// the exact search. The paper asserts that "using the optimal encoding
/// would hardly change the results in practice" — this function computes
/// the correction tables' encoded size under correction-optimal codes so
/// the claim can be checked empirically (see the `ablation` bench and
/// EXPERIMENTS.md).
///
/// Returns `(global_bits, optimal_bits)` for the combined `C_L`/`C_R`
/// content of `state`; `optimal_bits ≤ global_bits` always holds.
pub fn correction_encoding_gap(state: &crate::cover::CoverState<'_>) -> (f64, f64) {
    use twoview_data::Side;
    let data = state.data();
    let vocab = data.vocab();
    let mut global_bits = 0.0;
    let mut optimal_bits = 0.0;
    for side in Side::BOTH {
        // Per-item occurrences in C_side, read off the columnar state in
        // three popcounts per item: |C[l]| = |U[l]| + |E[l]| with
        // |U[l]| = |supp(l)| − |covered[l]| (covered ⊆ supp, U ∩ E = ∅).
        let n_local = vocab.n_on(side);
        let counts: Vec<usize> = (0..n_local)
            .map(|l| {
                data.column(side, l).len() - state.covered_tids(side, l).len()
                    + state.error_tids(side, l).len()
            })
            .collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            continue;
        }
        for (l, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            global_bits += c as f64 * state.codes().local(side, l);
            optimal_bits += c as f64 * -((c as f64) / total as f64).log2();
        }
    }
    (global_bits, optimal_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Direction;

    fn toy() -> TwoViewDataset {
        // 4 transactions; supports: a=2, b=4, c=0 | x=1, y=2
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[vec![0, 1, 3], vec![1, 4], vec![0, 1, 4], vec![1]],
        )
    }

    /// Occurrence totals of the toy data: left = 6 ones, right = 3 ones.
    fn bits(supp: f64, total: f64) -> f64 {
        -(supp / total).log2()
    }

    #[test]
    fn item_lengths_follow_occurrence_shares() {
        let d = toy();
        let c = CodeLengths::new(&d);
        assert!((c.item(0) - bits(2.0, 6.0)).abs() < 1e-12); // a
        assert!((c.item(1) - bits(4.0, 6.0)).abs() < 1e-12); // b
        assert!(c.item(2).is_infinite()); // c never occurs
        assert!((c.item(3) - bits(1.0, 3.0)).abs() < 1e-12); // x
        assert!((c.item(4) - bits(2.0, 3.0)).abs() < 1e-12); // y
    }

    #[test]
    fn local_indexing_matches_global() {
        let d = toy();
        let c = CodeLengths::new(&d);
        assert_eq!(c.item(3), c.local(Side::Right, 0));
        assert_eq!(c.item(4), c.local(Side::Right, 1));
        assert_eq!(c.item(0), c.local(Side::Left, 0));
        assert_eq!(c.side_table(Side::Right).len(), 2);
    }

    #[test]
    fn itemset_and_rule_lengths() {
        let d = toy();
        let c = CodeLengths::new(&d);
        let x = ItemSet::from_items([0, 1]);
        let y = ItemSet::from_items([3]);
        let lx = bits(2.0, 6.0) + bits(4.0, 6.0);
        let ly = bits(1.0, 3.0);
        assert!((c.itemset(&x) - lx).abs() < 1e-12);
        let uni = TranslationRule::new(x.clone(), y.clone(), Direction::Forward);
        let bi = TranslationRule::new(x, y, Direction::Both);
        assert!((c.rule(&uni) - (lx + 2.0 + ly)).abs() < 1e-12);
        assert!((c.rule(&bi) - (lx + 1.0 + ly)).abs() < 1e-12);
    }

    #[test]
    fn empty_model_is_sum_over_ones() {
        let d = toy();
        let c = CodeLengths::new(&d);
        let expect = 2.0 * bits(2.0, 6.0)
            + 4.0 * bits(4.0, 6.0)
            + 1.0 * bits(1.0, 3.0)
            + 2.0 * bits(2.0, 3.0);
        assert!((c.empty_model(&d) - expect).abs() < 1e-12);
    }

    #[test]
    fn correction_gap_bounds_hold() {
        let d = toy();
        let state = crate::cover::CoverState::new(&d);
        let (global, optimal) = correction_encoding_gap(&state);
        // With the empty table, corrections are the data; the global code
        // IS its optimal occurrence-share code, so the two coincide.
        assert!(optimal <= global + 1e-9);
        assert!((global - optimal).abs() < 1e-9);
        // After a rule, the correction distribution deviates from the
        // global one and the optimal encoding can only be at most as large.
        let mut state = crate::cover::CoverState::new(&d);
        state.apply_rule(TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([3]),
            Direction::Both,
        ));
        let (global, optimal) = correction_encoding_gap(&state);
        assert!(optimal <= global + 1e-9);
    }

    #[test]
    fn table_length_sums_rules() {
        let d = toy();
        let c = CodeLengths::new(&d);
        let mut t = TranslationTable::new();
        let r1 = TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([3]),
            Direction::Both,
        );
        let r2 = TranslationRule::new(
            ItemSet::from_items([1]),
            ItemSet::from_items([4]),
            Direction::Forward,
        );
        t.push(r1.clone());
        t.push(r2.clone());
        assert!((c.table(&t) - (c.rule(&r1) + c.rule(&r2))).abs() < 1e-12);
    }
}
