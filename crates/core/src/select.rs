//! TRANSLATOR-SELECT(k) (paper Algorithm 3).
//!
//! Instead of searching the full pattern space every iteration, SELECT
//! scores a *fixed* candidate set — closed frequent two-view itemsets — and
//! repeatedly adds the top-k rules (three candidate rules per itemset, one
//! per direction). Rules whose itemsets overlap a rule already added in the
//! same iteration are discarded, because their gain may have decreased; for
//! *disjoint* rules the gain is provably unchanged, which also yields the
//! exact gain-cache used here: a candidate's cached gains stay valid until
//! a rule touching one of its items is applied.

use twoview_data::prelude::*;
use twoview_mining::{mine_closed_twoview, mine_frequent_twoview, MinerConfig, TwoViewCandidate};

use crate::cover::CoverState;
use crate::model::{score_of, TraceStep, TranslatorModel};
use crate::rule::{Direction, TranslationRule};

/// Configuration for TRANSLATOR-SELECT.
#[derive(Clone, Debug)]
pub struct SelectConfig {
    /// Number of rules selected per iteration (`k` in the paper; `k = 1`
    /// adds the single best candidate rule each round).
    pub k: usize,
    /// Minimum support for candidate mining.
    pub minsup: usize,
    /// Mine closed candidates (the paper's choice) or all frequent ones
    /// (ablation; larger candidate sets, marginally better compression).
    pub closed_candidates: bool,
    /// Candidate-count safety valve.
    pub max_candidates: usize,
    /// Use the disjointness-based gain cache (result-identical; ablation
    /// switch measures its speedup).
    pub gain_cache: bool,
    /// Iteration safety valve (`None` = run to convergence).
    pub max_iterations: Option<usize>,
}

impl SelectConfig {
    /// SELECT(k) with the given minsup and paper-default settings.
    pub fn new(k: usize, minsup: usize) -> Self {
        SelectConfig {
            k: k.max(1),
            minsup: minsup.max(1),
            closed_candidates: true,
            max_candidates: 2_000_000,
            gain_cache: true,
            max_iterations: None,
        }
    }
}

/// Runs TRANSLATOR-SELECT(k): mines candidates, then fits.
pub fn translator_select(data: &TwoViewDataset, cfg: &SelectConfig) -> TranslatorModel {
    let mut miner_cfg = MinerConfig::with_minsup(cfg.minsup);
    miner_cfg.max_itemsets = cfg.max_candidates;
    let mined = if cfg.closed_candidates {
        mine_closed_twoview(data, &miner_cfg)
    } else {
        mine_frequent_twoview(data, &miner_cfg)
    };
    let mut model = translator_select_candidates(data, cfg, &mined.candidates);
    model.truncated |= mined.truncated;
    model
}

/// Runs SELECT(k) over a pre-mined candidate set (benchmarks reuse mined
/// candidates across configurations).
pub fn translator_select_candidates(
    data: &TwoViewDataset,
    cfg: &SelectConfig,
    candidates: &[TwoViewCandidate],
) -> TranslatorModel {
    let mut state = CoverState::new(data);
    let mut trace = Vec::new();

    // Permanent prefilter: `qub = |supp(X)|·L(Y) + |supp(Y)|·L(X) − L(X↔Y)`
    // depends only on supports and code lengths, never on the cover state,
    // and dominates all three directional gains. Candidates with `qub ≤ 0`
    // can never be added in any iteration and are dropped up front.
    let live: Vec<&TwoViewCandidate> = {
        let codes = state.codes();
        candidates
            .iter()
            .filter(|c| {
                let len_l = codes.itemset(&c.left);
                let len_r = codes.itemset(&c.right);
                let sx = data.support_count(&c.left) as f64;
                let sy = data.support_count(&c.right) as f64;
                sx * len_r + sy * len_l - (len_l + len_r + 1.0) > 0.0
            })
            .collect()
    };

    // Cache antecedent tidsets when the memory budget allows (two bitmaps
    // per candidate); otherwise recompute them on every refresh.
    const TIDSET_CACHE_BUDGET_BYTES: usize = 400 << 20;
    let per_cand = 2 * data.n_transactions().div_ceil(8);
    let cache_tids = per_cand.saturating_mul(live.len()) <= TIDSET_CACHE_BUDGET_BYTES;
    let tid_cache: Vec<Option<(Bitmap, Bitmap)>> = if cache_tids {
        live.iter()
            .map(|c| Some((data.support_set(&c.left), data.support_set(&c.right))))
            .collect()
    } else {
        vec![None; live.len()]
    };

    // Cached per-candidate gains, one per direction (Direction::ALL order).
    let mut gains: Vec<[f64; 3]> = vec![[f64::NEG_INFINITY; 3]; live.len()];
    let mut dirty: Vec<bool> = vec![true; live.len()];

    let n_items = data.vocab().n_items();
    let mut iterations = 0usize;
    loop {
        if let Some(cap) = cfg.max_iterations {
            if iterations >= cap {
                break;
            }
        }
        iterations += 1;

        // Refresh gains.
        for (idx, cand) in live.iter().enumerate() {
            if dirty[idx] || !cfg.gain_cache {
                match &tid_cache[idx] {
                    Some((lt, rt)) => {
                        gains[idx] = state.pair_gains(&cand.left, &cand.right, lt, rt);
                    }
                    None => {
                        let lt = data.support_set(&cand.left);
                        let rt = data.support_set(&cand.right);
                        gains[idx] = state.pair_gains(&cand.left, &cand.right, &lt, &rt);
                    }
                }
                dirty[idx] = false;
            }
        }

        // Top-k candidate rules by gain (strictly positive only).
        let mut entries: Vec<(f64, usize, Direction)> = Vec::new();
        for (idx, g) in gains.iter().enumerate() {
            for (gain, dir) in g.iter().zip(Direction::ALL) {
                if *gain > 0.0 {
                    entries.push((*gain, idx, dir));
                }
            }
        }
        if entries.is_empty() {
            break;
        }
        entries.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap()
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        entries.truncate(cfg.k);

        // Add the selected rules, skipping overlaps within this round.
        let mut used = Bitmap::new(n_items);
        let mut added = false;
        for (gain, idx, dir) in entries {
            let cand = live[idx];
            let overlaps = cand
                .left
                .iter()
                .chain(cand.right.iter())
                .any(|i| used.contains(i as usize));
            if overlaps {
                continue; // gain may have decreased; retry next iteration
            }
            // Disjoint from everything added this round => cached gain is
            // still exact, and it is positive by construction.
            let rule = TranslationRule::new(cand.left.clone(), cand.right.clone(), dir);
            state.apply_rule(rule.clone());
            trace.push(TraceStep::capture(&state, rule, gain));
            for i in cand.left.iter().chain(cand.right.iter()) {
                used.insert(i as usize);
            }
            added = true;
        }
        if !added {
            break;
        }

        // Invalidate candidates touching any item used this round.
        for (idx, cand) in live.iter().enumerate() {
            if cand
                .left
                .iter()
                .chain(cand.right.iter())
                .any(|i| used.contains(i as usize))
            {
                dirty[idx] = true;
            }
        }
    }

    let score = score_of(&state);
    TranslatorModel {
        table: state.into_table(),
        score,
        trace,
        n_candidates: candidates.len(),
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4, 5],
                vec![0, 1, 2, 3, 4],
                vec![2, 5],
                vec![2, 5],
                vec![0, 5],
            ],
        )
    }

    #[test]
    fn select1_compresses_and_traces() {
        let d = structured();
        let model = translator_select(&d, &SelectConfig::new(1, 1));
        assert!(!model.table.is_empty());
        assert!(model.compression_pct() < 100.0);
        assert_eq!(model.trace.len(), model.table.len());
        assert!(model.n_candidates > 0);
        let mut prev = f64::INFINITY;
        for step in &model.trace {
            assert!(step.l_total < prev);
            prev = step.l_total;
        }
    }

    #[test]
    fn gain_cache_is_result_identical() {
        let d = structured();
        let with = translator_select(&d, &SelectConfig::new(1, 1));
        let without = translator_select(
            &d,
            &SelectConfig {
                gain_cache: false,
                ..SelectConfig::new(1, 1)
            },
        );
        assert_eq!(with.table, without.table);
        assert!((with.score.l_total - without.score.l_total).abs() < 1e-9);
    }

    #[test]
    fn k25_reaches_similar_compression() {
        let d = structured();
        let k1 = translator_select(&d, &SelectConfig::new(1, 1));
        let k25 = translator_select(&d, &SelectConfig::new(25, 1));
        // Larger k trades optimality for speed; on this toy data the
        // compression must stay in the same ballpark.
        assert!(k25.compression_pct() <= k1.compression_pct() + 10.0);
    }

    #[test]
    fn rules_added_within_round_are_item_disjoint() {
        let d = structured();
        let model = translator_select(&d, &SelectConfig::new(25, 1));
        // Reconstruct rounds from the trace: within a round (same
        // iteration), itemsets must be disjoint. We can't see iteration
        // boundaries directly, so check the stronger per-model invariant
        // used by the paper's example tables: no rule duplicated.
        let mut seen = std::collections::HashSet::new();
        for rule in model.table.iter() {
            assert!(seen.insert((rule.left.clone(), rule.right.clone(), rule.direction)));
        }
    }

    #[test]
    fn minsup_one_matches_exact_on_easy_data() {
        // On data with one dominant association, SELECT(1) finds the same
        // first rule as EXACT.
        let d = structured();
        let select = translator_select(&d, &SelectConfig::new(1, 1));
        let exact = crate::exact::translator_exact(&d);
        assert_eq!(select.table.rules()[0].left, exact.table.rules()[0].left);
        assert_eq!(select.table.rules()[0].right, exact.table.rules()[0].right);
    }

    #[test]
    fn max_iterations_caps_work() {
        let d = structured();
        let model = translator_select(
            &d,
            &SelectConfig {
                max_iterations: Some(1),
                ..SelectConfig::new(1, 1)
            },
        );
        assert!(model.table.len() <= 1);
    }

    #[test]
    fn empty_candidate_set_yields_empty_model() {
        let d = structured();
        let model = translator_select_candidates(&d, &SelectConfig::new(1, 1), &[]);
        assert!(model.table.is_empty());
        assert!((model.compression_pct() - 100.0).abs() < 1e-9);
    }
}
