//! TRANSLATOR-SELECT(k) (paper Algorithm 3).
//!
//! Instead of searching the full pattern space every iteration, SELECT
//! scores a *fixed* candidate set — closed frequent two-view itemsets — and
//! repeatedly adds the top-k rules (three candidate rules per itemset, one
//! per direction). Rules whose itemsets overlap a rule already added in the
//! same iteration are discarded, because their gain may have decreased; for
//! *disjoint* rules the gain is provably unchanged, which also yields the
//! exact gain-cache used here: a candidate's cached gains stay valid until
//! a rule touching one of its items is applied.
//!
//! Two further devices speed up the per-iteration refresh without changing
//! any result:
//!
//! * **`rub` pruning** ([`crate::bounds::rub`], paper §5.2) — before a
//!   dirty candidate's gains are recomputed exactly, its rule bound is
//!   compared against the k-th best gain already cached among *clean*
//!   candidates. A candidate whose `rub` is strictly below that threshold
//!   (or not positive) provably cannot enter this round's top-k; it skips
//!   exact evaluation and stays dirty for the next round.
//! * **multithreaded refresh** — dirty candidates are refreshed in
//!   parallel over chunks of the dirty-index work list through the
//!   persistent [`twoview_runtime`] pool ([`Runtime::map_chunks`] —
//!   results merged in submission order), with every worker reading the
//!   shared `&CoverState`. The pruning threshold is fixed before the
//!   refresh starts, so the outcome is identical for any thread count.
//!   The pre-pool per-round `std::thread::scope` implementation survives
//!   behind [`SelectConfig::legacy_scope`] for differential testing and
//!   as the `perfsuite` pool-vs-scope baseline.
//!
//! [`Runtime::map_chunks`]: twoview_runtime::Runtime::map_chunks

use twoview_data::prelude::*;
use twoview_mining::{mine_closed_twoview, mine_frequent_twoview, MinerConfig, TwoViewCandidate};
use twoview_runtime::obs;
use twoview_runtime::{JobCtx, JobError};

/// Process-wide registry cells for SELECT internals (`select.*` names):
/// each run folds its per-run counters in once at the end, so the hot
/// refresh loop touches plain locals and [`SelectStats`] stays the
/// per-run view of exactly the same numbers.
struct SelectMetrics {
    runs: obs::Counter,
    iterations: obs::Counter,
    refreshes: obs::Counter,
    rub_prunes: obs::Counter,
    round2_prunes: obs::Counter,
}

fn select_metrics() -> &'static SelectMetrics {
    static METRICS: std::sync::OnceLock<SelectMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SelectMetrics {
        runs: obs::counter("select.runs"),
        iterations: obs::counter("select.iterations"),
        refreshes: obs::counter("select.refreshes"),
        rub_prunes: obs::counter("select.rub_prunes"),
        round2_prunes: obs::counter("select.round2_prunes"),
    })
}

use crate::bounds;
use crate::cover::CoverState;
use crate::model::{score_of, TraceStep, TranslatorModel};
use crate::rule::{Direction, TranslationRule};

/// Configuration for TRANSLATOR-SELECT.
#[derive(Clone, Debug)]
pub struct SelectConfig {
    /// Number of rules selected per iteration (`k` in the paper; `k = 1`
    /// adds the single best candidate rule each round).
    pub k: usize,
    /// Minimum support for candidate mining.
    pub minsup: usize,
    /// Mine closed candidates (the paper's choice) or all frequent ones
    /// (ablation; larger candidate sets, marginally better compression).
    pub closed_candidates: bool,
    /// Candidate-count safety valve.
    pub max_candidates: usize,
    /// Use the disjointness-based gain cache (result-identical; ablation
    /// switch measures its speedup).
    pub gain_cache: bool,
    /// Use the `rub` bound to skip exact gain evaluation of dirty
    /// candidates that cannot enter the current round's top-k
    /// (result-identical; ablation switch measures its speedup).
    pub use_rub: bool,
    /// Gate `rub` behind a per-candidate cost model (default). The bound
    /// walks every support bit while the columnar gain kernel walks
    /// `2·(|X|+|Y|)` word strides, so for dense supports the bound costs
    /// more than the evaluation it would skip; the gate consults it only
    /// for candidates whose supports are sparse enough to make it pay
    /// (bit-iteration ≈ 4× a word op). Supports never change, so
    /// eligibility is precomputed once per run. Disabling the gate forces
    /// the bound for every dirty candidate — result-identical either way;
    /// tests use it to exercise the pruning branch on tiny data.
    ///
    /// Only consulted when the incremental sums (below) are inactive: the
    /// gate exists to ration a recomputation the incremental path never
    /// performs.
    pub rub_cost_gate: bool,
    /// Maintain the per-candidate `Σ tub` sums behind `rub` incrementally
    /// across rounds (default). Cover updates only ever *shrink* tub mass,
    /// so each rule application streams `(tid, weight)` decrements through
    /// a transaction→candidate inverted index instead of every dirty
    /// candidate re-walking its supports. The bound then costs O(1) per
    /// candidate per round and every candidate becomes bound-eligible (no
    /// cost gate).
    ///
    /// Maintenance is not free — each decrement touches every candidate
    /// whose support holds that transaction — so the machinery arms
    /// itself from a **probe round**: round two (the first with a live
    /// pruning threshold) consults the exact bound for a fixed-size
    /// prefix sample of the dirty candidates, and the index is built
    /// only when the observed prune
    /// rate says the bound actually bites on this corpus. Dense corpora
    /// with loose bounds keep the cheap cost-gated path; prune-heavy
    /// corpora pay one index build and O(1) bounds thereafter — and the
    /// index disarms itself again if the armed prune rate later collapses
    /// below the arming bar (the probe round's rate is not always
    /// representative at scale). Also falls
    /// back when the candidate tidsets are not all cached or the index
    /// would bust the tidset cache budget. Result-identical in every
    /// case: maintained sums carry float drift, so any bound within the
    /// drift slack of the prune threshold is re-derived exactly before
    /// the decision.
    pub incremental_rub: bool,
    /// Worker threads for the gain refresh and candidate mining. `None` =
    /// the process default ([`twoview_runtime::configured_threads`]:
    /// `TWOVIEW_RUNTIME_THREADS` or one per available core); `Some(1)` =
    /// single-threaded. The model is identical for any value.
    pub n_threads: Option<usize>,
    /// Refresh through per-round `std::thread::scope` spawns instead of
    /// the persistent pool (result-identical; kept for differential
    /// testing and as the `perfsuite` baseline, like `RowCoverState`).
    pub legacy_scope: bool,
    /// Iteration safety valve (`None` = run to convergence).
    pub max_iterations: Option<usize>,
}

impl SelectConfig {
    /// Fluent builder with paper-default settings: `SELECT(1)` at
    /// `minsup = 1`, closed candidates, gain cache and `rub` pruning on.
    pub fn builder() -> SelectConfigBuilder {
        SelectConfigBuilder {
            cfg: SelectConfig {
                k: 1,
                minsup: 1,
                closed_candidates: true,
                max_candidates: 2_000_000,
                gain_cache: true,
                use_rub: true,
                rub_cost_gate: true,
                incremental_rub: true,
                n_threads: None,
                legacy_scope: false,
                max_iterations: None,
            },
        }
    }
}

/// Fluent builder for [`SelectConfig`]; see [`SelectConfig::builder`].
#[derive(Clone, Debug)]
pub struct SelectConfigBuilder {
    cfg: SelectConfig,
}

impl SelectConfigBuilder {
    /// Rules selected per iteration (clamped to at least 1).
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.k = k.max(1);
        self
    }

    /// Minimum support for candidate mining (clamped to at least 1).
    pub fn minsup(mut self, minsup: usize) -> Self {
        self.cfg.minsup = minsup.max(1);
        self
    }

    /// Closed candidates (the paper's choice) vs all frequent itemsets.
    pub fn closed_candidates(mut self, closed: bool) -> Self {
        self.cfg.closed_candidates = closed;
        self
    }

    /// Candidate-count safety valve.
    pub fn max_candidates(mut self, n: usize) -> Self {
        self.cfg.max_candidates = n;
        self
    }

    /// Disjointness-based gain cache (result-identical ablation switch).
    pub fn gain_cache(mut self, on: bool) -> Self {
        self.cfg.gain_cache = on;
        self
    }

    /// `rub`-bound pruning of dirty-candidate refreshes (result-identical).
    pub fn rub(mut self, on: bool) -> Self {
        self.cfg.use_rub = on;
        self
    }

    /// Cost-gate the `rub` bound per candidate (see
    /// [`SelectConfig::rub_cost_gate`]).
    pub fn rub_cost_gate(mut self, on: bool) -> Self {
        self.cfg.rub_cost_gate = on;
        self
    }

    /// Incremental `Σ tub` bound maintenance (see
    /// [`SelectConfig::incremental_rub`]).
    pub fn incremental_rub(mut self, on: bool) -> Self {
        self.cfg.incremental_rub = on;
        self
    }

    /// Worker threads for refresh and mining (`Some(t)` semantics).
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.n_threads = Some(t);
        self
    }

    /// Inherit the process-default thread count (the default).
    pub fn default_threads(mut self) -> Self {
        self.cfg.n_threads = None;
        self
    }

    /// Refresh through per-round scoped spawns instead of the pool.
    pub fn legacy_scope(mut self, on: bool) -> Self {
        self.cfg.legacy_scope = on;
        self
    }

    /// Iteration safety valve.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.cfg.max_iterations = Some(n);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SelectConfig {
        self.cfg
    }
}

/// Counters reported by one SELECT run (perfsuite / diagnostics).
#[derive(Clone, Debug, Default)]
pub struct SelectStats {
    /// Dirty-candidate refreshes skipped by the `rub` bound.
    pub rub_prunes: usize,
    /// `rub` prunes in round two alone — the first round with a live
    /// pruning threshold. Round one is identical in every configuration,
    /// so round two is the one decision point where the incremental and
    /// cost-gated paths see the same cover state and threshold and differ
    /// only in bound eligibility; the incremental probe consults the
    /// bound for *every* stale candidate (a superset of the cost gate's
    /// eligible set), so this count provably dominates the cost-gated
    /// run's. Cumulative counts carry no such guarantee: pruning more in
    /// early rounds leaves fewer clean cached gains, which can lower
    /// later thresholds and shift when candidates settle.
    pub round2_prunes: usize,
    /// Exact gain evaluations performed.
    pub refreshes: usize,
    /// Iterations of the outer selection loop.
    pub iterations: usize,
    /// Serial time spent initialising and maintaining the incremental
    /// bound sums and taking prune decisions (milliseconds).
    pub bound_maintain_ms: f64,
    /// Whether the probe armed the incremental `Σ tub` index this run
    /// (it may disarm itself later if the armed prune rate collapses).
    pub incremental_active: bool,
}

/// Runs TRANSLATOR-SELECT(k): mines candidates, then fits.
pub fn translator_select(data: &TwoViewDataset, cfg: &SelectConfig) -> TranslatorModel {
    let mut miner_cfg = MinerConfig::builder().minsup(cfg.minsup).build();
    miner_cfg.max_itemsets = cfg.max_candidates;
    miner_cfg.n_threads = cfg.n_threads;
    let mined = if cfg.closed_candidates {
        mine_closed_twoview(data, &miner_cfg)
    } else {
        mine_frequent_twoview(data, &miner_cfg)
    };
    let mut model = translator_select_candidates(data, cfg, &mined.candidates);
    model.truncated |= mined.truncated;
    model
}

/// One refresh unit: a candidate, its (optionally cached) tidsets, and its
/// slot in the gain table.
fn refresh_candidate(
    state: &CoverState<'_>,
    cand: &TwoViewCandidate,
    tids: Option<&(Tidset, Tidset)>,
    threshold: f64,
    use_rub: bool,
    gains: &mut [f64; 3],
) -> bool {
    let data = state.data();
    let computed;
    let (lt, rt) = match tids {
        Some((lt, rt)) => (lt, rt),
        None => {
            computed = (data.support_set(&cand.left), data.support_set(&cand.right));
            (&computed.0, &computed.1)
        }
    };
    if use_rub {
        let rub = bounds::rub(state, &cand.left, &cand.right, lt, rt);
        // Entries need gain > 0 and the top-k already holds `threshold`;
        // strictly-below candidates cannot be selected this round. Keep
        // them dirty and their cached gains stale.
        if rub <= 0.0 || rub < threshold {
            return false;
        }
    }
    *gains = state.pair_gains(&cand.left, &cand.right, lt, rt);
    true
}

/// Runs SELECT(k) over a pre-mined candidate set (benchmarks reuse mined
/// candidates across configurations).
pub fn translator_select_candidates(
    data: &TwoViewDataset,
    cfg: &SelectConfig,
    candidates: &[TwoViewCandidate],
) -> TranslatorModel {
    match run_select(data, cfg, candidates, None, None, None) {
        Ok(model) => model,
        // Without a job context there is no cancellation source.
        Err(_) => unreachable!("uncancellable run cannot be cancelled"),
    }
}

/// [`translator_select_candidates`] with run counters reported through
/// `stats` (prune counts, refresh counts, bound-maintenance time).
pub fn translator_select_candidates_with_stats(
    data: &TwoViewDataset,
    cfg: &SelectConfig,
    candidates: &[TwoViewCandidate],
    stats: &mut SelectStats,
) -> TranslatorModel {
    match run_select(data, cfg, candidates, None, None, Some(stats)) {
        Ok(model) => model,
        Err(_) => unreachable!("uncancellable run cannot be cancelled"),
    }
}

/// Where a refresh finds a candidate's tidsets (shared with EXACT's seed
/// refresh, which reuses the same incremental-bound machinery).
pub(crate) enum TidSource<'a> {
    /// Pre-computed slice aligned with the *original* candidate indices
    /// (the engine's shared seed-tidset cache).
    Shared(&'a [(Tidset, Tidset)]),
    /// Per-run cache aligned with the *live* (qub-surviving) positions;
    /// `None` entries mean over-budget, recompute on use.
    Owned(Vec<Option<(Tidset, Tidset)>>),
}

impl TidSource<'_> {
    #[inline]
    pub(crate) fn get(&self, live_pos: usize, orig_idx: usize) -> Option<&(Tidset, Tidset)> {
        match self {
            TidSource::Shared(all) => Some(&all[orig_idx]),
            TidSource::Owned(cache) => cache[live_pos].as_ref(),
        }
    }
}

/// Builds a per-run seed-tidset cache under the shared byte budget —
/// [`twoview_mining::build_seed_tidsets`]'s metering, reshaped to the
/// per-slot `Option`s the refresh paths consume (`None` everywhere =
/// over budget, recompute per refresh). Shared with EXACT's seed cache
/// so the two budgets cannot drift apart.
pub(crate) fn build_owned_tids(
    data: &TwoViewDataset,
    live: &[&TwoViewCandidate],
) -> Vec<Option<(Tidset, Tidset)>> {
    match twoview_mining::build_seed_tidsets(data, live.iter().copied()) {
        Some(tids) => tids.into_iter().map(Some).collect(),
        None => vec![None; live.len()],
    }
}

/// Incremental per-candidate `Σ tub` sums plus the transaction→candidate
/// inverted index (CSR layout) that keeps them current as rules drain tub
/// mass. `sum_fwd[p] = Σ_{t ∈ lt(p)} tub_R(t)` consumes right-side tub
/// decrements through `off_fwd`/`idx_fwd`; `sum_bwd` mirrors it for the
/// right supports against the left tub column.
pub(crate) struct IncRub {
    pub(crate) sum_fwd: Vec<f64>,
    pub(crate) sum_bwd: Vec<f64>,
    off_fwd: Vec<usize>,
    idx_fwd: Vec<u32>,
    off_bwd: Vec<usize>,
    idx_bwd: Vec<u32>,
    /// Itemset code lengths per live candidate (state-independent).
    pub(crate) len_x: Vec<f64>,
    pub(crate) len_y: Vec<f64>,
}

impl IncRub {
    /// Folds one rule application's tub decrements into the maintained
    /// sums: each `(side, tid, weight)` triple touches exactly the
    /// candidates whose support contains that tid, via the inverted index.
    pub(crate) fn fold(&mut self, deltas: Vec<(u8, u32, f64)>) {
        for (ti, t, w) in deltas {
            let t = t as usize;
            if ti == 1 {
                // The right-side tub column shrank → forward sums
                // (left supports weighted over the right tub).
                for &p in &self.idx_fwd[self.off_fwd[t]..self.off_fwd[t + 1]] {
                    self.sum_fwd[p as usize] -= w;
                }
            } else {
                for &p in &self.idx_bwd[self.off_bwd[t]..self.off_bwd[t + 1]] {
                    self.sum_bwd[p as usize] -= w;
                }
            }
        }
    }

    /// The admissible bound for candidate `i`: the maintained `rub` plus a
    /// float-drift slack such that the *true* bound never exceeds it.
    #[inline]
    pub(crate) fn bound_with_slack(&self, i: usize) -> f64 {
        let (sf, sb) = (self.sum_fwd[i], self.sum_bwd[i]);
        let rub = bounds::rub_parts(sf, sb, self.len_x[i], self.len_y[i]);
        rub + 1e-9 * (1.0 + sf.abs() + sb.abs())
    }
}

/// Builds the incremental bound state, or `None` when it cannot pay off:
/// some candidate's tidsets are uncached (walking supports here would cost
/// what the index is meant to save) or the index itself would bust the
/// shared tidset cache budget.
pub(crate) fn build_inc_rub(
    state: &CoverState<'_>,
    live: &[&TwoViewCandidate],
    live_idx: &[usize],
    tids: &TidSource<'_>,
) -> Option<IncRub> {
    let data = state.data();
    let n = data.n_transactions();
    let mut total = 0usize;
    for (pos, &idx) in live_idx.iter().enumerate().take(live.len()) {
        let (lt, rt) = tids.get(pos, idx)?;
        total += lt.len() + rt.len();
    }
    if 4 * total + 16 * (n + 1) > twoview_mining::TIDSET_CACHE_BUDGET_BYTES {
        return None;
    }
    let mut count_fwd = vec![0u32; n];
    let mut count_bwd = vec![0u32; n];
    for (pos, &idx) in live_idx.iter().enumerate().take(live.len()) {
        let (lt, rt) = tids.get(pos, idx)?;
        for t in lt.iter() {
            count_fwd[t] += 1;
        }
        for t in rt.iter() {
            count_bwd[t] += 1;
        }
    }
    let prefix = |counts: &[u32]| {
        let mut off = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        off.push(0);
        for &c in counts {
            acc += c as usize;
            off.push(acc);
        }
        off
    };
    let off_fwd = prefix(&count_fwd);
    let off_bwd = prefix(&count_bwd);
    let mut idx_fwd = vec![0u32; off_fwd[n]];
    let mut idx_bwd = vec![0u32; off_bwd[n]];
    let mut cur_fwd = off_fwd[..n].to_vec();
    let mut cur_bwd = off_bwd[..n].to_vec();
    let mut sum_fwd = Vec::with_capacity(live.len());
    let mut sum_bwd = Vec::with_capacity(live.len());
    let mut len_x = Vec::with_capacity(live.len());
    let mut len_y = Vec::with_capacity(live.len());
    let tub_r = state.uncovered_weights(Side::Right);
    let tub_l = state.uncovered_weights(Side::Left);
    for (pos, cand) in live.iter().enumerate() {
        let (lt, rt) = tids.get(pos, live_idx[pos])?;
        for t in lt.iter() {
            idx_fwd[cur_fwd[t]] = pos as u32;
            cur_fwd[t] += 1;
        }
        for t in rt.iter() {
            idx_bwd[cur_bwd[t]] = pos as u32;
            cur_bwd[t] += 1;
        }
        // Seeded with the exact kernel the legacy bound uses, so round-1
        // decisions start from bit-identical sums.
        sum_fwd.push(lt.weighted_len(tub_r));
        sum_bwd.push(rt.weighted_len(tub_l));
        len_x.push(state.codes().itemset(&cand.left));
        len_y.push(state.codes().itemset(&cand.right));
    }
    Some(IncRub {
        sum_fwd,
        sum_bwd,
        off_fwd,
        idx_fwd,
        off_bwd,
        idx_bwd,
        len_x,
        len_y,
    })
}

/// The full SELECT(k) loop over a pre-mined candidate set, with optional
/// shared tidsets (`shared_tids`, aligned with `candidates`), an
/// optional job context for cooperative cancellation and progress ticks
/// (one tick per iteration), and optional run counters. Cancellation
/// returns `Err(JobError::Cancelled)` — never a partial model — so every
/// `Ok` result is bit-identical to an uncancelled serial run.
pub(crate) fn run_select(
    data: &TwoViewDataset,
    cfg: &SelectConfig,
    candidates: &[TwoViewCandidate],
    shared_tids: Option<&[(Tidset, Tidset)]>,
    ctl: Option<&JobCtx>,
    stats_out: Option<&mut SelectStats>,
) -> Result<TranslatorModel, JobError> {
    if let Some(tids) = shared_tids {
        debug_assert_eq!(tids.len(), candidates.len());
    }
    let mut run_span = obs::span("select.run");
    run_span
        .field("k", cfg.k)
        .field("n_candidates", candidates.len());
    let mut state = CoverState::new(data);
    let mut trace = Vec::new();

    // Permanent prefilter: `qub` depends only on supports and code lengths,
    // never on the cover state, and dominates all three directional gains.
    // Candidates with `qub ≤ 0` can never be added in any iteration and are
    // dropped up front.
    let live_idx: Vec<usize> = {
        let codes = state.codes();
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| bounds::qub(codes, data, &c.left, &c.right) > 0.0)
            .map(|(i, _)| i)
            .collect()
    };
    let live: Vec<&TwoViewCandidate> = live_idx.iter().map(|&i| &candidates[i]).collect();

    // Tidsets: the caller's shared cache when provided, otherwise a
    // per-run cache when the memory budget allows (actual representation
    // bytes metered as the cache is built; over budget = recompute on
    // every refresh). The budget is the workspace-wide
    // `twoview_mining::TIDSET_CACHE_BUDGET_BYTES`.
    let tids = match shared_tids {
        Some(all) => TidSource::Shared(all),
        None => TidSource::Owned(build_owned_tids(data, &live)),
    };

    // Per-candidate `rub` eligibility under the cost gate. Supports and
    // itemset sizes never change, so this is decided once: the bound's
    // weighted popcount walks `|supp(X)| + |supp(Y)|` bits against the
    // columnar kernel's `2·(|X|+|Y|)·⌈n/64⌉` word strides. With the
    // word-parallel gather kernel behind `Bitmap::weighted_len` (per-word
    // weight slices, independent accumulators) a bit costs ≈ 2 word ops,
    // so the gate admits twice the support mass it used to. Ineligible
    // candidates are always evaluated exactly, so the gate never changes
    // the model.
    let rub_eligible: Vec<bool> = if cfg.use_rub {
        let n_words = data.n_transactions().div_ceil(64);
        live.iter()
            .enumerate()
            .map(|(pos, c)| {
                if !cfg.rub_cost_gate {
                    return true;
                }
                let bound_bits = match tids.get(pos, live_idx[pos]) {
                    Some((lt, rt)) => lt.len() + rt.len(),
                    None => data.support_count(&c.left) + data.support_count(&c.right),
                };
                bound_bits < (c.left.len() + c.right.len()) * n_words
            })
            .collect()
    } else {
        vec![false; live.len()]
    };

    // Incremental `Σ tub` sums: replace the per-candidate bound
    // recomputation — and with it the cost gate — when the bound is
    // worth maintaining on this corpus. The decision comes from a probe:
    // round two (the first round with a live pruning threshold) consults
    // the exact bound for a prefix sample of the dirty candidates, and
    // the index is built only when the probe's prune rate shows the
    // bound bites. Once built, rule applications log their tub
    // decrements, which are folded into the sums at the end of each
    // round.
    //
    // The sample cap bounds the probe's cost on corpora where the bound
    // never pays: forcing the exact bound for *every* dirty candidate is
    // precisely the dense-support recomputation the cost gate exists to
    // avoid, and one uncapped probe round was measurable against the
    // whole run on dense cells. The sample strides the work list rather
    // than taking a prefix — mined candidates sharing items are
    // adjacent, so a prefix would over-represent one dirty cluster.
    const PROBE_SAMPLE: usize = 128;
    let mut bound_maintain = std::time::Duration::ZERO;
    let mut n_prunes = 0usize;
    let mut round2_prunes = 0usize;
    let mut n_refreshes = 0usize;
    let inc_enabled = cfg.use_rub && cfg.incremental_rub;
    let mut inc: Option<IncRub> = None;
    let mut inc_decided = !inc_enabled;
    let mut any_rub = inc_enabled || rub_eligible.iter().any(|&e| e);
    // Prune decisions / hits since the index was armed: the probe's rate
    // can collapse at scale (early rounds prune dirty waves that later
    // rounds refresh anyway), and folds are pure loss once it does, so a
    // looser ongoing bar disarms the index again when that happens.
    let mut inc_decisions = 0usize;
    let mut inc_hits = 0usize;
    let mut inc_was_armed = false;

    // Cached per-candidate gains, one per direction (Direction::ALL order).
    // `dirty` marks stale caches; `skipped` marks candidates whose refresh
    // was rub-pruned *this round* (cache still stale, excluded from entries).
    let mut gains: Vec<[f64; 3]> = vec![[f64::NEG_INFINITY; 3]; live.len()];
    let mut dirty: Vec<bool> = vec![true; live.len()];
    let mut skipped: Vec<bool> = vec![false; live.len()];

    let n_workers = twoview_runtime::resolve_threads(cfg.n_threads);
    // The parallel refresh pays off once a round touches enough dirty
    // candidates; explicitly configured thread counts lower the bar so
    // small differential tests still exercise the parallel merge path.
    let refresh_floor = if cfg.n_threads.is_some() { 16 } else { 256 };

    let n_items = data.vocab().n_items();
    let mut iterations = 0usize;
    loop {
        // Cooperative cancellation: observed at iteration boundaries only,
        // so a run either completes (bit-identical to serial) or yields no
        // model at all. The fault point shares the boundary: an injected
        // panic can never leave a partial model either.
        if let Some(ctx) = ctl {
            twoview_runtime::faults::maybe_panic(
                twoview_runtime::faults::points::SELECT_CHECKPOINT_PANIC,
            );
            ctx.checkpoint()?;
            ctx.tick(1);
        }
        if let Some(cap) = cfg.max_iterations {
            if iterations >= cap {
                break;
            }
        }
        iterations += 1;

        // Pruning threshold: the k-th largest positive cached gain among
        // clean candidates. Their caches are exact, so at least k entries
        // with gain ≥ threshold exist before any dirty candidate is even
        // looked at. Fixed before the refresh starts, so the refresh
        // outcome is independent of worker count and visit order. Not
        // worth computing when no candidate can consult the bound anyway.
        let threshold = if any_rub && cfg.gain_cache {
            let mut clean_gains: Vec<f64> = Vec::new();
            for (idx, g) in gains.iter().enumerate() {
                if !dirty[idx] {
                    clean_gains.extend(g.iter().copied().filter(|&x| x > 0.0));
                }
            }
            if clean_gains.len() >= cfg.k.max(1) {
                let kth = cfg.k.max(1) - 1;
                let (_, &mut kth_gain, _) =
                    clean_gains.select_nth_unstable_by(kth, |a, b| b.total_cmp(a));
                kth_gain
            } else {
                0.0
            }
        } else {
            0.0
        };

        // Refresh stale gains, in parallel for large work lists. The work
        // list holds dirty indices only: dirty candidates cluster (they
        // share items with the rules just applied, and mined candidates
        // with shared items are adjacent), so chunking the whole candidate
        // array would serialize the real work onto one or two workers.
        let force = !cfg.gain_cache;
        let probing = !inc_decided && iterations >= 2;
        let inc_on = inc.is_some();
        skipped.fill(false);
        let work: Vec<usize> = if let Some(inc) = inc.as_ref() {
            // Serial prune pass, O(1) per dirty candidate. The maintained
            // sums carry float drift, so the pass brackets the true bound
            // with `rub ± eps`: outside the bracket the decision is
            // certain, and a bound whose bracket straddles the prune
            // boundary is re-derived exactly from the cached tidsets —
            // the decision is then bit-identical to full recomputation.
            // lint: allow(determinism) — wall-clock timing feeds stats/obs only, never model state
            let t0 = std::time::Instant::now();
            let mut work = Vec::new();
            let stale: Vec<usize> = (0..live.len()).filter(|&i| dirty[i] || force).collect();
            for i in stale {
                let (sf, sb) = (inc.sum_fwd[i], inc.sum_bwd[i]);
                let rub = bounds::rub_parts(sf, sb, inc.len_x[i], inc.len_y[i]);
                let eps = 1e-9 * (1.0 + sf.abs() + sb.abs());
                let prune = if rub + eps <= 0.0 || rub + eps < threshold {
                    true
                } else if rub - eps > 0.0 && rub - eps >= threshold {
                    false
                } else {
                    let (lt, rt) = tids
                        .get(i, live_idx[i])
                        // lint: allow(panic_hygiene) — the incremental index is only armed when the tidset cache is populated
                        .expect("incremental rub requires cached tidsets");
                    let exact = bounds::rub(&state, &live[i].left, &live[i].right, lt, rt);
                    exact <= 0.0 || exact < threshold
                };
                inc_decisions += 1;
                if prune {
                    dirty[i] = true;
                    skipped[i] = true;
                    inc_hits += 1;
                    n_prunes += 1;
                } else {
                    work.push(i);
                }
            }
            bound_maintain += t0.elapsed();
            work
        } else {
            (0..live.len()).filter(|&i| dirty[i] || force).collect()
        };
        // The probe consults the exact bound for a deterministic prefix
        // sample of the round's work list (not the whole list: on dense
        // corpora where the bound never bites, an unbounded probe would
        // pay exactly the full-recompute cost the cost gate exists to
        // avoid). Unsampled candidates keep the normal cost-gated path.
        let probe_force: Vec<bool> = if probing {
            let mut v = vec![false; live.len()];
            let step = work.len().div_ceil(PROBE_SAMPLE).max(1);
            for &i in work.iter().step_by(step) {
                v[i] = true;
            }
            v
        } else {
            Vec::new()
        };
        let probe_decisions = if work.is_empty() {
            0
        } else {
            work.len()
                .div_ceil(work.len().div_ceil(PROBE_SAMPLE).max(1))
        };
        let mut probe_prunes = 0usize;
        let prunes_before = n_prunes;
        if n_workers > 1 && work.len() > refresh_floor {
            let (state, live, live_idx, tids, rub_eligible, probe_force) =
                (&state, &live, &live_idx, &tids, &rub_eligible, &probe_force);
            let refresh_chunk = |idxs: &[usize]| {
                idxs.iter()
                    .map(|&i| {
                        let mut g = [f64::NEG_INFINITY; 3];
                        let ok = refresh_candidate(
                            state,
                            live[i],
                            tids.get(i, live_idx[i]),
                            threshold,
                            (probing && probe_force[i]) || (!inc_on && rub_eligible[i]),
                            &mut g,
                        );
                        (i, g, ok)
                    })
                    .collect::<Vec<_>>()
            };
            let results: Vec<Vec<(usize, [f64; 3], bool)>> = if cfg.legacy_scope {
                // Pre-pool baseline: spawn-and-join one OS thread per
                // worker each round, one static chunk per thread.
                let chunk = work.len().div_ceil(n_workers).max(1);
                std::thread::scope(|s| {
                    let handles: Vec<_> = work
                        .chunks(chunk)
                        .map(|idxs| s.spawn(move || refresh_chunk(idxs)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            // Re-raise a worker panic with its own payload
                            // (no flattening into a second panic message).
                            h.join()
                                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                        })
                        .collect()
                })
            } else {
                // Persistent pool: finer chunks (stolen dynamically, so
                // uneven candidate costs still balance) with results
                // merged in submission order — the model is identical to
                // the serial and scoped paths for any thread count.
                let chunk = work.len().div_ceil(4 * n_workers).max(16);
                twoview_runtime::global()
                    .map_chunks(n_workers, &work, chunk, |_, idxs| refresh_chunk(idxs))
            };
            for (i, g, refreshed) in results.into_iter().flatten() {
                if refreshed {
                    gains[i] = g;
                    dirty[i] = false;
                    n_refreshes += 1;
                } else {
                    dirty[i] = true;
                    skipped[i] = true;
                    n_prunes += 1;
                    if probing && probe_force[i] {
                        probe_prunes += 1;
                    }
                }
            }
        } else {
            for &i in &work {
                if refresh_candidate(
                    &state,
                    live[i],
                    tids.get(i, live_idx[i]),
                    threshold,
                    (probing && probe_force[i]) || (!inc_on && rub_eligible[i]),
                    &mut gains[i],
                ) {
                    dirty[i] = false;
                    n_refreshes += 1;
                } else {
                    dirty[i] = true;
                    skipped[i] = true;
                    n_prunes += 1;
                    if probing && probe_force[i] {
                        probe_prunes += 1;
                    }
                }
            }
        }

        if iterations == 2 {
            // Round two is the provable comparison point between bound
            // configurations (see `SelectStats::round2_prunes`); the inc
            // prune pass cannot have run yet, so the delta is all refresh
            // prunes.
            round2_prunes = n_prunes - prunes_before;
        }

        // Probe verdict: the probe round consulted the exact bound for a
        // prefix sample of the stale candidates; arm the incremental
        // index only when it pruned a meaningful share of the sample (the
        // fold cost scales with cover updates, so a bound that never
        // bites is pure overhead). Decided once per run, on refresh
        // outcomes only — deterministic for any thread count. The index
        // is seeded from the current cover state, so arming mid-run is
        // exact.
        if probing {
            inc_decided = true;
            if probe_decisions > 0 && probe_prunes * 2 >= probe_decisions {
                // lint: allow(determinism) — wall-clock timing feeds stats/obs only, never model state
                let t0 = std::time::Instant::now();
                inc = build_inc_rub(&state, &live, &live_idx, &tids);
                bound_maintain += t0.elapsed();
                if inc.is_some() {
                    inc_was_armed = true;
                    state.set_tub_delta_log(true);
                }
            }
            if inc.is_none() {
                any_rub = rub_eligible.iter().any(|&e| e);
            }
        }

        // Top-k candidate rules by gain (strictly positive only; rub-skipped
        // candidates have stale caches and provably cannot make the cut).
        let mut entries: Vec<(f64, usize, Direction)> = Vec::new();
        for (idx, g) in gains.iter().enumerate() {
            if skipped[idx] {
                continue;
            }
            for (gain, dir) in g.iter().zip(Direction::ALL) {
                if *gain > 0.0 {
                    entries.push((*gain, idx, dir));
                }
            }
        }
        if entries.is_empty() {
            break;
        }
        // Top-k selection: partition the k survivors to the front, then
        // sort only those — the entry list is up to 3·|candidates| long and
        // rebuilt every iteration, so a full sort is wasted work.
        let cmp = |a: &(f64, usize, Direction), b: &(f64, usize, Direction)| {
            b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
        };
        if cfg.k > 0 && entries.len() > cfg.k {
            entries.select_nth_unstable_by(cfg.k - 1, cmp);
        }
        entries.truncate(cfg.k);
        entries.sort_by(cmp);

        // Add the selected rules, skipping overlaps within this round.
        let mut used = Bitmap::new(n_items);
        let mut added = false;
        for (gain, idx, dir) in entries {
            let cand = live[idx];
            let overlaps = cand
                .left
                .iter()
                .chain(cand.right.iter())
                .any(|i| used.contains(i as usize));
            if overlaps {
                continue; // gain may have decreased; retry next iteration
            }
            // Disjoint from everything added this round => cached gain is
            // still exact, and it is positive by construction.
            let rule = TranslationRule::new(cand.left.clone(), cand.right.clone(), dir);
            state.apply_rule(rule.clone());
            trace.push(TraceStep::capture(&state, rule, gain));
            for i in cand.left.iter().chain(cand.right.iter()) {
                used.insert(i as usize);
            }
            added = true;
        }
        if !added {
            break;
        }

        // Invalidate candidates touching any item used this round.
        for (idx, cand) in live.iter().enumerate() {
            if cand
                .left
                .iter()
                .chain(cand.right.iter())
                .any(|i| used.contains(i as usize))
            {
                dirty[idx] = true;
            }
        }

        // Disarm permanently if the armed prune rate has collapsed below
        // the arming bar — the probe round's rate is not always
        // representative at scale, and once the bound stops biting every
        // fold is pure loss. Same data-dependent determinism as arming.
        if inc.is_some() && inc_decisions >= 1024 && inc_hits * 4 < inc_decisions {
            inc = None;
            state.set_tub_delta_log(false);
            any_rub = rub_eligible.iter().any(|&e| e);
        }

        // Fold this round's tub decrements into the maintained sums.
        if let Some(inc) = inc.as_mut() {
            // lint: allow(determinism) — wall-clock timing feeds stats/obs only, never model state
            let t0 = std::time::Instant::now();
            inc.fold(state.take_tub_deltas());
            bound_maintain += t0.elapsed();
        }
    }

    // One registry fold per run; `SelectStats` reports the same locals.
    let metrics = select_metrics();
    metrics.runs.incr();
    metrics.iterations.add(iterations as u64);
    metrics.refreshes.add(n_refreshes as u64);
    metrics.rub_prunes.add(n_prunes as u64);
    metrics.round2_prunes.add(round2_prunes as u64);
    run_span
        .field("iterations", iterations)
        .field("refreshes", n_refreshes)
        .field("rub_prunes", n_prunes)
        .field("incremental_active", inc_was_armed);
    drop(run_span);
    if let Some(s) = stats_out {
        s.rub_prunes = n_prunes;
        s.round2_prunes = round2_prunes;
        s.refreshes = n_refreshes;
        s.iterations = iterations;
        s.bound_maintain_ms = bound_maintain.as_secs_f64() * 1e3;
        s.incremental_active = inc_was_armed;
    }
    let score = score_of(&state);
    Ok(TranslatorModel {
        table: state.into_table(),
        score,
        trace,
        n_candidates: candidates.len(),
        truncated: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4, 5],
                vec![0, 1, 2, 3, 4],
                vec![2, 5],
                vec![2, 5],
                vec![0, 5],
            ],
        )
    }

    #[test]
    fn select1_compresses_and_traces() {
        let d = structured();
        let model = translator_select(&d, &SelectConfig::builder().k(1).minsup(1).build());
        assert!(!model.table.is_empty());
        assert!(model.compression_pct() < 100.0);
        assert_eq!(model.trace.len(), model.table.len());
        assert!(model.n_candidates > 0);
        let mut prev = f64::INFINITY;
        for step in &model.trace {
            assert!(step.l_total < prev);
            prev = step.l_total;
        }
    }

    #[test]
    fn gain_cache_is_result_identical() {
        let d = structured();
        let with = translator_select(&d, &SelectConfig::builder().k(1).minsup(1).build());
        let without = translator_select(
            &d,
            &SelectConfig {
                gain_cache: false,
                ..SelectConfig::builder().k(1).minsup(1).build()
            },
        );
        assert_eq!(with.table, without.table);
        assert!((with.score.l_total - without.score.l_total).abs() < 1e-9);
    }

    #[test]
    fn rub_pruning_is_result_identical() {
        // On toy data the cost gate would disable the bound entirely (one
        // transaction word, dense supports), so force it off: every dirty
        // candidate then really goes through the rub-prune branch, and the
        // model must still match the unpruned run exactly.
        let d = structured();
        for k in [1, 3, 25] {
            for incremental in [true, false] {
                let base = SelectConfig {
                    incremental_rub: incremental,
                    ..SelectConfig::builder().k(k).minsup(1).build()
                };
                let forced = translator_select(
                    &d,
                    &SelectConfig {
                        rub_cost_gate: false,
                        ..base.clone()
                    },
                );
                let gated = translator_select(&d, &base);
                let without = translator_select(
                    &d,
                    &SelectConfig {
                        use_rub: false,
                        ..base.clone()
                    },
                );
                assert_eq!(forced.table, without.table, "k={k} inc={incremental}");
                assert_eq!(gated.table, without.table, "k={k} inc={incremental}");
                assert!((forced.score.l_total - without.score.l_total).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn incremental_rub_is_result_identical_and_prunes_more() {
        use twoview_data::synthetic::{self, StructureSpec, SyntheticSpec};
        let spec = SyntheticSpec {
            name: "inc-rub".into(),
            n_transactions: 300,
            n_left: 14,
            n_right: 12,
            density_left: 0.04,
            density_right: 0.04,
            structure: StructureSpec::strong(4),
            seed: 9,
        };
        let d = synthetic::generate(&spec).expect("valid spec").dataset;
        let mined = mine_closed_twoview(&d, &MinerConfig::builder().minsup(2).build()).candidates;
        let cfg = SelectConfig::builder().k(1).minsup(2).build();
        let mut inc_stats = SelectStats::default();
        let inc = translator_select_candidates_with_stats(&d, &cfg, &mined, &mut inc_stats);
        let mut leg_stats = SelectStats::default();
        let leg = translator_select_candidates_with_stats(
            &d,
            &SelectConfig {
                incremental_rub: false,
                ..cfg.clone()
            },
            &mined,
            &mut leg_stats,
        );
        assert_eq!(inc.table, leg.table, "incremental rub changed the model");
        assert!((inc.score.l_total - leg.score.l_total).abs() < 1e-9);
        assert!(inc_stats.incremental_active, "index should build here");
        assert!(!leg_stats.incremental_active);
        assert_eq!(inc_stats.iterations, leg_stats.iterations);
        // Every candidate is bound-eligible under the incremental sums, so
        // prune counts can only grow (and refreshes only shrink) vs the
        // cost-gated baseline.
        assert!(
            inc_stats.rub_prunes >= leg_stats.rub_prunes,
            "{} < {}",
            inc_stats.rub_prunes,
            leg_stats.rub_prunes
        );
        assert!(
            inc_stats.refreshes <= leg_stats.refreshes,
            "{} > {}",
            inc_stats.refreshes,
            leg_stats.refreshes
        );
    }

    #[test]
    fn thread_count_is_result_identical() {
        let d = structured();
        let one = translator_select(
            &d,
            &SelectConfig {
                n_threads: Some(1),
                ..SelectConfig::builder().k(2).minsup(1).build()
            },
        );
        let four = translator_select(
            &d,
            &SelectConfig {
                n_threads: Some(4),
                ..SelectConfig::builder().k(2).minsup(1).build()
            },
        );
        assert_eq!(one.table, four.table);
        assert!((one.score.l_total - four.score.l_total).abs() < 1e-9);
    }

    #[test]
    fn pool_path_matches_legacy_scoped_path() {
        // A corpus big enough to clear the explicit-thread refresh floor,
        // so the pool and the legacy scoped refresh both really run.
        use twoview_data::synthetic::{self, StructureSpec, SyntheticSpec};
        let spec = SyntheticSpec {
            name: "pool-vs-scope".into(),
            n_transactions: 200,
            n_left: 12,
            n_right: 10,
            density_left: 0.3,
            density_right: 0.3,
            structure: StructureSpec::strong(3),
            seed: 5,
        };
        let d = synthetic::generate(&spec).expect("valid spec").dataset;
        let serial = translator_select(
            &d,
            &SelectConfig {
                n_threads: Some(1),
                ..SelectConfig::builder().k(2).minsup(2).build()
            },
        );
        for threads in [2, 4] {
            let pool = translator_select(
                &d,
                &SelectConfig {
                    n_threads: Some(threads),
                    ..SelectConfig::builder().k(2).minsup(2).build()
                },
            );
            let scoped = translator_select(
                &d,
                &SelectConfig {
                    n_threads: Some(threads),
                    legacy_scope: true,
                    ..SelectConfig::builder().k(2).minsup(2).build()
                },
            );
            assert_eq!(serial.table, pool.table, "pool, {threads} threads");
            assert_eq!(serial.table, scoped.table, "scope, {threads} threads");
            assert!((serial.score.l_total - pool.score.l_total).abs() < 1e-9);
            assert!((serial.score.l_total - scoped.score.l_total).abs() < 1e-9);
        }
    }

    #[test]
    fn k25_reaches_similar_compression() {
        let d = structured();
        let k1 = translator_select(&d, &SelectConfig::builder().k(1).minsup(1).build());
        let k25 = translator_select(&d, &SelectConfig::builder().k(25).minsup(1).build());
        // Larger k trades optimality for speed; on this toy data the
        // compression must stay in the same ballpark.
        assert!(k25.compression_pct() <= k1.compression_pct() + 10.0);
    }

    #[test]
    fn rules_added_within_round_are_item_disjoint() {
        let d = structured();
        let model = translator_select(&d, &SelectConfig::builder().k(25).minsup(1).build());
        // Reconstruct rounds from the trace: within a round (same
        // iteration), itemsets must be disjoint. We can't see iteration
        // boundaries directly, so check the stronger per-model invariant
        // used by the paper's example tables: no rule duplicated.
        let mut seen = std::collections::HashSet::new();
        for rule in model.table.iter() {
            assert!(seen.insert((rule.left.clone(), rule.right.clone(), rule.direction)));
        }
    }

    #[test]
    fn minsup_one_matches_exact_on_easy_data() {
        // On data with one dominant association, SELECT(1) finds the same
        // first rule as EXACT.
        let d = structured();
        let select = translator_select(&d, &SelectConfig::builder().k(1).minsup(1).build());
        let exact = crate::exact::translator_exact(&d);
        assert_eq!(select.table.rules()[0].left, exact.table.rules()[0].left);
        assert_eq!(select.table.rules()[0].right, exact.table.rules()[0].right);
    }

    #[test]
    fn max_iterations_caps_work() {
        let d = structured();
        let model = translator_select(
            &d,
            &SelectConfig {
                max_iterations: Some(1),
                ..SelectConfig::builder().k(1).minsup(1).build()
            },
        );
        assert!(model.table.len() <= 1);
    }

    #[test]
    fn empty_candidate_set_yields_empty_model() {
        let d = structured();
        let model =
            translator_select_candidates(&d, &SelectConfig::builder().k(1).minsup(1).build(), &[]);
        assert!(model.table.is_empty());
        assert!((model.compression_pct() - 100.0).abs() < 1e-9);
    }
}
