//! Translation rules (paper Definition 1).

use std::fmt;

use twoview_data::prelude::*;

/// The direction of a translation rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// `X → Y`: left occurrences predict right items.
    Forward,
    /// `X ← Y`: right occurrences predict left items.
    Backward,
    /// `X ↔ Y`: both directions hold.
    Both,
}

impl Direction {
    /// All three directions (enumeration order used everywhere for
    /// determinism).
    pub const ALL: [Direction; 3] = [Direction::Forward, Direction::Backward, Direction::Both];

    /// Encoded length of the direction marker in bits: one bit flags
    /// uni/bidirectional, a second bit picks the orientation of a
    /// unidirectional rule (paper §4.1).
    #[inline]
    pub fn encoded_length(self) -> f64 {
        match self {
            Direction::Both => 1.0,
            _ => 2.0,
        }
    }

    /// `true` if the rule fires when translating from `side`.
    ///
    /// `Forward` fires from the left view, `Backward` from the right,
    /// `Both` from either.
    #[inline]
    pub fn fires_from(self, side: Side) -> bool {
        match self {
            Direction::Forward => side == Side::Left,
            Direction::Backward => side == Side::Right,
            Direction::Both => true,
        }
    }

    /// The arrow glyph used in reports.
    pub fn arrow(self) -> &'static str {
        match self {
            Direction::Forward => "->",
            Direction::Backward => "<-",
            Direction::Both => "<->",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.arrow())
    }
}

/// A translation rule `X ◇ Y` with `X ⊆ I_L`, `Y ⊆ I_R`, both non-empty.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TranslationRule {
    /// Left-hand itemset `X` (global ids).
    pub left: ItemSet,
    /// Right-hand itemset `Y` (global ids).
    pub right: ItemSet,
    /// The rule direction `◇ ∈ {→, ←, ↔}`.
    pub direction: Direction,
}

impl TranslationRule {
    /// Builds a rule, checking the two-view constraints.
    ///
    /// # Panics
    /// Panics if either side is empty — such rules are not cross-view
    /// associations and are excluded by the paper's problem statement.
    pub fn new(left: ItemSet, right: ItemSet, direction: Direction) -> Self {
        assert!(!left.is_empty(), "rule left-hand side must be non-empty");
        assert!(!right.is_empty(), "rule right-hand side must be non-empty");
        TranslationRule {
            left,
            right,
            direction,
        }
    }

    /// Total number of items in the rule.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Rules are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The antecedent when translating *from* `side` (`None` if the rule
    /// does not fire from that side).
    pub fn antecedent(&self, side: Side) -> Option<&ItemSet> {
        if self.direction.fires_from(side) {
            Some(match side {
                Side::Left => &self.left,
                Side::Right => &self.right,
            })
        } else {
            None
        }
    }

    /// The consequent produced when translating *from* `side`.
    pub fn consequent(&self, side: Side) -> &ItemSet {
        match side {
            Side::Left => &self.right,
            Side::Right => &self.left,
        }
    }

    /// Renders the rule with item names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> RuleDisplay<'a> {
        RuleDisplay { rule: self, vocab }
    }
}

/// Helper returned by [`TranslationRule::display`].
pub struct RuleDisplay<'a> {
    rule: &'a TranslationRule,
    vocab: &'a Vocabulary,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.rule.left.display(self.vocab),
            self.rule.direction,
            self.rule.right.display(self.vocab)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(dir: Direction) -> TranslationRule {
        TranslationRule::new(ItemSet::from_items([0, 1]), ItemSet::from_items([5]), dir)
    }

    #[test]
    fn direction_lengths() {
        assert_eq!(Direction::Both.encoded_length(), 1.0);
        assert_eq!(Direction::Forward.encoded_length(), 2.0);
        assert_eq!(Direction::Backward.encoded_length(), 2.0);
    }

    #[test]
    fn firing_sides() {
        assert!(Direction::Forward.fires_from(Side::Left));
        assert!(!Direction::Forward.fires_from(Side::Right));
        assert!(!Direction::Backward.fires_from(Side::Left));
        assert!(Direction::Backward.fires_from(Side::Right));
        assert!(Direction::Both.fires_from(Side::Left));
        assert!(Direction::Both.fires_from(Side::Right));
    }

    #[test]
    fn antecedent_consequent() {
        let r = rule(Direction::Forward);
        assert_eq!(r.antecedent(Side::Left), Some(&r.left));
        assert_eq!(r.antecedent(Side::Right), None);
        assert_eq!(r.consequent(Side::Left), &r.right);
        assert_eq!(r.consequent(Side::Right), &r.left);
        let b = rule(Direction::Both);
        assert_eq!(b.antecedent(Side::Right), Some(&b.right));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_side_rejected() {
        TranslationRule::new(ItemSet::empty(), ItemSet::from_items([5]), Direction::Both);
    }

    #[test]
    fn display_with_names() {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        let r = TranslationRule::new(
            ItemSet::from_items([0, 2]),
            ItemSet::from_items([4]),
            Direction::Both,
        );
        assert_eq!(format!("{}", r.display(&vocab)), "{a, c} <-> {y}");
    }

    #[test]
    fn rule_len() {
        assert_eq!(rule(Direction::Both).len(), 3);
    }
}
