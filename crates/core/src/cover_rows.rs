//! Row-major reference cover state (the pre-columnar implementation).
//!
//! [`RowCoverState`] keeps the `U`/`E` tables as one bitmap **per
//! transaction** and evaluates gains by looping over every supporting
//! transaction — `O(|supp| · |Y|)` per candidate. The production
//! [`crate::cover::CoverState`] stores the same tables transposed into
//! per-item tidset *columns* and computes the identical gain with `|Y|`
//! fused popcount kernels instead.
//!
//! The row implementation is retained for two jobs:
//!
//! * **differential testing** — the property suite replays random rule
//!   sequences through both layouts and asserts that gains, encoded-length
//!   totals and correction rows agree ([`crate::cover::CoverState::verify`]
//!   also cross-checks against this type);
//! * **benchmark baseline** — the `perfsuite` binary times the gain-refresh
//!   phase against both layouts and records the speedup in
//!   `BENCH_select.json`.

use twoview_data::prelude::*;

use crate::encoding::CodeLengths;
use crate::rule::{Direction, TranslationRule};
use crate::table::TranslationTable;

/// Row-major (per-transaction) cover state. See the module docs.
#[derive(Clone, Debug)]
pub struct RowCoverState<'d> {
    data: &'d TwoViewDataset,
    codes: CodeLengths,
    /// Per side, per transaction: target-side items predicted correctly.
    covered: [Vec<Bitmap>; 2],
    /// Per side, per transaction: target-side items predicted erroneously.
    errors: [Vec<Bitmap>; 2],
    /// Per side, per transaction: `L(U_t | D_side)` — the paper's `tub(t)`.
    uncovered_weight: [Vec<f64>; 2],
    /// Per side: `L(C_side | T)`.
    l_corrections: [f64; 2],
    /// `L(T)`.
    l_table: f64,
    /// Per side: `|U|` (number of uncovered ones).
    n_uncovered: [usize; 2],
    /// Per side: `|E|` (number of erroneous ones).
    n_errors: [usize; 2],
    table: TranslationTable,
}

#[inline]
fn ix(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

impl<'d> RowCoverState<'d> {
    /// Fresh state for an empty translation table: everything uncovered.
    pub fn new(data: &'d TwoViewDataset) -> Self {
        let codes = CodeLengths::new(data);
        let n = data.n_transactions();
        let vocab = data.vocab();
        let mut state = RowCoverState {
            covered: [
                vec![Bitmap::new(vocab.n_left()); n],
                vec![Bitmap::new(vocab.n_right()); n],
            ],
            errors: [
                vec![Bitmap::new(vocab.n_left()); n],
                vec![Bitmap::new(vocab.n_right()); n],
            ],
            uncovered_weight: [Vec::with_capacity(n), Vec::with_capacity(n)],
            l_corrections: [0.0, 0.0],
            l_table: 0.0,
            n_uncovered: [0, 0],
            n_errors: [0, 0],
            table: TranslationTable::new(),
            codes,
            data,
        };
        for side in Side::BOTH {
            let table = state.codes.side_table(side);
            let mut total = 0.0;
            let mut count = 0usize;
            for t in 0..n {
                let row = data.row(side, t);
                let w = row.weighted_len(table);
                state.uncovered_weight[ix(side)].push(w);
                total += w;
                count += row.len();
            }
            state.l_corrections[ix(side)] = total;
            state.n_uncovered[ix(side)] = count;
        }
        state
    }

    /// The consequent as a bitmap over the target side's local indices.
    fn consequent_bitmap(&self, target: Side, consequent: &ItemSet) -> Bitmap {
        let vocab = self.data.vocab();
        Bitmap::from_indices(
            vocab.n_on(target),
            consequent.iter().map(|i| vocab.local_index(i)),
        )
    }

    /// Builds a state by applying every rule of `table` to a fresh state.
    pub fn from_table(data: &'d TwoViewDataset, table: &TranslationTable) -> Self {
        let mut state = RowCoverState::new(data);
        for rule in table.iter() {
            state.apply_rule(rule.clone());
        }
        state
    }

    /// The underlying dataset.
    pub fn data(&self) -> &'d TwoViewDataset {
        self.data
    }

    /// The per-item code lengths.
    pub fn codes(&self) -> &CodeLengths {
        &self.codes
    }

    /// The rules applied so far.
    pub fn table(&self) -> &TranslationTable {
        &self.table
    }

    /// `L(T)`.
    pub fn l_table(&self) -> f64 {
        self.l_table
    }

    /// `L(C_side | T)`.
    pub fn l_correction(&self, side: Side) -> f64 {
        self.l_corrections[ix(side)]
    }

    /// Total encoded size `L(D_{L↔R}, T)`.
    pub fn total_length(&self) -> f64 {
        self.l_table + self.l_corrections[0] + self.l_corrections[1]
    }

    /// `|U|` on `side`.
    pub fn n_uncovered(&self, side: Side) -> usize {
        self.n_uncovered[ix(side)]
    }

    /// `|E|` on `side`.
    pub fn n_errors(&self, side: Side) -> usize {
        self.n_errors[ix(side)]
    }

    /// `L(U_t | D_side)` — the transaction-based upper bound `tub`.
    #[inline]
    pub fn uncovered_weight(&self, side: Side, t: usize) -> f64 {
        self.uncovered_weight[ix(side)][t]
    }

    /// The whole `tub` column of one side.
    pub fn uncovered_weights(&self, side: Side) -> &[f64] {
        &self.uncovered_weight[ix(side)]
    }

    /// The correction row `C_t = U_t ∪ E_t` on `side` (local indices).
    pub fn correction_row(&self, side: Side, t: usize) -> Bitmap {
        let mut c = self.data.row(side, t).and_not(&self.covered[ix(side)][t]);
        c.union_with(&self.errors[ix(side)][t]);
        c
    }

    /// Data-gain of firing `consequent` into `target = from.opposite()` for
    /// every transaction in `antecedent_tids` (Eq. 2, one direction),
    /// evaluated row by row.
    pub fn directional_gain(
        &self,
        from: Side,
        antecedent_tids: &Tidset,
        consequent: &ItemSet,
    ) -> f64 {
        let target = from.opposite();
        let codes = self.codes.side_table(target);
        let covered = &self.covered[ix(target)];
        let errors = &self.errors[ix(target)];
        let cons = self.consequent_bitmap(target, consequent);
        // One scratch bitmap reused across the support.
        let mut scratch = Bitmap::new(cons.capacity());
        let mut gain = 0.0;
        for t in antecedent_tids.iter() {
            let row = self.data.row(target, t);
            // Hits: predicted ∧ present, gain for the not-yet-covered ones.
            cons.and_into(row, &mut scratch);
            gain += scratch.difference_weight(&covered[t], codes);
            // Misses: predicted ∧ absent, cost for the fresh errors.
            scratch.copy_from(&cons);
            scratch.subtract(row);
            gain -= scratch.difference_weight(&errors[t], codes);
        }
        gain
    }

    /// Gains of the three rules constructible from the pair `(X, Y)`, in
    /// [`Direction::ALL`] order, given the antecedent tidsets.
    pub fn pair_gains(
        &self,
        left: &ItemSet,
        right: &ItemSet,
        left_tids: &Tidset,
        right_tids: &Tidset,
    ) -> [f64; 3] {
        let g_fwd = self.directional_gain(Side::Left, left_tids, right);
        let g_bwd = self.directional_gain(Side::Right, right_tids, left);
        let base = self.codes.itemset(left) + self.codes.itemset(right);
        [
            g_fwd - (base + 2.0),         // X → Y
            g_bwd - (base + 2.0),         // X ← Y
            g_fwd + g_bwd - (base + 1.0), // X ↔ Y
        ]
    }

    /// Gain of a single rule (recomputes the antecedent tidsets).
    pub fn rule_gain(&self, rule: &TranslationRule) -> f64 {
        let left_tids = self.data.support_set(&rule.left);
        let right_tids = self.data.support_set(&rule.right);
        let gains = self.pair_gains(&rule.left, &rule.right, &left_tids, &right_tids);
        match rule.direction {
            Direction::Forward => gains[0],
            Direction::Backward => gains[1],
            Direction::Both => gains[2],
        }
    }

    /// Applies a rule: updates covered/error sets and all cached totals.
    pub fn apply_rule(&mut self, rule: TranslationRule) {
        if rule.direction.fires_from(Side::Left) {
            let tids = self.data.support_set(&rule.left);
            self.apply_directional(Side::Left, &tids, &rule.right);
        }
        if rule.direction.fires_from(Side::Right) {
            let tids = self.data.support_set(&rule.right);
            self.apply_directional(Side::Right, &tids, &rule.left);
        }
        self.l_table += self.codes.rule(&rule);
        self.table.push(rule);
    }

    fn apply_directional(&mut self, from: Side, antecedent_tids: &Tidset, consequent: &ItemSet) {
        let target = from.opposite();
        let ti = ix(target);
        let cons = self.consequent_bitmap(target, consequent);
        let mut scratch = Bitmap::new(cons.capacity());
        for t in antecedent_tids.iter() {
            let row = self.data.row(target, t);
            // Hits become covered; account only for the newly covered bits.
            cons.and_into(row, &mut scratch);
            for l in scratch.iter_and_not(&self.covered[ti][t]) {
                let len = self.codes.side_table(target)[l];
                self.l_corrections[ti] -= len;
                self.uncovered_weight[ti][t] -= len;
                self.n_uncovered[ti] -= 1;
            }
            self.covered[ti][t].union_with(&scratch);
            // Misses become errors; account only for the fresh ones.
            scratch.copy_from(&cons);
            scratch.subtract(row);
            for l in scratch.iter_and_not(&self.errors[ti][t]) {
                self.l_corrections[ti] += self.codes.side_table(target)[l];
                self.n_errors[ti] += 1;
            }
            self.errors[ti][t].union_with(&scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3],
                vec![0, 2, 5],
                vec![1, 4],
                vec![0, 1, 3, 4, 5],
                vec![2],
            ],
        )
    }

    #[test]
    fn row_gain_equals_actual_length_drop() {
        let d = toy();
        for dir in Direction::ALL {
            let mut s = RowCoverState::new(&d);
            let rule = TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::from_items([3, 4]),
                dir,
            );
            let predicted = s.rule_gain(&rule);
            let before = s.total_length();
            s.apply_rule(rule);
            assert!(
                (predicted - (before - s.total_length())).abs() < 1e-9,
                "{dir:?}"
            );
        }
    }
}
