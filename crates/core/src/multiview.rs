//! Multi-view association discovery: the pairwise generalisation of
//! translation tables the paper proposes as future work (§7).
//!
//! For a `k`-view dataset, every unordered pair of views is a two-view
//! problem; fitting a translation table per pair yields a *multi-view
//! model* whose per-pair compression ratios form an association map —
//! which views explain each other, and how strongly. Pairs with `L%` near
//! 100 are unrelated; low `L%` marks strongly coupled views.

use twoview_data::multiview::MultiViewDataset;

use crate::model::TranslatorModel;
use crate::select::{translator_select, SelectConfig};

/// A fitted translation table per view pair.
#[derive(Clone, Debug)]
pub struct MultiViewModel {
    /// `(a, b, model)` for every pair `a < b`.
    pub pair_models: Vec<(usize, usize, TranslatorModel)>,
}

impl MultiViewModel {
    /// The model for a specific pair, if fitted.
    pub fn pair(&self, a: usize, b: usize) -> Option<&TranslatorModel> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.pair_models
            .iter()
            .find(|(x, y, _)| *x == lo && *y == hi)
            .map(|(_, _, m)| m)
    }

    /// Association strength between two views: `100 − L%` (0 = unrelated,
    /// higher = more cross-view structure).
    pub fn association_strength(&self, a: usize, b: usize) -> Option<f64> {
        self.pair(a, b).map(|m| 100.0 - m.compression_pct())
    }

    /// The symmetric `k×k` association matrix (`None` on the diagonal
    /// renders as 0).
    pub fn association_matrix(&self, k: usize) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; k]; k];
        for (a, b, model) in &self.pair_models {
            let s = 100.0 - model.compression_pct();
            m[*a][*b] = s;
            m[*b][*a] = s;
        }
        m
    }

    /// Total number of rules across all pairs.
    pub fn n_rules(&self) -> usize {
        self.pair_models.iter().map(|(_, _, m)| m.table.len()).sum()
    }
}

/// Fits TRANSLATOR-SELECT(k) on every view pair.
pub fn fit_multiview(data: &MultiViewDataset, cfg: &SelectConfig) -> MultiViewModel {
    let pair_models = data
        .pairs()
        .into_iter()
        .map(|(a, b)| {
            let pair_data = data.pair(a, b);
            let model = translator_select(&pair_data, cfg);
            (a, b, model)
        })
        .collect();
    MultiViewModel { pair_models }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three views where view 0 and view 1 are strongly associated and
    /// view 2 is independent noise.
    fn coupled_views() -> MultiViewDataset {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200;
        let mut v0 = Vec::new();
        let mut v1 = Vec::new();
        let mut v2 = Vec::new();
        for _ in 0..n {
            let concept = rng.gen_bool(0.5);
            v0.push(if concept { vec![0, 1] } else { vec![2] });
            // View 1 mirrors view 0's concept almost always.
            let mirror = rng.gen_bool(0.92) == concept;
            v1.push(if mirror { vec![0] } else { vec![1] });
            // View 2 is coin flips.
            v2.push((0..3usize).filter(|_| rng.gen_bool(0.3)).collect());
        }
        MultiViewDataset::new(vec![
            (
                "alpha".into(),
                vec!["a0".into(), "a1".into(), "a2".into()],
                v0,
            ),
            ("beta".into(), vec!["b0".into(), "b1".into()], v1),
            (
                "gamma".into(),
                vec!["c0".into(), "c1".into(), "c2".into()],
                v2,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn fits_all_pairs() {
        let mv = coupled_views();
        let model = fit_multiview(&mv, &SelectConfig::builder().k(1).minsup(2).build());
        assert_eq!(model.pair_models.len(), 3);
        assert!(model.pair(0, 1).is_some());
        assert!(model.pair(1, 0).is_some(), "order-insensitive lookup");
        assert!(model.pair(0, 0).is_none());
    }

    #[test]
    fn coupled_pair_scores_higher_than_noise_pairs() {
        let mv = coupled_views();
        let model = fit_multiview(&mv, &SelectConfig::builder().k(1).minsup(2).build());
        let s01 = model.association_strength(0, 1).unwrap();
        let s02 = model.association_strength(0, 2).unwrap();
        let s12 = model.association_strength(1, 2).unwrap();
        assert!(
            s01 > s02 + 2.0 && s01 > s12 + 2.0,
            "coupled {s01:.1} vs noise {s02:.1}/{s12:.1}"
        );
    }

    #[test]
    fn association_matrix_is_symmetric_with_zero_diagonal() {
        let mv = coupled_views();
        let model = fit_multiview(&mv, &SelectConfig::builder().k(1).minsup(2).build());
        let m = model.association_matrix(3);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, cell) in row.iter().enumerate() {
                assert!((cell - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rule_count_aggregates() {
        let mv = coupled_views();
        let model = fit_multiview(&mv, &SelectConfig::builder().k(1).minsup(2).build());
        let sum: usize = model
            .pair_models
            .iter()
            .map(|(_, _, m)| m.table.len())
            .sum();
        assert_eq!(model.n_rules(), sum);
    }
}
