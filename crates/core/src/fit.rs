//! Unified fitting front-end: pick a TRANSLATOR variant with one enum.

use twoview_data::prelude::*;

use crate::exact::{translator_exact_with, ExactConfig};
use crate::greedy::{translator_greedy, GreedyConfig};
use crate::model::TranslatorModel;
use crate::select::{translator_select, SelectConfig};

/// The TRANSLATOR algorithm to run, with its configuration.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// TRANSLATOR-EXACT (paper Algorithm 2).
    Exact(ExactConfig),
    /// TRANSLATOR-SELECT(k) (paper Algorithm 3).
    Select(SelectConfig),
    /// TRANSLATOR-GREEDY (paper §5.4).
    Greedy(GreedyConfig),
}

impl Algorithm {
    /// The paper's recommended trade-off: SELECT(1) — near-exact
    /// compression at a fraction of the runtime (paper §6.1 discussion).
    pub fn recommended(minsup: usize) -> Algorithm {
        Algorithm::Select(SelectConfig::new(1, minsup))
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Algorithm::Exact(_) => "T-EXACT".to_string(),
            Algorithm::Select(c) => format!("T-SELECT({})", c.k),
            Algorithm::Greedy(_) => "T-GREEDY".to_string(),
        }
    }
}

/// Fits a translation table with the chosen algorithm.
pub fn fit(data: &TwoViewDataset, algorithm: &Algorithm) -> TranslatorModel {
    match algorithm {
        Algorithm::Exact(cfg) => translator_exact_with(data, cfg),
        Algorithm::Select(cfg) => translator_select(data, cfg),
        Algorithm::Greedy(cfg) => translator_greedy(data, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2],
                vec![1, 3],
                vec![1, 3],
                vec![0, 1, 2, 3],
            ],
        )
    }

    #[test]
    fn dispatcher_matches_direct_calls() {
        let d = toy();
        let via_enum = fit(&d, &Algorithm::Select(SelectConfig::new(1, 1)));
        let direct = translator_select(&d, &SelectConfig::new(1, 1));
        assert_eq!(via_enum.table, direct.table);

        let via_enum = fit(&d, &Algorithm::Greedy(GreedyConfig::new(1)));
        let direct = translator_greedy(&d, &GreedyConfig::new(1));
        assert_eq!(via_enum.table, direct.table);

        let cfg = ExactConfig::default();
        let via_enum = fit(&d, &Algorithm::Exact(cfg.clone()));
        let direct = translator_exact_with(&d, &cfg);
        assert_eq!(via_enum.table, direct.table);
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::recommended(5).label(), "T-SELECT(1)");
        assert_eq!(
            Algorithm::Select(SelectConfig::new(25, 1)).label(),
            "T-SELECT(25)"
        );
        assert_eq!(Algorithm::Greedy(GreedyConfig::new(1)).label(), "T-GREEDY");
        assert_eq!(Algorithm::Exact(ExactConfig::default()).label(), "T-EXACT");
    }

    #[test]
    fn all_variants_compress_toy_data() {
        let d = toy();
        for alg in [
            Algorithm::Exact(ExactConfig::default()),
            Algorithm::recommended(1),
            Algorithm::Greedy(GreedyConfig::new(1)),
        ] {
            let model = fit(&d, &alg);
            assert!(
                model.compression_pct() < 100.0,
                "{} failed to compress",
                alg.label()
            );
        }
    }
}
