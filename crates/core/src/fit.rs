//! Compatibility shim: the one-enum fitting front-end grew into the
//! session-oriented [`crate::engine`] module (candidate caching, job
//! scheduling, priorities). [`Algorithm`] and [`fit`] live there now; this
//! module re-exports them so existing `twoview_core::fit::` paths keep
//! compiling for one release.

pub use crate::engine::{fit, Algorithm};
