//! Plain-text persistence for translation tables (the `.rules` format).
//!
//! One rule per line, item names joined by commas:
//!
//! ```text
//! #2vrules1
//! rainy, cold -> umbrella
//! windy <-> kite
//! sunny <- sunglasses
//! ```
//!
//! Names must match the dataset vocabulary the table will be used with;
//! reading resolves them and validates sides.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use twoview_data::error::DataError;
use twoview_data::prelude::*;

use crate::error::Error;

use crate::rule::{Direction, TranslationRule};
use crate::table::TranslationTable;

const MAGIC: &str = "#2vrules1";

/// Writes a table with item names resolved through `vocab`.
pub fn write_table<W: Write>(
    table: &TranslationTable,
    vocab: &Vocabulary,
    writer: W,
) -> Result<(), Error> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC}")?;
    for rule in table.iter() {
        let side = |s: &ItemSet| {
            s.iter()
                .map(|i| vocab.name(i).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(
            w,
            "{} {} {}",
            side(&rule.left),
            rule.direction.arrow(),
            side(&rule.right)
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a table, resolving item names through `vocab`.
pub fn read_table<R: Read>(vocab: &Vocabulary, reader: R) -> Result<TranslationTable, Error> {
    let mut lines = BufReader::new(reader).lines();
    let first = lines
        .next()
        .ok_or_else(|| DataError::Format("empty rules input".into()))??;
    if first.trim() != MAGIC {
        return Err(DataError::Format(format!(
            "bad magic: expected {MAGIC:?}, got {:?}",
            first.trim()
        ))
        .into());
    }
    let mut table = TranslationTable::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = lineno + 2;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Longest arrow first so "<->" is not parsed as "<-".
        let (arrow, direction) = if line.contains("<->") {
            ("<->", Direction::Both)
        } else if line.contains("->") {
            ("->", Direction::Forward)
        } else if line.contains("<-") {
            ("<-", Direction::Backward)
        } else {
            return Err(DataError::Format(format!("line {lineno}: no arrow")).into());
        };
        let mut parts = line.splitn(2, arrow);
        let left_txt = parts.next().unwrap_or("");
        let right_txt = parts
            .next()
            .ok_or_else(|| DataError::Format(format!("line {lineno}: malformed rule")))?;
        let parse_side = |txt: &str, expected: Side| -> Result<ItemSet, Error> {
            let mut items = Vec::new();
            for name in txt.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let id = vocab.id_of(name).ok_or_else(|| {
                    DataError::Format(format!("line {lineno}: unknown item {name:?}"))
                })?;
                if vocab.side_of(id) != expected {
                    return Err(DataError::Format(format!(
                        "line {lineno}: item {name:?} on the wrong side"
                    ))
                    .into());
                }
                items.push(id);
            }
            if items.is_empty() {
                return Err(DataError::Format(format!("line {lineno}: empty rule side")).into());
            }
            Ok(ItemSet::from_items(items))
        };
        table.push(TranslationRule::new(
            parse_side(left_txt, Side::Left)?,
            parse_side(right_txt, Side::Right)?,
            direction,
        ));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::new(["rainy", "cold"], ["umbrella", "coat"])
    }

    fn table() -> TranslationTable {
        TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::from_items([2]),
                Direction::Forward,
            ),
            TranslationRule::new(
                ItemSet::from_items([1]),
                ItemSet::from_items([3]),
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::from_items([0]),
                ItemSet::from_items([2, 3]),
                Direction::Backward,
            ),
        ])
    }

    #[test]
    fn roundtrip() {
        let v = vocab();
        let t = table();
        let mut buf = Vec::new();
        write_table(&t, &v, &mut buf).unwrap();
        let t2 = read_table(&v, &buf[..]).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn bidirectional_arrow_not_confused_with_backward() {
        let v = vocab();
        let src = "#2vrules1\ncold <-> coat\n";
        let t = read_table(&v, src.as_bytes()).unwrap();
        assert_eq!(t.rules()[0].direction, Direction::Both);
    }

    #[test]
    fn rejects_unknown_items_and_wrong_sides() {
        let v = vocab();
        assert!(read_table(&v, "#2vrules1\nsnowy -> umbrella\n".as_bytes()).is_err());
        assert!(read_table(&v, "#2vrules1\numbrella -> coat\n".as_bytes()).is_err());
        assert!(read_table(&v, "#2vrules1\nrainy -> \n".as_bytes()).is_err());
        assert!(read_table(&v, "#2vrules1\nrainy umbrella\n".as_bytes()).is_err());
        assert!(read_table(&v, "#nope\n".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let v = vocab();
        let src = "#2vrules1\n# note\n\nrainy -> umbrella\n";
        let t = read_table(&v, src.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }
}
