//! Crash-safe, versioned snapshots of Engine state.
//!
//! Everything the [`crate::Engine`] knows — the mined candidate set, the
//! warmed seed tidsets, fitted models — dies with the process unless it
//! is persisted; this module is the durability layer that lets a
//! restarted server warm from disk instead of paying a full re-mine,
//! under the standing contract that a **warm-started engine is
//! bit-identical to a cold-started one**.
//!
//! # File format
//!
//! A snapshot is a little-endian binary file of checksummed sections:
//!
//! ```text
//! [magic "TV2SNAP1" 8B] [version u32] [section-count u32]
//! repeated per section:
//!   [tag u32] [payload-len u64] [payload ...] [crc32(payload) u32]
//! [trailer magic "TV2END\0\0" 8B] [crc32(everything above) u32]
//! ```
//!
//! Section tags: `1` IDENTITY (dataset schema + per-column
//! [`Tidset::fingerprint`]), `2` CACHE (mining config + candidates),
//! `3` SEEDS (repr-tagged seed tidset pairs, optional), `4` MODEL (a
//! fitted [`TranslatorModel`]). An engine snapshot holds
//! IDENTITY+CACHE[+SEEDS]; a model snapshot holds IDENTITY+MODEL.
//!
//! Integrity is layered: each section carries its own CRC (localises
//! damage for [`inspect`]), the trailer CRC covers the whole file
//! (catches truncation after a valid section), and the IDENTITY section
//! pins the snapshot to the *content* of the dataset it was built from —
//! schema plus a representation-independent fingerprint of every item
//! column — so a snapshot can never warm an engine over different data.
//!
//! # Failure is always recoverable
//!
//! Writes are crash-safe: bytes go to a unique temp file, are fsynced,
//! and reach the final path only via atomic rename (plus a parent-dir
//! fsync), so readers observe either the old file or the complete new
//! one — never a half-write. The reader trusts nothing: bad magic,
//! version skew, truncation anywhere, a single flipped bit, a dataset
//! mismatch — every failure surfaces as a [`SnapshotError`] the engine
//! maps to "fall back to re-mining", never a panic and never a wrong
//! model. The `snapshot.write_fail` / `snapshot.torn` /
//! `snapshot.corrupt` fault points (see [`twoview_runtime::faults`])
//! inject exactly those damages deterministically for the chaos drills.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use twoview_data::codec::{crc32, ByteReader, ByteWriter, CodecError};
use twoview_data::prelude::*;
use twoview_mining::{CandidateCache, TwoViewCandidate};
use twoview_runtime::faults::{self, points};

use crate::model::{ModelScore, TraceStep, TranslatorModel};
use crate::rule::{Direction, TranslationRule};
use crate::table::TranslationTable;

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TV2SNAP1";
/// The format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;
/// File name of the engine snapshot inside a snapshot directory
/// (see `EngineBuilder::snapshot_dir`).
pub const ENGINE_SNAPSHOT_FILE: &str = "engine.snap";

const TRAILER_MAGIC: &[u8; 8] = b"TV2END\0\0";

const SEC_IDENTITY: u32 = 1;
const SEC_CACHE: u32 = 2;
const SEC_SEEDS: u32 = 3;
const SEC_MODEL: u32 = 4;

fn section_name(tag: u32) -> &'static str {
    match tag {
        SEC_IDENTITY => "identity",
        SEC_CACHE => "cache",
        SEC_SEEDS => "seeds",
        SEC_MODEL => "model",
        _ => "unknown",
    }
}

/// Why a snapshot could not be written or loaded. Every load-side
/// variant is **recoverable by design**: the engine counts the
/// rejection and re-mines; nothing here ever panics serving paths.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    VersionSkew {
        /// Version found in the file header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The file ended before the declared structure was complete.
    Truncated(String),
    /// A section (or the whole-file trailer) failed its CRC.
    Checksum(String),
    /// Structure or values violate a format invariant.
    Malformed(String),
    /// The snapshot was built from a different dataset (schema or
    /// per-column fingerprint mismatch against the live dataset).
    DatasetMismatch(String),
    /// A required section is absent.
    MissingSection(&'static str),
}

impl SnapshotError {
    /// Stable short label for observability fields and stats
    /// (`engine.snapshot.reject` events carry it as `reason`).
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::Io(_) => "io",
            SnapshotError::BadMagic => "bad_magic",
            SnapshotError::VersionSkew { .. } => "version_skew",
            SnapshotError::Truncated(_) => "truncated",
            SnapshotError::Checksum(_) => "checksum",
            SnapshotError::Malformed(_) => "malformed",
            SnapshotError::DatasetMismatch(_) => "dataset_mismatch",
            SnapshotError::MissingSection(_) => "missing_section",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "snapshot has bad magic (not a TV2SNAP file)"),
            SnapshotError::VersionSkew { found, supported } => write!(
                f,
                "snapshot version {found} unsupported (this build reads version {supported})"
            ),
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated: {what}"),
            SnapshotError::Checksum(what) => write!(f, "snapshot checksum mismatch: {what}"),
            SnapshotError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
            SnapshotError::DatasetMismatch(what) => {
                write!(f, "snapshot dataset mismatch: {what}")
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot missing required section: {name}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { need, have } => {
                SnapshotError::Truncated(format!("needed {need} bytes, had {have}"))
            }
            CodecError::Malformed(why) => SnapshotError::Malformed(why),
        }
    }
}

// ----------------------------------------------------------------- writing

/// Assembles the framed section stream (header, sections, trailer).
struct SnapshotFile {
    out: ByteWriter,
    sections: u32,
}

impl SnapshotFile {
    fn new() -> SnapshotFile {
        let mut out = ByteWriter::new();
        out.put_raw(SNAPSHOT_MAGIC);
        out.put_u32(SNAPSHOT_VERSION);
        out.put_u32(0); // section count, patched in finish()
        SnapshotFile { out, sections: 0 }
    }

    fn section(&mut self, tag: u32, payload: &[u8]) {
        self.out.put_u32(tag);
        self.out.put_u64(payload.len() as u64);
        self.out.put_raw(payload);
        self.out.put_u32(crc32(payload));
        self.sections += 1;
    }

    fn finish(self) -> Vec<u8> {
        let mut bytes = self.out.into_bytes();
        bytes[12..16].copy_from_slice(&self.sections.to_le_bytes());
        bytes.extend_from_slice(TRAILER_MAGIC);
        let file_crc = crc32(&bytes);
        bytes.extend_from_slice(&file_crc.to_le_bytes());
        bytes
    }
}

/// Monotonic discriminator for temp-file names, so concurrent saves to
/// one path never collide before their atomic renames.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` crash-safely: unique temp file in the same
/// directory → `fsync` → atomic rename → parent-directory `fsync`.
/// Readers therefore see the old content or the complete new content,
/// never a prefix. The three snapshot fault points hook in here:
/// `snapshot.write_fail` fails before any I/O; `snapshot.torn`
/// truncates the written bytes at a seeded offset and `snapshot.corrupt`
/// flips a seeded bit — both then *complete* the rename, planting the
/// damaged file at the final path exactly as a crash without write
/// discipline (or at-rest bit rot) would.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    if faults::should_fire(points::SNAPSHOT_WRITE_FAIL) {
        return Err(SnapshotError::Io(io::Error::other(
            "injected fault: snapshot.write_fail",
        )));
    }
    let mut damaged: Option<Vec<u8>> = None;
    if let Some(draw) = faults::fire_value(points::SNAPSHOT_TORN) {
        let cut = (draw as usize) % bytes.len().max(1);
        damaged = Some(bytes[..cut].to_vec());
    }
    if let Some(draw) = faults::fire_value(points::SNAPSHOT_CORRUPT) {
        let mut v = damaged.take().unwrap_or_else(|| bytes.to_vec());
        if !v.is_empty() {
            let bit = (draw as usize) % (v.len() * 8);
            v[bit / 8] ^= 1 << (bit % 8);
        }
        damaged = Some(v);
    }
    let payload: &[u8] = damaged.as_deref().unwrap_or(bytes);

    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| SnapshotError::Io(io::Error::other("snapshot path has no file name")))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| -> Result<(), SnapshotError> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(payload)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        #[cfg(unix)]
        {
            // Make the rename itself durable: fsync the directory entry.
            fs::File::open(&dir)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

// ----------------------------------------------------------------- reading

/// Strictly parses the framed stream: magic, version, every section CRC,
/// trailer CRC, exact end-of-file. Returns `(tag, payload)` in file
/// order.
fn parse_sections(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .get_raw(8)
        .map_err(|_| SnapshotError::Truncated("file shorter than the magic".into()))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionSkew {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let n_sections = r.get_u32()?;
    let mut sections = Vec::with_capacity(n_sections.min(64) as usize);
    for i in 0..n_sections {
        let tag = r.get_u32()?;
        let len = r.get_len()?;
        let payload = r.get_raw(len).map_err(|_| {
            SnapshotError::Truncated(format!(
                "section {i} ({}) declares {len} payload bytes, only {} remain",
                section_name(tag),
                r.remaining()
            ))
        })?;
        let stored = r.get_u32()?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(SnapshotError::Checksum(format!(
                "section {i} ({}): stored {stored:#010x}, computed {computed:#010x}",
                section_name(tag)
            )));
        }
        sections.push((tag, payload));
    }
    let trailer_start = r.pos();
    let trailer = r
        .get_raw(8)
        .map_err(|_| SnapshotError::Truncated("missing trailer magic".into()))?;
    if trailer != TRAILER_MAGIC {
        return Err(SnapshotError::Malformed("bad trailer magic".into()));
    }
    let stored = r.get_u32().map_err(SnapshotError::from)?;
    let computed = crc32(&bytes[..trailer_start + 8]);
    if stored != computed {
        return Err(SnapshotError::Checksum(format!(
            "file trailer: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    r.expect_end()
        .map_err(|_| SnapshotError::Malformed("trailing bytes after the trailer".into()))?;
    Ok(sections)
}

fn find_section<'a>(sections: &[(u32, &'a [u8])], tag: u32) -> Result<&'a [u8], SnapshotError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, payload)| *payload)
        .ok_or(SnapshotError::MissingSection(section_name(tag)))
}

// ---------------------------------------------------------------- identity

fn identity_payload(data: &TwoViewDataset) -> Vec<u8> {
    let vocab = data.vocab();
    let mut w = ByteWriter::new();
    w.put_str(data.name());
    w.put_u64(data.n_transactions() as u64);
    w.put_u64(vocab.n_left() as u64);
    w.put_u64(vocab.n_right() as u64);
    for item in 0..vocab.n_items() as ItemId {
        w.put_str(vocab.name(item));
        w.put_u64(data.tidset(item).fingerprint());
    }
    w.into_bytes()
}

/// Checks the identity section against the live dataset: transaction
/// count, vocabulary sizes and names, and every column's
/// representation-independent tidset fingerprint. The dataset's display
/// *name* is stored for [`inspect`] but not compared — identity is
/// content, not label.
fn verify_identity(payload: &[u8], data: &TwoViewDataset) -> Result<(), SnapshotError> {
    let vocab = data.vocab();
    let mut r = ByteReader::new(payload);
    let _name = r.get_str()?;
    let n_transactions = r.get_len()?;
    let n_left = r.get_len()?;
    let n_right = r.get_len()?;
    if n_transactions != data.n_transactions() {
        return Err(SnapshotError::DatasetMismatch(format!(
            "snapshot has {n_transactions} transactions, live dataset has {}",
            data.n_transactions()
        )));
    }
    if n_left != vocab.n_left() || n_right != vocab.n_right() {
        return Err(SnapshotError::DatasetMismatch(format!(
            "snapshot vocabulary {n_left}+{n_right}, live {}+{}",
            vocab.n_left(),
            vocab.n_right()
        )));
    }
    for item in 0..vocab.n_items() as ItemId {
        let name = r.get_str()?;
        let fingerprint = r.get_u64()?;
        if name != vocab.name(item) {
            return Err(SnapshotError::DatasetMismatch(format!(
                "item {item} named {name:?} in the snapshot, {:?} live",
                vocab.name(item)
            )));
        }
        let live = data.tidset(item).fingerprint();
        if fingerprint != live {
            return Err(SnapshotError::DatasetMismatch(format!(
                "column fingerprint of item {item} ({name:?}) differs: \
                 snapshot {fingerprint:#018x}, live {live:#018x}"
            )));
        }
    }
    r.expect_end().map_err(SnapshotError::from)
}

// ------------------------------------------------------------------- cache

fn encode_itemset(w: &mut ByteWriter, set: &ItemSet) {
    w.put_u64(set.len() as u64);
    for item in set.iter() {
        w.put_u32(item);
    }
}

/// Decodes an itemset confined to one view: `bounds` is the half-open
/// global-id range of the side the set must live on.
fn decode_itemset(
    r: &mut ByteReader<'_>,
    bounds: std::ops::Range<ItemId>,
    what: &str,
) -> Result<ItemSet, SnapshotError> {
    let n = r.get_len()?;
    let mut items: Vec<ItemId> = Vec::with_capacity(n.min(r.remaining() / 4));
    for _ in 0..n {
        items.push(r.get_u32()?);
    }
    let sorted = items.windows(2).all(|w| w[0] < w[1]);
    let in_bounds = items.iter().all(|i| bounds.contains(i));
    if items.is_empty() || !sorted || !in_bounds {
        return Err(SnapshotError::Malformed(format!(
            "{what} itemset must be non-empty, strictly ascending, within items {}..{}",
            bounds.start, bounds.end
        )));
    }
    Ok(ItemSet::from_sorted(items))
}

fn cache_payload(cache: &CandidateCache, mine_valve: usize) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(cache.minsup() as u64);
    w.put_u8(cache.closed() as u8);
    w.put_u8(cache.truncated() as u8);
    w.put_u64(mine_valve as u64);
    w.put_u64(cache.len() as u64);
    for c in cache.candidates() {
        encode_itemset(&mut w, &c.left);
        encode_itemset(&mut w, &c.right);
        w.put_u64(c.support as u64);
    }
    w.into_bytes()
}

/// The reassembled pieces of an engine snapshot (see
/// [`read_engine_snapshot`]); `CandidateCache::from_parts` turns them
/// back into a serving cache.
#[derive(Debug)]
pub struct EngineSnapshotParts {
    /// Base minsup the cached candidates were mined at.
    pub minsup: usize,
    /// Whether the cache holds closed candidates.
    pub closed: bool,
    /// Whether mining hit the candidate valve.
    pub truncated: bool,
    /// The `max_candidates` valve the cache was mined under.
    pub mine_valve: usize,
    /// The cached candidates, in miner enumeration order.
    pub candidates: Vec<TwoViewCandidate>,
    /// Warmed seed tidset pairs aligned with `candidates`, when the
    /// snapshot carried them.
    pub seeds: Option<Vec<(Tidset, Tidset)>>,
}

fn decode_cache(
    payload: &[u8],
    data: &TwoViewDataset,
) -> Result<(usize, bool, bool, usize, Vec<TwoViewCandidate>), SnapshotError> {
    let vocab = data.vocab();
    let left_range = vocab.items_on(Side::Left);
    let right_range = vocab.items_on(Side::Right);
    let mut r = ByteReader::new(payload);
    let minsup = r.get_len()?;
    let closed = r.get_u8()? != 0;
    let truncated = r.get_u8()? != 0;
    let mine_valve = r.get_len()?;
    let n = r.get_len()?;
    if minsup == 0 {
        return Err(SnapshotError::Malformed("cache minsup must be >= 1".into()));
    }
    let mut candidates = Vec::with_capacity(n.min(payload.len() / 8));
    for _ in 0..n {
        let left = decode_itemset(&mut r, left_range.clone(), "candidate left")?;
        let right = decode_itemset(&mut r, right_range.clone(), "candidate right")?;
        let support = r.get_len()?;
        if support < minsup || support > data.n_transactions() {
            return Err(SnapshotError::Malformed(format!(
                "candidate support {support} outside [{minsup}, {}]",
                data.n_transactions()
            )));
        }
        candidates.push(TwoViewCandidate {
            left,
            right,
            support,
        });
    }
    r.expect_end()?;
    Ok((minsup, closed, truncated, mine_valve, candidates))
}

// ------------------------------------------------------------------- seeds

fn seeds_payload(seeds: &[(Tidset, Tidset)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(seeds.len() as u64);
    for (lt, rt) in seeds {
        lt.encode(&mut w);
        rt.encode(&mut w);
    }
    w.into_bytes()
}

fn decode_seeds(
    payload: &[u8],
    n_candidates: usize,
    n_transactions: usize,
) -> Result<Vec<(Tidset, Tidset)>, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_len()?;
    if n != n_candidates {
        return Err(SnapshotError::Malformed(format!(
            "seeds section holds {n} pairs for {n_candidates} candidates"
        )));
    }
    let mut seeds = Vec::with_capacity(n.min(payload.len() / 16));
    for _ in 0..n {
        let lt = Tidset::decode(&mut r)?;
        let rt = Tidset::decode(&mut r)?;
        if lt.universe() != n_transactions || rt.universe() != n_transactions {
            return Err(SnapshotError::Malformed(format!(
                "seed tidset universe differs from the {n_transactions}-transaction dataset"
            )));
        }
        seeds.push((lt, rt));
    }
    r.expect_end()?;
    Ok(seeds)
}

// ------------------------------------------------------------------- model

fn encode_rule(w: &mut ByteWriter, rule: &TranslationRule) {
    encode_itemset(w, &rule.left);
    encode_itemset(w, &rule.right);
    w.put_u8(match rule.direction {
        Direction::Forward => 0,
        Direction::Backward => 1,
        Direction::Both => 2,
    });
}

fn decode_rule(
    r: &mut ByteReader<'_>,
    vocab: &Vocabulary,
) -> Result<TranslationRule, SnapshotError> {
    let left = decode_itemset(r, vocab.items_on(Side::Left), "rule left")?;
    let right = decode_itemset(r, vocab.items_on(Side::Right), "rule right")?;
    let direction = match r.get_u8()? {
        0 => Direction::Forward,
        1 => Direction::Backward,
        2 => Direction::Both,
        other => {
            return Err(SnapshotError::Malformed(format!(
                "unknown rule direction tag {other}"
            )))
        }
    };
    Ok(TranslationRule {
        left,
        right,
        direction,
    })
}

fn encode_score(w: &mut ByteWriter, score: &ModelScore) {
    w.put_f64(score.l_empty);
    w.put_f64(score.l_total);
    w.put_f64(score.l_table);
    w.put_f64(score.l_correction_left);
    w.put_f64(score.l_correction_right);
    w.put_u64(score.correction_ones as u64);
    w.put_u64(score.total_cells as u64);
}

fn decode_score(r: &mut ByteReader<'_>) -> Result<ModelScore, SnapshotError> {
    Ok(ModelScore {
        l_empty: r.get_f64()?,
        l_total: r.get_f64()?,
        l_table: r.get_f64()?,
        l_correction_left: r.get_f64()?,
        l_correction_right: r.get_f64()?,
        correction_ones: r.get_len()?,
        total_cells: r.get_len()?,
    })
}

fn model_payload(model: &TranslatorModel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(model.table.len() as u64);
    for rule in model.table.iter() {
        encode_rule(&mut w, rule);
    }
    encode_score(&mut w, &model.score);
    w.put_u64(model.trace.len() as u64);
    for step in &model.trace {
        w.put_u64(step.rule_index as u64);
        encode_rule(&mut w, &step.rule);
        w.put_f64(step.gain);
        w.put_f64(step.l_total);
        w.put_f64(step.l_table);
        w.put_f64(step.l_correction_left);
        w.put_f64(step.l_correction_right);
        w.put_u64(step.uncovered_left as u64);
        w.put_u64(step.uncovered_right as u64);
        w.put_u64(step.errors_left as u64);
        w.put_u64(step.errors_right as u64);
    }
    w.put_u64(model.n_candidates as u64);
    w.put_u8(model.truncated as u8);
    w.into_bytes()
}

fn decode_model(payload: &[u8], vocab: &Vocabulary) -> Result<TranslatorModel, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let n_rules = r.get_len()?;
    let mut rules = Vec::with_capacity(n_rules.min(payload.len() / 8));
    for _ in 0..n_rules {
        rules.push(decode_rule(&mut r, vocab)?);
    }
    let score = decode_score(&mut r)?;
    let n_steps = r.get_len()?;
    let mut trace = Vec::with_capacity(n_steps.min(payload.len() / 64));
    for _ in 0..n_steps {
        let rule_index = r.get_len()?;
        let rule = decode_rule(&mut r, vocab)?;
        trace.push(TraceStep {
            rule_index,
            rule,
            gain: r.get_f64()?,
            l_total: r.get_f64()?,
            l_table: r.get_f64()?,
            l_correction_left: r.get_f64()?,
            l_correction_right: r.get_f64()?,
            uncovered_left: r.get_len()?,
            uncovered_right: r.get_len()?,
            errors_left: r.get_len()?,
            errors_right: r.get_len()?,
        });
    }
    let n_candidates = r.get_len()?;
    let truncated = r.get_u8()? != 0;
    r.expect_end()?;
    Ok(TranslatorModel {
        table: TranslationTable::from_rules(rules),
        score,
        trace,
        n_candidates,
        truncated,
    })
}

// -------------------------------------------------------------- public API

/// Writes an engine snapshot (IDENTITY + CACHE, plus SEEDS when the
/// cache is warmed) crash-safely to `path`. Saving never warms the
/// cache as a side effect — an unwarmed cache simply snapshots without
/// a seeds section.
pub fn write_engine_snapshot(
    path: &Path,
    data: &TwoViewDataset,
    cache: &CandidateCache,
    mine_valve: usize,
) -> Result<(), SnapshotError> {
    let mut file = SnapshotFile::new();
    file.section(SEC_IDENTITY, &identity_payload(data));
    file.section(SEC_CACHE, &cache_payload(cache, mine_valve));
    if let Some(seeds) = cache.warmed() {
        file.section(SEC_SEEDS, &seeds_payload(seeds));
    }
    write_atomic(path, &file.finish())
}

/// Loads and fully validates an engine snapshot against the live
/// dataset: structure and CRCs ([`parse_sections`]-level), dataset
/// identity (schema + per-column fingerprints), candidate and seed
/// invariants. Any failure is a recoverable [`SnapshotError`]; on
/// success the returned parts reproduce the saved cache exactly.
pub fn read_engine_snapshot(
    path: &Path,
    data: &TwoViewDataset,
) -> Result<EngineSnapshotParts, SnapshotError> {
    let bytes = fs::read(path)?;
    let sections = parse_sections(&bytes)?;
    verify_identity(find_section(&sections, SEC_IDENTITY)?, data)?;
    let (minsup, closed, truncated, mine_valve, candidates) =
        decode_cache(find_section(&sections, SEC_CACHE)?, data)?;
    let seeds = match find_section(&sections, SEC_SEEDS) {
        Ok(payload) => Some(decode_seeds(
            payload,
            candidates.len(),
            data.n_transactions(),
        )?),
        Err(SnapshotError::MissingSection(_)) => None,
        Err(e) => return Err(e),
    };
    Ok(EngineSnapshotParts {
        minsup,
        closed,
        truncated,
        mine_valve,
        candidates,
        seeds,
    })
}

/// Writes a fitted model (IDENTITY + MODEL) crash-safely to `path`.
pub fn write_model_snapshot(
    path: &Path,
    data: &TwoViewDataset,
    model: &TranslatorModel,
) -> Result<(), SnapshotError> {
    let mut file = SnapshotFile::new();
    file.section(SEC_IDENTITY, &identity_payload(data));
    file.section(SEC_MODEL, &model_payload(model));
    write_atomic(path, &file.finish())
}

/// Loads a fitted model, validating structure, checksums and dataset
/// identity. The round-trip is bit-exact: scores and trace floats are
/// stored as IEEE-754 bit patterns.
pub fn read_model_snapshot(
    path: &Path,
    data: &TwoViewDataset,
) -> Result<TranslatorModel, SnapshotError> {
    let bytes = fs::read(path)?;
    let sections = parse_sections(&bytes)?;
    verify_identity(find_section(&sections, SEC_IDENTITY)?, data)?;
    decode_model(find_section(&sections, SEC_MODEL)?, data.vocab())
}

// ----------------------------------------------------------------- inspect

/// Per-section findings of a lenient [`inspect`] walk.
#[derive(Debug)]
pub struct SectionReport {
    /// Section tag as stored.
    pub tag: u32,
    /// Human name of the tag (`identity` / `cache` / `seeds` / `model`).
    pub name: &'static str,
    /// File offset of the payload.
    pub offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// CRC stored in the file.
    pub crc_stored: u32,
    /// CRC computed over the payload as found.
    pub crc_computed: u32,
}

impl SectionReport {
    /// Whether the stored and computed CRCs agree.
    pub fn crc_ok(&self) -> bool {
        self.crc_stored == self.crc_computed
    }
}

/// Identity summary surfaced by [`inspect`] when the identity section
/// is present and intact.
#[derive(Debug)]
pub struct IdentityReport {
    /// Stored dataset display name.
    pub dataset: String,
    /// Stored transaction count.
    pub n_transactions: usize,
    /// Stored left-vocabulary size.
    pub n_left: usize,
    /// Stored right-vocabulary size.
    pub n_right: usize,
    /// FNV-1a fold of every per-column fingerprint — one digest for the
    /// whole dataset content.
    pub columns_digest: u64,
}

/// What a lenient walk of a (possibly damaged) snapshot found — the
/// debugging view behind `twoview snapshot --inspect`. Unlike the strict
/// loaders, inspection keeps going past damage and *reports* it; only a
/// filesystem error aborts.
#[derive(Debug)]
pub struct InspectReport {
    /// Total file length in bytes.
    pub file_len: usize,
    /// Whether the leading magic matched.
    pub magic_ok: bool,
    /// Version from the header (when readable).
    pub version: Option<u32>,
    /// Whether the header version equals [`SNAPSHOT_VERSION`].
    pub version_ok: bool,
    /// Declared section count (when readable).
    pub declared_sections: Option<u32>,
    /// Sections found walking the file, damaged or not.
    pub sections: Vec<SectionReport>,
    /// Whether the walk ended at a well-formed trailer whose whole-file
    /// CRC matched.
    pub trailer_ok: bool,
    /// Identity summary, when that section parsed.
    pub identity: Option<IdentityReport>,
}

impl InspectReport {
    /// Whether every layer checked out (what a strict load would accept,
    /// short of dataset comparison).
    pub fn intact(&self) -> bool {
        self.magic_ok
            && self.version_ok
            && self.trailer_ok
            && self.declared_sections.map(|n| n as usize) == Some(self.sections.len())
            && self.sections.iter().all(|s| s.crc_ok())
    }

    /// Renders the report as a JSON object (the CLI's output format).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"file_len\": {},\n", self.file_len));
        out.push_str(&format!("  \"magic_ok\": {},\n", self.magic_ok));
        match self.version {
            Some(v) => out.push_str(&format!("  \"version\": {v},\n")),
            None => out.push_str("  \"version\": null,\n"),
        }
        out.push_str(&format!("  \"version_ok\": {},\n", self.version_ok));
        match self.declared_sections {
            Some(n) => out.push_str(&format!("  \"declared_sections\": {n},\n")),
            None => out.push_str("  \"declared_sections\": null,\n"),
        }
        out.push_str("  \"sections\": [\n");
        for (i, s) in self.sections.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"tag\": {}, \"name\": \"{}\", \"offset\": {}, \"payload_len\": {}, \
                 \"crc_stored\": \"{:#010x}\", \"crc_computed\": \"{:#010x}\", \"crc_ok\": {}}}{}\n",
                s.tag,
                s.name,
                s.offset,
                s.payload_len,
                s.crc_stored,
                s.crc_computed,
                s.crc_ok(),
                if i + 1 < self.sections.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"trailer_ok\": {},\n", self.trailer_ok));
        match &self.identity {
            Some(id) => out.push_str(&format!(
                "  \"identity\": {{\"dataset\": \"{}\", \"n_transactions\": {}, \
                 \"n_left\": {}, \"n_right\": {}, \"columns_digest\": \"{:#018x}\"}},\n",
                esc(&id.dataset),
                id.n_transactions,
                id.n_left,
                id.n_right,
                id.columns_digest,
            )),
            None => out.push_str("  \"identity\": null,\n"),
        }
        out.push_str(&format!("  \"intact\": {}\n", self.intact()));
        out.push('}');
        out
    }
}

/// Walks a snapshot file leniently, reporting header fields, per-section
/// checksums and the identity summary without rejecting damage (the
/// whole point is debugging files the strict loaders refuse). Only a
/// filesystem error is fatal.
pub fn inspect(path: &Path) -> Result<InspectReport, SnapshotError> {
    let bytes = fs::read(path)?;
    let mut report = InspectReport {
        file_len: bytes.len(),
        magic_ok: false,
        version: None,
        version_ok: false,
        declared_sections: None,
        sections: Vec::new(),
        trailer_ok: false,
        identity: None,
    };
    let mut r = ByteReader::new(&bytes);
    match r.get_raw(8) {
        Ok(magic) => report.magic_ok = magic == SNAPSHOT_MAGIC,
        Err(_) => return Ok(report),
    }
    if let Ok(v) = r.get_u32() {
        report.version = Some(v);
        report.version_ok = v == SNAPSHOT_VERSION;
    } else {
        return Ok(report);
    }
    let declared = match r.get_u32() {
        Ok(n) => n,
        Err(_) => return Ok(report),
    };
    report.declared_sections = Some(declared);
    for _ in 0..declared {
        let Ok(tag) = r.get_u32() else { break };
        let Ok(len) = r.get_len() else { break };
        let offset = r.pos();
        let Ok(payload) = r.get_raw(len) else { break };
        let Ok(stored) = r.get_u32() else { break };
        let section = SectionReport {
            tag,
            name: section_name(tag),
            offset,
            payload_len: len,
            crc_stored: stored,
            crc_computed: crc32(payload),
        };
        if tag == SEC_IDENTITY && section.crc_ok() {
            report.identity = parse_identity_report(payload);
        }
        report.sections.push(section);
    }
    let trailer_start = r.pos();
    if let (Ok(trailer), Ok(stored)) = (r.get_raw(8), r.get_u32()) {
        report.trailer_ok = trailer == TRAILER_MAGIC
            && stored == crc32(&bytes[..trailer_start + 8])
            && r.is_empty();
    }
    Ok(report)
}

fn parse_identity_report(payload: &[u8]) -> Option<IdentityReport> {
    let mut r = ByteReader::new(payload);
    let dataset = r.get_str().ok()?.to_string();
    let n_transactions = r.get_len().ok()?;
    let n_left = r.get_len().ok()?;
    let n_right = r.get_len().ok()?;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..n_left.checked_add(n_right)? {
        let _name = r.get_str().ok()?;
        let fingerprint = r.get_u64().ok()?;
        digest ^= fingerprint;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(IdentityReport {
        dataset,
        n_transactions,
        n_left,
        n_right,
        columns_digest: digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoview_mining::MinerConfig;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2],
                vec![1, 3],
                vec![1, 3],
                vec![0, 1, 2, 3],
            ],
        )
    }

    fn toy_cache(data: &TwoViewDataset) -> CandidateCache {
        let cfg = MinerConfig::builder()
            .minsup(1)
            .max_itemsets(10_000)
            .build();
        let cache = CandidateCache::mine(data, &cfg, true);
        assert!(cache.tidsets(data).is_some(), "toy cache must warm");
        cache
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "twoview-persist-test-{}-{}",
            std::process::id(),
            name
        ))
    }

    #[test]
    fn engine_snapshot_round_trips_exactly() {
        let data = toy();
        let cache = toy_cache(&data);
        let path = tmp_path("roundtrip.snap");
        write_engine_snapshot(&path, &data, &cache, 2_000_000).unwrap();

        let parts = read_engine_snapshot(&path, &data).unwrap();
        assert_eq!(parts.minsup, 1);
        assert!(parts.closed);
        assert!(!parts.truncated);
        assert_eq!(parts.mine_valve, 2_000_000);
        assert_eq!(parts.candidates, cache.candidates().to_vec());
        let seeds = parts.seeds.as_deref().expect("warmed cache stores seeds");
        let live = cache.warmed().unwrap();
        assert_eq!(seeds.len(), live.len());
        for ((sl, sr), (ll, lr)) in seeds.iter().zip(live) {
            assert_eq!(sl.fingerprint(), ll.fingerprint());
            assert_eq!(sr.fingerprint(), lr.fingerprint());
            assert_eq!(sl.heap_bytes(), ll.heap_bytes());
            assert_eq!(sr.heap_bytes(), lr.heap_bytes());
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn model_snapshot_is_bit_exact() {
        let data = toy();
        let model = crate::select::translator_select(
            &data,
            &crate::select::SelectConfig::builder()
                .k(2)
                .minsup(1)
                .build(),
        );
        let path = tmp_path("model.snap");
        write_model_snapshot(&path, &data, &model).unwrap();
        let back = read_model_snapshot(&path, &data).unwrap();

        assert_eq!(back.table.rules(), model.table.rules());
        assert_eq!(back.score.l_total.to_bits(), model.score.l_total.to_bits());
        assert_eq!(back.score.l_empty.to_bits(), model.score.l_empty.to_bits());
        assert_eq!(back.score.correction_ones, model.score.correction_ones);
        assert_eq!(back.trace.len(), model.trace.len());
        for (a, b) in back.trace.iter().zip(&model.trace) {
            assert_eq!(a.rule_index, b.rule_index);
            assert_eq!(a.rule, b.rule);
            assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            assert_eq!(a.l_total.to_bits(), b.l_total.to_bits());
            assert_eq!(a.uncovered_left, b.uncovered_left);
            assert_eq!(a.errors_right, b.errors_right);
        }
        assert_eq!(back.n_candidates, model.n_candidates);
        assert_eq!(back.truncated, model.truncated);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reader_rejects_every_structural_damage() {
        let data = toy();
        let cache = toy_cache(&data);
        let path = tmp_path("damage.snap");
        write_engine_snapshot(&path, &data, &cache, 100).unwrap();
        let good = fs::read(&path).unwrap();
        let _ = fs::remove_file(&path);

        let check = |bytes: &[u8], want_kind: &str, what: &str| {
            let p = tmp_path("damage-case.snap");
            fs::write(&p, bytes).unwrap();
            let err = read_engine_snapshot(&p, &data).expect_err(what);
            assert_eq!(err.kind(), want_kind, "{what}: got {err}");
            let _ = fs::remove_file(&p);
        };

        // Bad magic.
        let mut b = good.clone();
        b[0] ^= 0xff;
        check(&b, "bad_magic", "flipped magic byte");

        // Version skew.
        let mut b = good.clone();
        b[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        check(&b, "version_skew", "bumped version");

        // Truncation at every prefix length is *some* rejection, never Ok.
        for cut in 0..good.len() {
            let p = tmp_path("trunc.snap");
            fs::write(&p, &good[..cut]).unwrap();
            let err =
                read_engine_snapshot(&p, &data).expect_err("truncated snapshot must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated(_)
                        | SnapshotError::Checksum(_)
                        | SnapshotError::Malformed(_)
                        | SnapshotError::BadMagic
                ),
                "cut at {cut}: unexpected error {err}"
            );
            let _ = fs::remove_file(&p);
        }

        // Any single-bit flip in a payload or CRC region is caught.
        for &pos in &[20usize, good.len() / 2, good.len() - 5, good.len() - 1] {
            let mut b = good.clone();
            b[pos] ^= 0x04;
            let p = tmp_path("flip.snap");
            fs::write(&p, &b).unwrap();
            assert!(
                read_engine_snapshot(&p, &data).is_err(),
                "bit flip at byte {pos} must reject"
            );
            let _ = fs::remove_file(&p);
        }
    }

    #[test]
    fn reader_rejects_dataset_mismatch() {
        let data = toy();
        let cache = toy_cache(&data);
        let path = tmp_path("identity.snap");
        write_engine_snapshot(&path, &data, &cache, 100).unwrap();

        // Same schema, different content: one extra item in one row.
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        let other = TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2, 3],
                vec![1, 3],
                vec![1, 3],
                vec![0, 1, 2, 3],
            ],
        );
        let err = read_engine_snapshot(&path, &other).unwrap_err();
        assert_eq!(err.kind(), "dataset_mismatch");

        // Different schema entirely.
        let vocab = Vocabulary::new(["a"], ["x"]);
        let small = TwoViewDataset::from_transactions(vocab, &vec![vec![0, 1]; 6]);
        let err = read_engine_snapshot(&path, &small).unwrap_err();
        assert_eq!(err.kind(), "dataset_mismatch");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let data = toy();
        let err = read_engine_snapshot(&tmp_path("nope.snap"), &data).unwrap_err();
        assert_eq!(err.kind(), "io");
    }

    #[test]
    fn inspect_reports_intact_and_damaged_files() {
        let data = toy();
        let cache = toy_cache(&data);
        let path = tmp_path("inspect.snap");
        write_engine_snapshot(&path, &data, &cache, 100).unwrap();

        let report = inspect(&path).unwrap();
        assert!(report.intact());
        assert!(report.magic_ok && report.version_ok && report.trailer_ok);
        assert_eq!(report.version, Some(SNAPSHOT_VERSION));
        assert_eq!(report.declared_sections, Some(3));
        assert_eq!(
            report.sections.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["identity", "cache", "seeds"]
        );
        let id = report.identity.as_ref().expect("identity parses");
        assert_eq!(id.n_transactions, 6);
        assert_eq!((id.n_left, id.n_right), (2, 2));
        let json = report.to_json();
        assert!(json.contains("\"intact\": true"));
        assert!(json.contains("\"name\": \"cache\""));

        // Damage the cache payload: inspect still walks, flags the CRC.
        let mut bytes = fs::read(&path).unwrap();
        let cache_off = report.sections[1].offset;
        bytes[cache_off] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let damaged = inspect(&path).unwrap();
        assert!(!damaged.intact());
        assert!(damaged.sections[0].crc_ok());
        assert!(!damaged.sections[1].crc_ok());
        assert!(damaged.to_json().contains("\"intact\": false"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_fault_points_inject_deterministically() {
        let data = toy();
        let cache = toy_cache(&data);
        let path = tmp_path("faults.snap");

        // write_fail: save errors, nothing lands at the path.
        faults::configure(faults::FaultPlan::new().point(points::SNAPSHOT_WRITE_FAIL, 1.0, 7));
        let err = write_engine_snapshot(&path, &data, &cache, 100).unwrap_err();
        assert_eq!(err.kind(), "io");
        faults::clear();
        assert!(!path.exists());

        // torn: the file lands, truncated, and the reader rejects it.
        faults::configure(faults::FaultPlan::new().point(points::SNAPSHOT_TORN, 1.0, 7));
        write_engine_snapshot(&path, &data, &cache, 100).unwrap();
        faults::clear();
        let torn_len = fs::metadata(&path).unwrap().len();
        assert!(read_engine_snapshot(&path, &data).is_err());

        // Same seed, same tear point.
        faults::configure(faults::FaultPlan::new().point(points::SNAPSHOT_TORN, 1.0, 7));
        write_engine_snapshot(&path, &data, &cache, 100).unwrap();
        faults::clear();
        assert_eq!(fs::metadata(&path).unwrap().len(), torn_len);

        // corrupt: full length, one flipped bit, rejected.
        faults::configure(faults::FaultPlan::new().point(points::SNAPSHOT_CORRUPT, 1.0, 11));
        write_engine_snapshot(&path, &data, &cache, 100).unwrap();
        faults::clear();
        let good_len = {
            write_engine_snapshot(&tmp_path("clean.snap"), &data, &cache, 100).unwrap();
            let n = fs::metadata(tmp_path("clean.snap")).unwrap().len();
            let _ = fs::remove_file(tmp_path("clean.snap"));
            n
        };
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);
        assert!(read_engine_snapshot(&path, &data).is_err());
        let _ = fs::remove_file(&path);
    }
}
