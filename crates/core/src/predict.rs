//! Translation as prediction: quality measures for `TRANSLATE`'s output.
//!
//! A translation table is also a predictive model: given one view of a new
//! object, `TRANSLATE` predicts the other view. The corrections measure the
//! prediction error — `|U|` are misses (false negatives), `|E|` are false
//! positives. This module turns that into standard retrieval metrics,
//! supporting the paper's claim that rules "generalize well" and enabling
//! the compression-for-other-tasks usage its related-work section cites.

use twoview_data::prelude::*;

use crate::table::TranslationTable;

/// Micro-averaged prediction quality of a table in one direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictionQuality {
    /// Predicted ones that are correct / all predicted ones.
    pub precision: f64,
    /// Predicted ones that are correct / all actual ones.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Transactions whose target view is reproduced exactly.
    pub exact_matches: usize,
    /// True positives (ones predicted and present).
    pub true_positives: usize,
    /// False positives (`|E|`: predicted but absent).
    pub false_positives: usize,
    /// False negatives (`|U|`: present but not predicted).
    pub false_negatives: usize,
}

/// Evaluates how well `table` translates `data` from `from` to the
/// opposite view, micro-averaged over all transactions.
///
/// Computed through the columnar [`CoverState`](crate::cover::CoverState) rather than by
/// re-translating every transaction: applying only the `from`-firing half
/// of each rule makes `covered` exactly the true positives, `U` the false
/// negatives, and `E` the false positives, and the exact-match count is
/// the number of empty rows in the batched column→row transposition
/// ([`CoverState::correction_rows_batch`](crate::cover::CoverState::correction_rows_batch)) — a handful of column kernels
/// instead of `O(|D| · |T|)` per-transaction rule firings.
pub fn prediction_quality(
    data: &TwoViewDataset,
    table: &TranslationTable,
    from: Side,
) -> PredictionQuality {
    let target = from.opposite();
    // Direction-restricted state: only the `from → target` half of each
    // rule fires, matching what TRANSLATE predicts from `from`.
    let state = crate::translate::directional_state(data, table, from);
    // predicted = (actual \ U) ∪ E, so the micro counts fall out of the
    // cover tallies directly.
    let fneg = state.n_uncovered(target);
    let fp = state.n_errors(target);
    let tp = data.ones(target) - fneg;
    let exact = state
        .correction_rows_batch(target)
        .iter()
        .filter(|row| row.is_empty())
        .count();
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fneg == 0 {
        0.0
    } else {
        tp as f64 / (tp + fneg) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PredictionQuality {
        precision,
        recall,
        f1,
        exact_matches: exact,
        true_positives: tp,
        false_positives: fp,
        false_negatives: fneg,
    }
}

/// Predicts the opposite view for an out-of-sample transaction given as a
/// row bitmap over `from`'s local indices. Returns the predicted target-
/// side row.
pub fn predict_row(
    data: &TwoViewDataset,
    table: &TranslationTable,
    from: Side,
    source_row: &Bitmap,
) -> Bitmap {
    let vocab = data.vocab();
    let mut out = Bitmap::new(vocab.n_on(from.opposite()));
    for rule in table.rules_from(from) {
        // lint: allow(panic_hygiene) — rules_from(from) yields only rules whose antecedent lives in `from`
        let antecedent = rule.antecedent(from).expect("firing rule");
        if antecedent
            .iter()
            .all(|i| source_row.contains(vocab.local_index(i)))
        {
            for i in rule.consequent(from).iter() {
                out.insert(vocab.local_index(i));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Direction, TranslationRule};
    use crate::translate::translate_transaction;

    fn toy() -> (TwoViewDataset, TranslationTable) {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        let data = TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2], // a|x: predicted exactly
                vec![0, 2],
                vec![0, 2, 3], // a|x,y: y missed
                vec![1, 3],    // b|y: nothing predicted
                vec![0],       // a|: x predicted falsely
            ],
        );
        let table = TranslationTable::from_rules([TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([2]),
            Direction::Both,
        )]);
        (data, table)
    }

    #[test]
    fn metrics_count_exactly() {
        let (data, table) = toy();
        let q = prediction_quality(&data, &table, Side::Left);
        // Predictions: t0 {x} t1 {x} t2 {x} t3 {} t4 {x}.
        // TP = 3 (t0,t1,t2); FP = 1 (t4); FN = 2 (t2:y, t3:y).
        assert_eq!(q.true_positives, 3);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 2);
        assert!((q.precision - 0.75).abs() < 1e-12);
        assert!((q.recall - 0.6).abs() < 1e-12);
        assert_eq!(q.exact_matches, 2); // t0, t1
        let f1 = 2.0 * 0.75 * 0.6 / (0.75 + 0.6);
        assert!((q.f1 - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_table_has_zero_precision_recall() {
        let (data, _) = toy();
        let q = prediction_quality(&data, &TranslationTable::new(), Side::Left);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
        assert_eq!(q.exact_matches, 1); // t4 has an empty right view
    }

    #[test]
    fn reverse_direction_uses_backward_rules() {
        let (data, table) = toy();
        let q = prediction_quality(&data, &table, Side::Right);
        // {x} predicts {a} in t0,t1,t2 (all contain a): TP=3, FP=0.
        assert_eq!(q.true_positives, 3);
        assert_eq!(q.false_positives, 0);
        assert!(q.precision > 0.99);
    }

    #[test]
    fn out_of_sample_prediction() {
        let (data, table) = toy();
        // New object with left view {a}.
        let row = Bitmap::from_indices(2, [0usize]);
        let predicted = predict_row(&data, &table, Side::Left, &row);
        assert_eq!(predicted.to_vec(), vec![0]); // x

        // New object with left view {b}: no rule fires.
        let row = Bitmap::from_indices(2, [1usize]);
        assert!(predict_row(&data, &table, Side::Left, &row).is_empty());
    }

    #[test]
    fn cover_state_metrics_match_naive_translation() {
        // The columnar/batched implementation must agree with a literal
        // re-translation of every transaction, for either direction and
        // for tables mixing all three rule directions.
        let vocab = Vocabulary::unnamed(4, 4);
        let data = TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 4, 5],
                vec![0, 1, 4],
                vec![0, 2, 6],
                vec![1, 5, 7],
                vec![0, 1, 2, 4, 5, 6],
                vec![3],
                vec![7],
                vec![0, 4, 7],
            ],
        );
        let table = TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::from_items([4, 5]),
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::from_items([2]),
                ItemSet::from_items([6]),
                Direction::Forward,
            ),
            TranslationRule::new(
                ItemSet::from_items([3]),
                ItemSet::from_items([7]),
                Direction::Backward,
            ),
            // Overlapping consequent: unions must not double-count.
            TranslationRule::new(
                ItemSet::from_items([0]),
                ItemSet::from_items([4]),
                Direction::Forward,
            ),
        ]);
        for from in Side::BOTH {
            let target = from.opposite();
            let (mut tp, mut fp, mut fneg, mut exact) = (0, 0, 0, 0);
            for t in 0..data.n_transactions() {
                let predicted = translate_transaction(&data, &table, from, t);
                let actual = data.row(target, t);
                let inter = predicted.intersection_len(actual);
                tp += inter;
                fp += predicted.len() - inter;
                fneg += actual.len() - inter;
                if &predicted == actual {
                    exact += 1;
                }
            }
            let q = prediction_quality(&data, &table, from);
            assert_eq!(q.true_positives, tp, "from {from}");
            assert_eq!(q.false_positives, fp, "from {from}");
            assert_eq!(q.false_negatives, fneg, "from {from}");
            assert_eq!(q.exact_matches, exact, "from {from}");
        }
    }

    #[test]
    fn in_sample_prediction_matches_translate() {
        let (data, table) = toy();
        for t in 0..data.n_transactions() {
            assert_eq!(
                predict_row(&data, &table, Side::Left, data.row(Side::Left, t)),
                translate_transaction(&data, &table, Side::Left, t)
            );
        }
    }
}
