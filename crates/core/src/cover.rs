//! Incremental cover state: `U`/`E` tables, encoded lengths, and rule gains.
//!
//! The paper splits each correction table `C` into `U` (items still
//! *uncovered* after translation) and `E` (items introduced *erroneously*);
//! `C = U ∪ E` and the two are disjoint (§5.1). [`CoverState`] maintains
//! both per side, together with all encoded-length totals.
//!
//! ## Columnar layout
//!
//! The tables are stored **transposed**: one *tidset column* per target-side
//! item (`covered[item]`, `errors[item]`, each an adaptive sparse/dense
//! [`Tidset`] over `0..|D|`) instead of one row bitmap per transaction.
//! Gain evaluation for a candidate rule (`Δ_{D,T}(X ◇ Y)`, Eq. 1–2) then
//! collapses from `O(|supp| · |Y|)` per-transaction probes into `|Y|` fused
//! kernels — word-parallel popcounts when the operands are dense,
//! cardinality-proportional probe loops when they are sparse (columns start
//! sparse-empty and promote only once rules cover enough tids):
//!
//! ```text
//! Δ = Σ_{y ∈ Y} w_y · ( |tids ∧ supp(y) ∧ ¬covered[y]|
//!                     − |tids ∧ ¬supp(y) ∧ ¬errors[y]| )
//! ```
//!
//! with `tids = supp(X)` and `w_y` the item's Shannon code length — see
//! [`Tidset::and_and_not_len`] and [`Tidset::and_not_not_len`]. Rule
//! application updates the same columns incrementally. Row views
//! ([`CoverState::correction_row`]) are reconstructed on demand; the
//! per-transaction `tub` column ([`CoverState::uncovered_weight`]) is
//! maintained exactly as before.
//!
//! The pre-columnar row-major implementation survives as
//! [`crate::cover_rows::RowCoverState`] for differential testing and as the
//! `perfsuite` benchmark baseline; the two are bit-identical in semantics.
//!
//! Invariants (checked by [`CoverState::verify`] and the property tests):
//! `covered[y] ⊆ supp(y)`, `errors[y] ∩ supp(y) = ∅`, the reconstructed
//! `C_t = U_t ∪ E_t` equals the XOR-correction of the standalone
//! [`crate::translate`] scheme and the row-major reference, and every
//! cached total equals its from-scratch recomputation.

use twoview_data::prelude::*;

use crate::cover_rows::RowCoverState;
use crate::encoding::CodeLengths;
use crate::rule::{Direction, TranslationRule};
use crate::table::TranslationTable;

/// Mutable model-construction state over an immutable dataset.
#[derive(Clone, Debug)]
pub struct CoverState<'d> {
    data: &'d TwoViewDataset,
    codes: CodeLengths,
    /// Per side, per local item: tids where the item is predicted correctly.
    covered: [Vec<Tidset>; 2],
    /// Per side, per local item: tids where the item is predicted erroneously.
    errors: [Vec<Tidset>; 2],
    /// Per side, per transaction: `L(U_t | D_side)` — the paper's `tub(t)`.
    uncovered_weight: [Vec<f64>; 2],
    /// Per side: `L(C_side | T)`.
    l_corrections: [f64; 2],
    /// `L(T)`.
    l_table: f64,
    /// Per side: `|U|` (number of uncovered ones).
    n_uncovered: [usize; 2],
    /// Per side: `|E|` (number of erroneous ones).
    n_errors: [usize; 2],
    /// When [`CoverState::set_tub_delta_log`] is on, every tub decrement is
    /// recorded as `(target side index, tid, weight removed)` so callers
    /// (SELECT/EXACT incremental rub sums) can replay exactly the mass each
    /// rule application drained from the tub columns.
    tub_deltas: Vec<(u8, u32, f64)>,
    log_tub_deltas: bool,
    table: TranslationTable,
}

#[inline]
fn ix(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

impl<'d> CoverState<'d> {
    /// Fresh state for an empty translation table: everything uncovered.
    pub fn new(data: &'d TwoViewDataset) -> Self {
        let codes = CodeLengths::new(data);
        let n = data.n_transactions();
        let vocab = data.vocab();
        let mut state = CoverState {
            covered: [
                vec![Tidset::new(n); vocab.n_left()],
                vec![Tidset::new(n); vocab.n_right()],
            ],
            errors: [
                vec![Tidset::new(n); vocab.n_left()],
                vec![Tidset::new(n); vocab.n_right()],
            ],
            uncovered_weight: [Vec::with_capacity(n), Vec::with_capacity(n)],
            l_corrections: [0.0, 0.0],
            l_table: 0.0,
            n_uncovered: [0, 0],
            n_errors: [0, 0],
            tub_deltas: Vec::new(),
            log_tub_deltas: false,
            table: TranslationTable::new(),
            codes,
            data,
        };
        for side in Side::BOTH {
            let table = state.codes.side_table(side);
            let mut total = 0.0;
            let mut count = 0usize;
            for t in 0..n {
                let row = data.row(side, t);
                let w = row.weighted_len(table);
                state.uncovered_weight[ix(side)].push(w);
                total += w;
                count += row.len();
            }
            state.l_corrections[ix(side)] = total;
            state.n_uncovered[ix(side)] = count;
        }
        state
    }

    /// Builds a state by applying every rule of `table` to a fresh state.
    ///
    /// The result is independent of rule order (covered/error sets are
    /// unions over rules), matching the paper's order-free semantics.
    pub fn from_table(data: &'d TwoViewDataset, table: &TranslationTable) -> Self {
        let mut state = CoverState::new(data);
        for rule in table.iter() {
            state.apply_rule(rule.clone());
        }
        state
    }

    /// The underlying dataset.
    pub fn data(&self) -> &'d TwoViewDataset {
        self.data
    }

    /// The per-item code lengths.
    pub fn codes(&self) -> &CodeLengths {
        &self.codes
    }

    /// The rules applied so far.
    pub fn table(&self) -> &TranslationTable {
        &self.table
    }

    /// Consumes the state, returning the built table.
    pub fn into_table(self) -> TranslationTable {
        self.table
    }

    /// `L(T)`.
    pub fn l_table(&self) -> f64 {
        self.l_table
    }

    /// `L(C_side | T)`; the paper's `L(D_{→side} | T)`.
    pub fn l_correction(&self, side: Side) -> f64 {
        self.l_corrections[ix(side)]
    }

    /// Total encoded size `L(D_{L↔R}, T) = L(T) + L(C_L|T) + L(C_R|T)`.
    pub fn total_length(&self) -> f64 {
        self.l_table + self.l_corrections[0] + self.l_corrections[1]
    }

    /// `|U|` on `side`.
    pub fn n_uncovered(&self, side: Side) -> usize {
        self.n_uncovered[ix(side)]
    }

    /// `|E|` on `side`.
    pub fn n_errors(&self, side: Side) -> usize {
        self.n_errors[ix(side)]
    }

    /// `|C| = |U| + |E|` summed over both sides.
    pub fn correction_ones(&self) -> usize {
        self.n_uncovered[0] + self.n_uncovered[1] + self.n_errors[0] + self.n_errors[1]
    }

    /// `L(U_t | D_side)` — the transaction-based upper bound `tub`.
    #[inline]
    pub fn uncovered_weight(&self, side: Side, t: usize) -> f64 {
        self.uncovered_weight[ix(side)][t]
    }

    /// The whole `tub` column of one side.
    pub fn uncovered_weights(&self, side: Side) -> &[f64] {
        &self.uncovered_weight[ix(side)]
    }

    /// Turns tub-delta logging on or off (the buffer is cleared either
    /// way). While on, every `uncovered_weight` decrement made by rule
    /// application is appended to an internal log for
    /// [`CoverState::take_tub_deltas`].
    pub fn set_tub_delta_log(&mut self, on: bool) {
        self.log_tub_deltas = on;
        self.tub_deltas.clear();
    }

    /// Drains the logged tub decrements: `(ix(target side), tid, weight)`
    /// triples in application order. Empty unless logging is enabled.
    pub fn take_tub_deltas(&mut self) -> Vec<(u8, u32, f64)> {
        std::mem::take(&mut self.tub_deltas)
    }

    /// The covered-tids column of the `local`-th item of `side`.
    #[inline]
    pub fn covered_tids(&self, side: Side, local: usize) -> &Tidset {
        &self.covered[ix(side)][local]
    }

    /// The error-tids column of the `local`-th item of `side`.
    #[inline]
    pub fn error_tids(&self, side: Side, local: usize) -> &Tidset {
        &self.errors[ix(side)][local]
    }

    /// The correction row `C_t = U_t ∪ E_t` on `side` (local indices),
    /// reconstructed from the item columns on demand.
    ///
    /// One row costs a probe of every item column; paths that need many
    /// rows (eval, reporting, [`CoverState::verify`]) should use the
    /// batched transposition [`CoverState::correction_rows_batch`] instead.
    pub fn correction_row(&self, side: Side, t: usize) -> Bitmap {
        let i = ix(side);
        let mut c = Bitmap::new(self.data.vocab().n_on(side));
        // U_t: present but not covered.
        for l in self.data.row(side, t).iter() {
            if !self.covered[i][l].contains(t) {
                c.insert(l);
            }
        }
        // E_t: predicted although absent.
        for (l, col) in self.errors[i].iter().enumerate() {
            if col.contains(t) {
                c.insert(l);
            }
        }
        c
    }

    /// All correction rows `C_t = U_t ∪ E_t` of `side` at once — the
    /// batched column→row transposition.
    ///
    /// Instead of probing every item column per row (`O(|D| · |I_side|)`
    /// word-indexed probes for the full table), this makes **one pass over
    /// the columns**, scattering each column's uncovered tids
    /// (`supp(l) \ covered[l]`, streamed without materialising the
    /// difference) and error tids into the row bitmaps. Row `t` of the
    /// result equals [`CoverState::correction_row`]`(side, t)` exactly.
    pub fn correction_rows_batch(&self, side: Side) -> Vec<Bitmap> {
        let i = ix(side);
        let n = self.data.n_transactions();
        let width = self.data.vocab().n_on(side);
        let mut rows = vec![Bitmap::new(width); n];
        for l in 0..width {
            // U column: present but not covered.
            let supp = self.data.column(side, l);
            for t in supp.iter_difference(&self.covered[i][l]) {
                rows[t].insert(l);
            }
            // E column: predicted although absent.
            for t in self.errors[i][l].iter() {
                rows[t].insert(l);
            }
        }
        rows
    }

    /// Data-gain of firing `consequent` into `target = from.opposite()` for
    /// every transaction in `antecedent_tids` (Eq. 2, one direction):
    ///
    /// `Σ_t  L(Y ∩ U_t | D) − L(Y \ (t ∪ E_t) | D)`,
    ///
    /// computed column-wise as `|Y|` fused popcount kernels over the
    /// transposed tables (see the module docs).
    pub fn directional_gain(
        &self,
        from: Side,
        antecedent_tids: &Tidset,
        consequent: &ItemSet,
    ) -> f64 {
        let target = from.opposite();
        let ti = ix(target);
        let vocab = self.data.vocab();
        let mut gain = 0.0;
        for item in consequent.iter() {
            let l = vocab.local_index(item);
            let supp = self.data.column(target, l);
            // Hits: rule fires, item present, not yet covered.
            let hits = antecedent_tids.and_and_not_len(supp, &self.covered[ti][l]);
            // Misses: rule fires, item absent, not yet an error.
            let misses = antecedent_tids.and_not_not_len(supp, &self.errors[ti][l]);
            gain += self.codes.item(item) * (hits as f64 - misses as f64);
        }
        gain
    }

    /// Gains of the three rules constructible from the pair `(X, Y)`,
    /// in [`Direction::ALL`] order, given the antecedent tidsets.
    ///
    /// `Δ_{D,T}(X ◇ Y) = Δ_{D|T}(X ◇ Y) − L(X ◇ Y)` (Eq. 1); the
    /// bidirectional data-gain is the sum of the two unidirectional ones.
    pub fn pair_gains(
        &self,
        left: &ItemSet,
        right: &ItemSet,
        left_tids: &Tidset,
        right_tids: &Tidset,
    ) -> [f64; 3] {
        let g_fwd = self.directional_gain(Side::Left, left_tids, right);
        let g_bwd = self.directional_gain(Side::Right, right_tids, left);
        let base = self.codes.itemset(left) + self.codes.itemset(right);
        [
            g_fwd - (base + 2.0),         // X → Y
            g_bwd - (base + 2.0),         // X ← Y
            g_fwd + g_bwd - (base + 1.0), // X ↔ Y
        ]
    }

    /// Gain of a single rule (recomputes the antecedent tidsets).
    pub fn rule_gain(&self, rule: &TranslationRule) -> f64 {
        let left_tids = self.data.support_set(&rule.left);
        let right_tids = self.data.support_set(&rule.right);
        let gains = self.pair_gains(&rule.left, &rule.right, &left_tids, &right_tids);
        match rule.direction {
            Direction::Forward => gains[0],
            Direction::Backward => gains[1],
            Direction::Both => gains[2],
        }
    }

    /// Applies a rule: updates covered/error columns and all cached totals.
    pub fn apply_rule(&mut self, rule: TranslationRule) {
        if rule.direction.fires_from(Side::Left) {
            let tids = self.data.support_set(&rule.left);
            self.apply_directional(Side::Left, &tids, &rule.right);
        }
        if rule.direction.fires_from(Side::Right) {
            let tids = self.data.support_set(&rule.right);
            self.apply_directional(Side::Right, &tids, &rule.left);
        }
        self.l_table += self.codes.rule(&rule);
        self.table.push(rule);
    }

    fn apply_directional(&mut self, from: Side, antecedent_tids: &Tidset, consequent: &ItemSet) {
        let target = from.opposite();
        let ti = ix(target);
        let vocab = self.data.vocab();
        for item in consequent.iter() {
            let l = vocab.local_index(item);
            let w = self.codes.item(item);
            let supp = self.data.column(target, l);
            // Hits become covered; account only for the newly covered tids
            // (each also shrinks its transaction's tub). Unioning just the
            // fresh tids equals unioning all hits: the rest are covered
            // already.
            let hits = antecedent_tids.and(supp);
            let fresh_cov = hits.difference(&self.covered[ti][l]);
            for t in fresh_cov.iter() {
                self.l_corrections[ti] -= w;
                self.uncovered_weight[ti][t] -= w;
                self.n_uncovered[ti] -= 1;
                if self.log_tub_deltas {
                    self.tub_deltas.push((ti as u8, t as u32, w));
                }
            }
            self.covered[ti][l].union_with(&fresh_cov);
            // Misses become errors; only fresh ones cost anything, and they
            // never touch the tub column (errors are not uncovered mass).
            let misses = antecedent_tids.difference(supp);
            let fresh_err = misses.difference(&self.errors[ti][l]);
            let fresh = fresh_err.len();
            self.l_corrections[ti] += w * fresh as f64;
            self.n_errors[ti] += fresh;
            self.errors[ti][l].union_with(&fresh_err);
        }
    }

    /// Recomputes every cached quantity from scratch and compares (within
    /// `tol` bits), checks the columnar invariants, and cross-checks the
    /// whole state against the row-major reference implementation
    /// ([`RowCoverState`]) built from the same table. Returns a description
    /// of the first mismatch, `None` if consistent. Test / debugging aid.
    pub fn verify(&self, tol: f64) -> Option<String> {
        let fresh = CoverState::from_table(self.data, &self.table);
        let rows = RowCoverState::from_table(self.data, &self.table);
        for side in Side::BOTH {
            let i = ix(side);
            if (self.l_corrections[i] - fresh.l_corrections[i]).abs() > tol {
                return Some(format!(
                    "L(C_{side}) drifted: {} vs {}",
                    self.l_corrections[i], fresh.l_corrections[i]
                ));
            }
            if (self.l_corrections[i] - rows.l_correction(side)).abs() > tol {
                return Some(format!(
                    "L(C_{side}) disagrees with row reference: {} vs {}",
                    self.l_corrections[i],
                    rows.l_correction(side)
                ));
            }
            if self.n_uncovered[i] != fresh.n_uncovered[i]
                || self.n_uncovered[i] != rows.n_uncovered(side)
            {
                return Some(format!("|U_{side}| mismatch"));
            }
            if self.n_errors[i] != fresh.n_errors[i] || self.n_errors[i] != rows.n_errors(side) {
                return Some(format!("|E_{side}| mismatch"));
            }
            for l in 0..self.data.vocab().n_on(side) {
                let supp = self.data.column(side, l);
                if !self.covered[i][l].is_subset(supp) {
                    return Some(format!("covered[{l}] ⊄ supp at side {side}"));
                }
                if !self.errors[i][l].is_disjoint(supp) {
                    return Some(format!("errors[{l}] ∩ supp ≠ ∅ at side {side}"));
                }
            }
            let batch = self.correction_rows_batch(side);
            for (t, batch_row) in batch.iter().enumerate() {
                if (self.uncovered_weight[i][t] - rows.uncovered_weight(side, t)).abs() > tol {
                    return Some(format!("tub disagrees with row reference at ({side},{t})"));
                }
                if batch_row != &rows.correction_row(side, t) {
                    return Some(format!(
                        "correction row disagrees with row reference at ({side},{t})"
                    ));
                }
                if batch_row != &self.correction_row(side, t) {
                    return Some(format!(
                        "batched transposition disagrees with item-probe row at ({side},{t})"
                    ));
                }
            }
        }
        if (self.l_table - fresh.l_table).abs() > tol {
            return Some("L(T) drifted".into());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3],
                vec![0, 2, 5],
                vec![1, 4],
                vec![0, 1, 3, 4, 5],
                vec![2],
            ],
        )
    }

    fn rule_ab_xy(dir: Direction) -> TranslationRule {
        TranslationRule::new(
            ItemSet::from_items([0, 1]),
            ItemSet::from_items([3, 4]),
            dir,
        )
    }

    #[test]
    fn initial_state_equals_empty_model() {
        let d = toy();
        let s = CoverState::new(&d);
        let codes = CodeLengths::new(&d);
        assert!((s.total_length() - codes.empty_model(&d)).abs() < 1e-9);
        assert_eq!(s.n_errors(Side::Left) + s.n_errors(Side::Right), 0);
        assert_eq!(
            s.n_uncovered(Side::Left),
            d.ones(Side::Left),
            "initially everything uncovered"
        );
    }

    #[test]
    fn gain_equals_actual_length_drop() {
        let d = toy();
        for dir in Direction::ALL {
            let mut s = CoverState::new(&d);
            let rule = rule_ab_xy(dir);
            let predicted = s.rule_gain(&rule);
            let before = s.total_length();
            s.apply_rule(rule);
            let after = s.total_length();
            assert!(
                (predicted - (before - after)).abs() < 1e-9,
                "dir {dir:?}: predicted {predicted}, actual {}",
                before - after
            );
        }
    }

    #[test]
    fn gain_equals_actual_drop_for_second_rule_too() {
        let d = toy();
        let mut s = CoverState::new(&d);
        s.apply_rule(rule_ab_xy(Direction::Both));
        let rule2 = TranslationRule::new(
            ItemSet::from_items([2]),
            ItemSet::from_items([5]),
            Direction::Forward,
        );
        let predicted = s.rule_gain(&rule2);
        let before = s.total_length();
        s.apply_rule(rule2);
        assert!((predicted - (before - s.total_length())).abs() < 1e-9);
        assert_eq!(s.verify(1e-9), None);
    }

    #[test]
    fn errors_are_permanent() {
        let d = toy();
        let mut s = CoverState::new(&d);
        // {a} -> {x,y}: t1 ({a,b|x}) gets error y; t2 ({a,c|z}) gets x,y.
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([3, 4]),
            Direction::Forward,
        ));
        let e_before = s.n_errors(Side::Right);
        assert!(e_before > 0);
        // Applying a second rule that also predicts y in t1 must not
        // double-count the error.
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([1]),
            ItemSet::from_items([4]),
            Direction::Forward,
        ));
        assert_eq!(s.verify(1e-9), None);
        assert!(s.n_errors(Side::Right) >= e_before);
    }

    #[test]
    fn cover_state_matches_standalone_translate() {
        let d = toy();
        let mut s = CoverState::new(&d);
        s.apply_rule(rule_ab_xy(Direction::Both));
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([2]),
            ItemSet::from_items([5]),
            Direction::Forward,
        ));
        let table = s.table().clone();
        // C_R from the cover state must equal the XOR correction of the
        // standalone TRANSLATE scheme (and likewise for C_L).
        let right_corrections = translate::correction_rows(&d, &table, Side::Left);
        let left_corrections = translate::correction_rows(&d, &table, Side::Right);
        for t in 0..d.n_transactions() {
            assert_eq!(
                s.correction_row(Side::Right, t),
                right_corrections[t],
                "right corrections differ at t={t}"
            );
            assert_eq!(
                s.correction_row(Side::Left, t),
                left_corrections[t],
                "left corrections differ at t={t}"
            );
        }
    }

    #[test]
    fn from_table_is_order_independent() {
        let d = toy();
        let r1 = rule_ab_xy(Direction::Both);
        let r2 = TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([5]),
            Direction::Forward,
        );
        let t12 = TranslationTable::from_rules([r1.clone(), r2.clone()]);
        let t21 = TranslationTable::from_rules([r2, r1]);
        let s12 = CoverState::from_table(&d, &t12);
        let s21 = CoverState::from_table(&d, &t21);
        assert!((s12.total_length() - s21.total_length()).abs() < 1e-9);
        assert_eq!(s12.correction_ones(), s21.correction_ones());
    }

    #[test]
    fn uncovered_weights_shrink_as_rules_cover() {
        let d = toy();
        let mut s = CoverState::new(&d);
        let before: f64 = s.uncovered_weights(Side::Right).iter().sum();
        s.apply_rule(rule_ab_xy(Direction::Forward));
        let after: f64 = s.uncovered_weights(Side::Right).iter().sum();
        assert!(after < before);
        // Left side untouched by a forward rule.
        let left: f64 = s.uncovered_weights(Side::Left).iter().sum();
        let fresh: f64 = CoverState::new(&d)
            .uncovered_weights(Side::Left)
            .iter()
            .sum();
        assert!((left - fresh).abs() < 1e-12);
    }

    #[test]
    fn pair_gains_consistent_with_rule_gain() {
        let d = toy();
        let s = CoverState::new(&d);
        let left = ItemSet::from_items([0, 1]);
        let right = ItemSet::from_items([3, 4]);
        let lt = d.support_set(&left);
        let rt = d.support_set(&right);
        let gains = s.pair_gains(&left, &right, &lt, &rt);
        for (g, dir) in gains.iter().zip(Direction::ALL) {
            let rule = TranslationRule::new(left.clone(), right.clone(), dir);
            assert!((g - s.rule_gain(&rule)).abs() < 1e-12, "{dir:?}");
        }
    }

    #[test]
    fn columnar_matches_row_reference_after_rules() {
        let d = toy();
        let mut col = CoverState::new(&d);
        let mut row = RowCoverState::new(&d);
        let rules = [
            rule_ab_xy(Direction::Both),
            TranslationRule::new(
                ItemSet::from_items([0]),
                ItemSet::from_items([3, 4]),
                Direction::Forward,
            ),
            TranslationRule::new(
                ItemSet::from_items([2]),
                ItemSet::from_items([5]),
                Direction::Backward,
            ),
        ];
        for r in rules {
            let lt = d.support_set(&r.left);
            let rt = d.support_set(&r.right);
            let gc = col.pair_gains(&r.left, &r.right, &lt, &rt);
            let gr = row.pair_gains(&r.left, &r.right, &lt, &rt);
            for (a, b) in gc.iter().zip(gr) {
                assert!((a - b).abs() < 1e-9, "gain {a} vs {b}");
            }
            col.apply_rule(r.clone());
            row.apply_rule(r);
            assert!((col.total_length() - row.total_length()).abs() < 1e-9);
        }
        assert_eq!(col.verify(1e-9), None);
        for side in Side::BOTH {
            for t in 0..d.n_transactions() {
                assert_eq!(col.correction_row(side, t), row.correction_row(side, t));
            }
        }
    }

    #[test]
    fn batched_rows_match_per_row_reconstruction() {
        let d = toy();
        let mut s = CoverState::new(&d);
        let rules = [
            rule_ab_xy(Direction::Both),
            TranslationRule::new(
                ItemSet::from_items([0]),
                ItemSet::from_items([3, 4]),
                Direction::Forward,
            ),
        ];
        for check_point in 0..=rules.len() {
            for side in Side::BOTH {
                let batch = s.correction_rows_batch(side);
                assert_eq!(batch.len(), d.n_transactions());
                for (t, row) in batch.iter().enumerate() {
                    assert_eq!(
                        row,
                        &s.correction_row(side, t),
                        "side {side}, t {t}, after {check_point} rules"
                    );
                }
            }
            if let Some(rule) = rules.get(check_point) {
                s.apply_rule(rule.clone());
            }
        }
    }

    #[test]
    fn tub_delta_log_replays_column_shrinkage() {
        let d = toy();
        let mut s = CoverState::new(&d);
        let mut replay = [
            s.uncovered_weights(Side::Left).to_vec(),
            s.uncovered_weights(Side::Right).to_vec(),
        ];
        s.set_tub_delta_log(true);
        s.apply_rule(rule_ab_xy(Direction::Both));
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([3, 4]),
            Direction::Forward,
        ));
        let deltas = s.take_tub_deltas();
        assert!(!deltas.is_empty());
        for (ti, t, w) in deltas {
            replay[ti as usize][t as usize] -= w;
        }
        for side in Side::BOTH {
            for (t, &w) in replay[ix(side)].iter().enumerate() {
                assert!(
                    (w - s.uncovered_weight(side, t)).abs() < 1e-12,
                    "replayed tub drifts at ({side},{t})"
                );
            }
        }
        assert!(s.take_tub_deltas().is_empty(), "take drains the log");
    }

    #[test]
    fn column_accessors_expose_cover_columns() {
        let d = toy();
        let mut s = CoverState::new(&d);
        assert!(s.covered_tids(Side::Right, 0).is_empty());
        s.apply_rule(rule_ab_xy(Direction::Forward));
        // {a,b} holds in t0, t1, t4; x (local 0) present in all three.
        assert_eq!(s.covered_tids(Side::Right, 0).to_vec(), vec![0, 1, 4]);
        // y (local 1) absent from t1 -> error there.
        assert_eq!(s.error_tids(Side::Right, 1).to_vec(), vec![1]);
    }
}
