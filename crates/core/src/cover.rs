//! Incremental cover state: `U`/`E` tables, encoded lengths, and rule gains.
//!
//! The paper splits each correction table `C` into `U` (items still
//! *uncovered* after translation) and `E` (items introduced *erroneously*);
//! `C = U ∪ E` and the two are disjoint (§5.1). [`CoverState`] maintains
//! both per transaction and side, together with all encoded-length totals,
//! and supports
//!
//! * `O(|supp| · |Y|)` **gain** evaluation for a candidate rule
//!   (`Δ_{D,T}(X ◇ Y)`, Eq. 1–2), and
//! * incremental **application** of a chosen rule.
//!
//! Invariants (checked by [`CoverState::verify`] and the property tests):
//! `covered_t ⊆ t`, `errors_t ∩ t = ∅`, `U_t = t \ covered_t`,
//! `C_t = U_t ∪ E_t` equals the XOR-correction of the standalone
//! [`crate::translate`] scheme, and every cached total equals its
//! from-scratch recomputation.

use twoview_data::prelude::*;

use crate::encoding::CodeLengths;
use crate::rule::{Direction, TranslationRule};
use crate::table::TranslationTable;

/// Mutable model-construction state over an immutable dataset.
#[derive(Clone, Debug)]
pub struct CoverState<'d> {
    data: &'d TwoViewDataset,
    codes: CodeLengths,
    /// Per side, per transaction: target-side items predicted correctly.
    covered: [Vec<Bitmap>; 2],
    /// Per side, per transaction: target-side items predicted erroneously.
    errors: [Vec<Bitmap>; 2],
    /// Per side, per transaction: `L(U_t | D_side)` — the paper's `tub(t)`.
    uncovered_weight: [Vec<f64>; 2],
    /// Per side: `L(C_side | T)`.
    l_corrections: [f64; 2],
    /// `L(T)`.
    l_table: f64,
    /// Per side: `|U|` (number of uncovered ones).
    n_uncovered: [usize; 2],
    /// Per side: `|E|` (number of erroneous ones).
    n_errors: [usize; 2],
    table: TranslationTable,
}

#[inline]
fn ix(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

impl<'d> CoverState<'d> {
    /// Fresh state for an empty translation table: everything uncovered.
    pub fn new(data: &'d TwoViewDataset) -> Self {
        let codes = CodeLengths::new(data);
        let n = data.n_transactions();
        let vocab = data.vocab();
        let mut state = CoverState {
            covered: [
                vec![Bitmap::new(vocab.n_left()); n],
                vec![Bitmap::new(vocab.n_right()); n],
            ],
            errors: [
                vec![Bitmap::new(vocab.n_left()); n],
                vec![Bitmap::new(vocab.n_right()); n],
            ],
            uncovered_weight: [Vec::with_capacity(n), Vec::with_capacity(n)],
            l_corrections: [0.0, 0.0],
            l_table: 0.0,
            n_uncovered: [0, 0],
            n_errors: [0, 0],
            table: TranslationTable::new(),
            codes,
            data,
        };
        for side in Side::BOTH {
            let table = state.codes.side_table(side);
            let mut total = 0.0;
            let mut count = 0usize;
            for t in 0..n {
                let row = data.row(side, t);
                let w = row.weighted_len(table);
                state.uncovered_weight[ix(side)].push(w);
                total += w;
                count += row.len();
            }
            state.l_corrections[ix(side)] = total;
            state.n_uncovered[ix(side)] = count;
        }
        state
    }

    /// The consequent as a bitmap over the target side's local indices —
    /// the representation every cover update and gain evaluation works on.
    fn consequent_bitmap(&self, target: Side, consequent: &ItemSet) -> Bitmap {
        let vocab = self.data.vocab();
        Bitmap::from_indices(
            vocab.n_on(target),
            consequent.iter().map(|i| vocab.local_index(i)),
        )
    }

    /// Builds a state by applying every rule of `table` to a fresh state.
    ///
    /// The result is independent of rule order (covered/error sets are
    /// unions over rules), matching the paper's order-free semantics.
    pub fn from_table(data: &'d TwoViewDataset, table: &TranslationTable) -> Self {
        let mut state = CoverState::new(data);
        for rule in table.iter() {
            state.apply_rule(rule.clone());
        }
        state
    }

    /// The underlying dataset.
    pub fn data(&self) -> &'d TwoViewDataset {
        self.data
    }

    /// The per-item code lengths.
    pub fn codes(&self) -> &CodeLengths {
        &self.codes
    }

    /// The rules applied so far.
    pub fn table(&self) -> &TranslationTable {
        &self.table
    }

    /// Consumes the state, returning the built table.
    pub fn into_table(self) -> TranslationTable {
        self.table
    }

    /// `L(T)`.
    pub fn l_table(&self) -> f64 {
        self.l_table
    }

    /// `L(C_side | T)`; the paper's `L(D_{→side} | T)`.
    pub fn l_correction(&self, side: Side) -> f64 {
        self.l_corrections[ix(side)]
    }

    /// Total encoded size `L(D_{L↔R}, T) = L(T) + L(C_L|T) + L(C_R|T)`.
    pub fn total_length(&self) -> f64 {
        self.l_table + self.l_corrections[0] + self.l_corrections[1]
    }

    /// `|U|` on `side`.
    pub fn n_uncovered(&self, side: Side) -> usize {
        self.n_uncovered[ix(side)]
    }

    /// `|E|` on `side`.
    pub fn n_errors(&self, side: Side) -> usize {
        self.n_errors[ix(side)]
    }

    /// `|C| = |U| + |E|` summed over both sides.
    pub fn correction_ones(&self) -> usize {
        self.n_uncovered[0] + self.n_uncovered[1] + self.n_errors[0] + self.n_errors[1]
    }

    /// `L(U_t | D_side)` — the transaction-based upper bound `tub`.
    #[inline]
    pub fn uncovered_weight(&self, side: Side, t: usize) -> f64 {
        self.uncovered_weight[ix(side)][t]
    }

    /// The whole `tub` column of one side.
    pub fn uncovered_weights(&self, side: Side) -> &[f64] {
        &self.uncovered_weight[ix(side)]
    }

    /// The correction row `C_t = U_t ∪ E_t` on `side` (local indices).
    pub fn correction_row(&self, side: Side, t: usize) -> Bitmap {
        let mut c = self.data.row(side, t).and_not(&self.covered[ix(side)][t]);
        c.union_with(&self.errors[ix(side)][t]);
        c
    }

    /// Data-gain of firing `consequent` into `target = from.opposite()` for
    /// every transaction in `antecedent_tids` (Eq. 2, one direction):
    ///
    /// `Σ_t  L(Y ∩ U_t | D) − L(Y \ (t ∪ E_t) | D)`.
    pub fn directional_gain(
        &self,
        from: Side,
        antecedent_tids: &Bitmap,
        consequent: &ItemSet,
    ) -> f64 {
        let target = from.opposite();
        let codes = self.codes.side_table(target);
        let covered = &self.covered[ix(target)];
        let errors = &self.errors[ix(target)];
        let cons = self.consequent_bitmap(target, consequent);
        // One scratch bitmap reused across the support; every set operation
        // below is a word-parallel Bitmap kernel call.
        let mut scratch = Bitmap::new(cons.capacity());
        let mut gain = 0.0;
        for t in antecedent_tids.iter() {
            let row = self.data.row(target, t);
            // Hits: predicted ∧ present, gain for the not-yet-covered ones.
            cons.and_into(row, &mut scratch);
            gain += scratch.difference_weight(&covered[t], codes);
            // Misses: predicted ∧ absent, cost for the fresh errors.
            scratch.copy_from(&cons);
            scratch.subtract(row);
            gain -= scratch.difference_weight(&errors[t], codes);
        }
        gain
    }

    /// Gains of the three rules constructible from the pair `(X, Y)`,
    /// in [`Direction::ALL`] order, given the antecedent tidsets.
    ///
    /// `Δ_{D,T}(X ◇ Y) = Δ_{D|T}(X ◇ Y) − L(X ◇ Y)` (Eq. 1); the
    /// bidirectional data-gain is the sum of the two unidirectional ones.
    pub fn pair_gains(
        &self,
        left: &ItemSet,
        right: &ItemSet,
        left_tids: &Bitmap,
        right_tids: &Bitmap,
    ) -> [f64; 3] {
        let g_fwd = self.directional_gain(Side::Left, left_tids, right);
        let g_bwd = self.directional_gain(Side::Right, right_tids, left);
        let base = self.codes.itemset(left) + self.codes.itemset(right);
        [
            g_fwd - (base + 2.0),         // X → Y
            g_bwd - (base + 2.0),         // X ← Y
            g_fwd + g_bwd - (base + 1.0), // X ↔ Y
        ]
    }

    /// Gain of a single rule (recomputes the antecedent tidsets).
    pub fn rule_gain(&self, rule: &TranslationRule) -> f64 {
        let left_tids = self.data.support_set(&rule.left);
        let right_tids = self.data.support_set(&rule.right);
        let gains = self.pair_gains(&rule.left, &rule.right, &left_tids, &right_tids);
        match rule.direction {
            Direction::Forward => gains[0],
            Direction::Backward => gains[1],
            Direction::Both => gains[2],
        }
    }

    /// Applies a rule: updates covered/error sets and all cached totals.
    pub fn apply_rule(&mut self, rule: TranslationRule) {
        if rule.direction.fires_from(Side::Left) {
            let tids = self.data.support_set(&rule.left);
            self.apply_directional(Side::Left, &tids, &rule.right);
        }
        if rule.direction.fires_from(Side::Right) {
            let tids = self.data.support_set(&rule.right);
            self.apply_directional(Side::Right, &tids, &rule.left);
        }
        self.l_table += self.codes.rule(&rule);
        self.table.push(rule);
    }

    fn apply_directional(&mut self, from: Side, antecedent_tids: &Bitmap, consequent: &ItemSet) {
        let target = from.opposite();
        let ti = ix(target);
        let cons = self.consequent_bitmap(target, consequent);
        let mut scratch = Bitmap::new(cons.capacity());
        for t in antecedent_tids.iter() {
            let row = self.data.row(target, t);
            // Hits become covered; account only for the newly covered bits.
            cons.and_into(row, &mut scratch);
            for l in scratch.iter_and_not(&self.covered[ti][t]) {
                let len = self.codes.side_table(target)[l];
                self.l_corrections[ti] -= len;
                self.uncovered_weight[ti][t] -= len;
                self.n_uncovered[ti] -= 1;
            }
            self.covered[ti][t].union_with(&scratch);
            // Misses become errors; account only for the fresh ones.
            scratch.copy_from(&cons);
            scratch.subtract(row);
            for l in scratch.iter_and_not(&self.errors[ti][t]) {
                self.l_corrections[ti] += self.codes.side_table(target)[l];
                self.n_errors[ti] += 1;
            }
            self.errors[ti][t].union_with(&scratch);
        }
    }

    /// Recomputes every cached quantity from scratch and compares (within
    /// `tol` bits). Returns a description of the first mismatch, `None` if
    /// consistent. Test / debugging aid.
    pub fn verify(&self, tol: f64) -> Option<String> {
        let fresh = CoverState::from_table(self.data, &self.table);
        for side in Side::BOTH {
            let i = ix(side);
            if (self.l_corrections[i] - fresh.l_corrections[i]).abs() > tol {
                return Some(format!(
                    "L(C_{side}) drifted: {} vs {}",
                    self.l_corrections[i], fresh.l_corrections[i]
                ));
            }
            if self.n_uncovered[i] != fresh.n_uncovered[i] {
                return Some(format!("|U_{side}| mismatch"));
            }
            if self.n_errors[i] != fresh.n_errors[i] {
                return Some(format!("|E_{side}| mismatch"));
            }
            for t in 0..self.data.n_transactions() {
                if !self.covered[i][t].is_subset(self.data.row(side, t)) {
                    return Some(format!("covered ⊄ row at ({side},{t})"));
                }
                if !self.errors[i][t].is_disjoint(self.data.row(side, t)) {
                    return Some(format!("errors ∩ row ≠ ∅ at ({side},{t})"));
                }
            }
        }
        if (self.l_table - fresh.l_table).abs() > tol {
            return Some("L(T) drifted".into());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3],
                vec![0, 2, 5],
                vec![1, 4],
                vec![0, 1, 3, 4, 5],
                vec![2],
            ],
        )
    }

    fn rule_ab_xy(dir: Direction) -> TranslationRule {
        TranslationRule::new(
            ItemSet::from_items([0, 1]),
            ItemSet::from_items([3, 4]),
            dir,
        )
    }

    #[test]
    fn initial_state_equals_empty_model() {
        let d = toy();
        let s = CoverState::new(&d);
        let codes = CodeLengths::new(&d);
        assert!((s.total_length() - codes.empty_model(&d)).abs() < 1e-9);
        assert_eq!(s.n_errors(Side::Left) + s.n_errors(Side::Right), 0);
        assert_eq!(
            s.n_uncovered(Side::Left),
            d.ones(Side::Left),
            "initially everything uncovered"
        );
    }

    #[test]
    fn gain_equals_actual_length_drop() {
        let d = toy();
        for dir in Direction::ALL {
            let mut s = CoverState::new(&d);
            let rule = rule_ab_xy(dir);
            let predicted = s.rule_gain(&rule);
            let before = s.total_length();
            s.apply_rule(rule);
            let after = s.total_length();
            assert!(
                (predicted - (before - after)).abs() < 1e-9,
                "dir {dir:?}: predicted {predicted}, actual {}",
                before - after
            );
        }
    }

    #[test]
    fn gain_equals_actual_drop_for_second_rule_too() {
        let d = toy();
        let mut s = CoverState::new(&d);
        s.apply_rule(rule_ab_xy(Direction::Both));
        let rule2 = TranslationRule::new(
            ItemSet::from_items([2]),
            ItemSet::from_items([5]),
            Direction::Forward,
        );
        let predicted = s.rule_gain(&rule2);
        let before = s.total_length();
        s.apply_rule(rule2);
        assert!((predicted - (before - s.total_length())).abs() < 1e-9);
        assert_eq!(s.verify(1e-9), None);
    }

    #[test]
    fn errors_are_permanent() {
        let d = toy();
        let mut s = CoverState::new(&d);
        // {a} -> {x,y}: t1 ({a,b|x}) gets error y; t2 ({a,c|z}) gets x,y.
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([3, 4]),
            Direction::Forward,
        ));
        let e_before = s.n_errors(Side::Right);
        assert!(e_before > 0);
        // Applying a second rule that also predicts y in t1 must not
        // double-count the error.
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([1]),
            ItemSet::from_items([4]),
            Direction::Forward,
        ));
        assert_eq!(s.verify(1e-9), None);
        assert!(s.n_errors(Side::Right) >= e_before);
    }

    #[test]
    fn cover_state_matches_standalone_translate() {
        let d = toy();
        let mut s = CoverState::new(&d);
        s.apply_rule(rule_ab_xy(Direction::Both));
        s.apply_rule(TranslationRule::new(
            ItemSet::from_items([2]),
            ItemSet::from_items([5]),
            Direction::Forward,
        ));
        let table = s.table().clone();
        // C_R from the cover state must equal the XOR correction of the
        // standalone TRANSLATE scheme (and likewise for C_L).
        for t in 0..d.n_transactions() {
            assert_eq!(
                s.correction_row(Side::Right, t),
                translate::correction_row(&d, &table, Side::Left, t),
                "right corrections differ at t={t}"
            );
            assert_eq!(
                s.correction_row(Side::Left, t),
                translate::correction_row(&d, &table, Side::Right, t),
                "left corrections differ at t={t}"
            );
        }
    }

    #[test]
    fn from_table_is_order_independent() {
        let d = toy();
        let r1 = rule_ab_xy(Direction::Both);
        let r2 = TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([5]),
            Direction::Forward,
        );
        let t12 = TranslationTable::from_rules([r1.clone(), r2.clone()]);
        let t21 = TranslationTable::from_rules([r2, r1]);
        let s12 = CoverState::from_table(&d, &t12);
        let s21 = CoverState::from_table(&d, &t21);
        assert!((s12.total_length() - s21.total_length()).abs() < 1e-9);
        assert_eq!(s12.correction_ones(), s21.correction_ones());
    }

    #[test]
    fn uncovered_weights_shrink_as_rules_cover() {
        let d = toy();
        let mut s = CoverState::new(&d);
        let before: f64 = s.uncovered_weights(Side::Right).iter().sum();
        s.apply_rule(rule_ab_xy(Direction::Forward));
        let after: f64 = s.uncovered_weights(Side::Right).iter().sum();
        assert!(after < before);
        // Left side untouched by a forward rule.
        let left: f64 = s.uncovered_weights(Side::Left).iter().sum();
        let fresh: f64 = CoverState::new(&d)
            .uncovered_weights(Side::Left)
            .iter()
            .sum();
        assert!((left - fresh).abs() < 1e-12);
    }

    #[test]
    fn pair_gains_consistent_with_rule_gain() {
        let d = toy();
        let s = CoverState::new(&d);
        let left = ItemSet::from_items([0, 1]);
        let right = ItemSet::from_items([3, 4]);
        let lt = d.support_set(&left);
        let rt = d.support_set(&right);
        let gains = s.pair_gains(&left, &right, &lt, &rt);
        for (g, dir) in gains.iter().zip(Direction::ALL) {
            let rule = TranslationRule::new(left.clone(), right.clone(), dir);
            assert!((g - s.rule_gain(&rule)).abs() < 1e-12, "{dir:?}");
        }
    }
}
