//! TRANSLATOR-GREEDY (paper §5.4): single-pass KRIMP-style filtering.
//!
//! Candidates (closed frequent two-view itemsets) are ordered descending by
//! length, then by support, and considered exactly once each: the best of
//! the three possible rules is added if its gain is strictly positive,
//! otherwise the candidate is discarded forever.

use twoview_data::prelude::*;
use twoview_mining::{mine_closed_twoview, mine_frequent_twoview, MinerConfig, TwoViewCandidate};
use twoview_runtime::obs;
use twoview_runtime::{JobCtx, JobError};

/// Process-wide registry cells for the greedy pass (`greedy.*` names).
struct GreedyMetrics {
    runs: obs::Counter,
    candidates_seen: obs::Counter,
    qub_skips: obs::Counter,
    rules_added: obs::Counter,
}

fn greedy_metrics() -> &'static GreedyMetrics {
    static METRICS: std::sync::OnceLock<GreedyMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| GreedyMetrics {
        runs: obs::counter("greedy.runs"),
        candidates_seen: obs::counter("greedy.candidates_seen"),
        qub_skips: obs::counter("greedy.qub_skips"),
        rules_added: obs::counter("greedy.rules_added"),
    })
}

use crate::bounds;
use crate::cover::CoverState;
use crate::model::{score_of, TraceStep, TranslatorModel};
use crate::rule::{Direction, TranslationRule};

/// Candidate orderings for the single pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateOrder {
    /// Length desc, support desc — the paper's order.
    LengthThenSupport,
    /// Support desc, length desc — ablation variant.
    SupportThenLength,
}

/// Configuration for TRANSLATOR-GREEDY.
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// Minimum support for candidate mining.
    pub minsup: usize,
    /// Closed candidates (paper default) or all frequent itemsets.
    pub closed_candidates: bool,
    /// Candidate-count safety valve.
    pub max_candidates: usize,
    /// Single-pass ordering.
    pub order: CandidateOrder,
    /// Worker threads for candidate mining (the filtering pass itself is
    /// inherently sequential). `None` = the process default; the model is
    /// identical for any value.
    pub n_threads: Option<usize>,
}

impl GreedyConfig {
    /// Fluent builder with paper-default settings (`minsup = 1`, closed
    /// candidates, length-then-support order).
    pub fn builder() -> GreedyConfigBuilder {
        GreedyConfigBuilder {
            cfg: GreedyConfig {
                minsup: 1,
                closed_candidates: true,
                max_candidates: 2_000_000,
                order: CandidateOrder::LengthThenSupport,
                n_threads: None,
            },
        }
    }
}

/// Fluent builder for [`GreedyConfig`]; see [`GreedyConfig::builder`].
#[derive(Clone, Debug)]
pub struct GreedyConfigBuilder {
    cfg: GreedyConfig,
}

impl GreedyConfigBuilder {
    /// Minimum support for candidate mining (clamped to at least 1).
    pub fn minsup(mut self, minsup: usize) -> Self {
        self.cfg.minsup = minsup.max(1);
        self
    }

    /// Closed candidates (paper default) vs all frequent itemsets.
    pub fn closed_candidates(mut self, closed: bool) -> Self {
        self.cfg.closed_candidates = closed;
        self
    }

    /// Candidate-count safety valve.
    pub fn max_candidates(mut self, n: usize) -> Self {
        self.cfg.max_candidates = n;
        self
    }

    /// Single-pass candidate ordering.
    pub fn order(mut self, order: CandidateOrder) -> Self {
        self.cfg.order = order;
        self
    }

    /// Worker threads for candidate mining (`Some(t)` semantics).
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.n_threads = Some(t);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> GreedyConfig {
        self.cfg
    }
}

/// Runs TRANSLATOR-GREEDY: mines candidates, then filters in one pass.
pub fn translator_greedy(data: &TwoViewDataset, cfg: &GreedyConfig) -> TranslatorModel {
    let mut miner_cfg = MinerConfig::builder().minsup(cfg.minsup).build();
    miner_cfg.max_itemsets = cfg.max_candidates;
    miner_cfg.n_threads = cfg.n_threads;
    let mined = if cfg.closed_candidates {
        mine_closed_twoview(data, &miner_cfg)
    } else {
        mine_frequent_twoview(data, &miner_cfg)
    };
    let mut model = translator_greedy_candidates(data, cfg, &mined.candidates);
    model.truncated |= mined.truncated;
    model
}

/// Runs the single-pass filter over a pre-mined candidate set.
pub fn translator_greedy_candidates(
    data: &TwoViewDataset,
    cfg: &GreedyConfig,
    candidates: &[TwoViewCandidate],
) -> TranslatorModel {
    match run_greedy(data, cfg, candidates, None) {
        Ok(model) => model,
        Err(_) => unreachable!("uncancellable run cannot be cancelled"),
    }
}

/// The single-pass filter with an optional job context: cancellation is
/// observed every [`GREEDY_CHECKPOINT_EVERY`] candidates (and ticks
/// progress at the same cadence); a cancelled run returns no model.
pub(crate) fn run_greedy(
    data: &TwoViewDataset,
    cfg: &GreedyConfig,
    candidates: &[TwoViewCandidate],
    ctl: Option<&JobCtx>,
) -> Result<TranslatorModel, JobError> {
    let mut ordered: Vec<&TwoViewCandidate> = candidates.iter().collect();
    match cfg.order {
        CandidateOrder::LengthThenSupport => ordered.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then(b.support.cmp(&a.support))
                .then_with(|| (&a.left, &a.right).cmp(&(&b.left, &b.right)))
        }),
        CandidateOrder::SupportThenLength => ordered.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then(b.len().cmp(&a.len()))
                .then_with(|| (&a.left, &a.right).cmp(&(&b.left, &b.right)))
        }),
    }

    let mut run_span = obs::span("greedy.run");
    run_span.field("n_candidates", candidates.len());
    let mut qub_skips = 0u64;
    let mut state = CoverState::new(data);
    let mut trace = Vec::new();
    for (pos, cand) in ordered.into_iter().enumerate() {
        if pos % GREEDY_CHECKPOINT_EVERY == 0 {
            if let Some(ctx) = ctl {
                twoview_runtime::faults::maybe_panic(
                    twoview_runtime::faults::points::GREEDY_CHECKPOINT_PANIC,
                );
                ctx.checkpoint()?;
                ctx.tick(1);
            }
        }
        // State-independent quick bound: a candidate whose `qub` is not
        // positive can never yield a positive gain; skip the evaluation.
        if bounds::qub(state.codes(), data, &cand.left, &cand.right) <= 0.0 {
            qub_skips += 1;
            continue;
        }
        let lt = data.support_set(&cand.left);
        let rt = data.support_set(&cand.right);
        let gains = state.pair_gains(&cand.left, &cand.right, &lt, &rt);
        // Keep the *last* maximum over Direction::ALL order, matching the
        // historical `max_by(partial_cmp)` tie-break (gains are never NaN).
        let mut best = (gains[0], Direction::ALL[0]);
        for (g, d) in gains.into_iter().zip(Direction::ALL).skip(1) {
            if g >= best.0 {
                best = (g, d);
            }
        }
        let (best_gain, best_dir) = best;
        if best_gain > 0.0 {
            let rule = TranslationRule::new(cand.left.clone(), cand.right.clone(), best_dir);
            state.apply_rule(rule.clone());
            trace.push(TraceStep::capture(&state, rule, best_gain));
        }
    }

    let metrics = greedy_metrics();
    metrics.runs.incr();
    metrics.candidates_seen.add(candidates.len() as u64);
    metrics.qub_skips.add(qub_skips);
    metrics.rules_added.add(trace.len() as u64);
    run_span
        .field("qub_skips", qub_skips)
        .field("rules_added", trace.len());
    drop(run_span);

    let score = score_of(&state);
    Ok(TranslatorModel {
        table: state.into_table(),
        score,
        trace,
        n_candidates: candidates.len(),
        truncated: false,
    })
}

/// Cancellation/progress cadence of the greedy single pass.
const GREEDY_CHECKPOINT_EVERY: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{translator_select, SelectConfig};

    fn structured() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4, 5],
                vec![0, 1, 2, 3, 4],
                vec![2, 5],
                vec![2, 5],
                vec![0, 5],
            ],
        )
    }

    #[test]
    fn greedy_compresses_structured_data() {
        let d = structured();
        let model = translator_greedy(&d, &GreedyConfig::builder().minsup(1).build());
        assert!(!model.table.is_empty());
        assert!(model.compression_pct() < 100.0);
        let mut prev = f64::INFINITY;
        for step in &model.trace {
            assert!(step.gain > 0.0);
            assert!(step.l_total < prev);
            prev = step.l_total;
        }
    }

    #[test]
    fn greedy_never_beats_select_by_much_here() {
        // GREEDY is the weakest strategy; on toy data it must be within a
        // reasonable band of SELECT(1) but never meaningfully better.
        let d = structured();
        let greedy = translator_greedy(&d, &GreedyConfig::builder().minsup(1).build());
        let select = translator_select(&d, &SelectConfig::builder().k(1).minsup(1).build());
        assert!(greedy.compression_pct() + 1e-9 >= select.compression_pct() - 5.0);
    }

    #[test]
    fn ordering_variants_run() {
        let d = structured();
        let a = translator_greedy(
            &d,
            &GreedyConfig {
                order: CandidateOrder::SupportThenLength,
                ..GreedyConfig::builder().minsup(1).build()
            },
        );
        let b = translator_greedy(&d, &GreedyConfig::builder().minsup(1).build());
        assert!(a.compression_pct() <= 100.0);
        assert!(b.compression_pct() <= 100.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = structured();
        let a = translator_greedy(&d, &GreedyConfig::builder().minsup(1).build());
        let b = translator_greedy(&d, &GreedyConfig::builder().minsup(1).build());
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn minsup_prunes_candidates() {
        let d = structured();
        let low = translator_greedy(&d, &GreedyConfig::builder().minsup(1).build());
        let high = translator_greedy(&d, &GreedyConfig::builder().minsup(4).build());
        assert!(high.n_candidates <= low.n_candidates);
    }
}
