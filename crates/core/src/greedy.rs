//! TRANSLATOR-GREEDY (paper §5.4): single-pass KRIMP-style filtering.
//!
//! Candidates (closed frequent two-view itemsets) are ordered descending by
//! length, then by support, and considered exactly once each: the best of
//! the three possible rules is added if its gain is strictly positive,
//! otherwise the candidate is discarded forever.

use twoview_data::prelude::*;
use twoview_mining::{mine_closed_twoview, mine_frequent_twoview, MinerConfig, TwoViewCandidate};

use crate::bounds;
use crate::cover::CoverState;
use crate::model::{score_of, TraceStep, TranslatorModel};
use crate::rule::{Direction, TranslationRule};

/// Candidate orderings for the single pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateOrder {
    /// Length desc, support desc — the paper's order.
    LengthThenSupport,
    /// Support desc, length desc — ablation variant.
    SupportThenLength,
}

/// Configuration for TRANSLATOR-GREEDY.
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// Minimum support for candidate mining.
    pub minsup: usize,
    /// Closed candidates (paper default) or all frequent itemsets.
    pub closed_candidates: bool,
    /// Candidate-count safety valve.
    pub max_candidates: usize,
    /// Single-pass ordering.
    pub order: CandidateOrder,
    /// Worker threads for candidate mining (the filtering pass itself is
    /// inherently sequential). `None` = the process default; the model is
    /// identical for any value.
    pub n_threads: Option<usize>,
}

impl GreedyConfig {
    /// Paper-default configuration with the given minsup.
    pub fn new(minsup: usize) -> Self {
        GreedyConfig {
            minsup: minsup.max(1),
            closed_candidates: true,
            max_candidates: 2_000_000,
            order: CandidateOrder::LengthThenSupport,
            n_threads: None,
        }
    }
}

/// Runs TRANSLATOR-GREEDY: mines candidates, then filters in one pass.
pub fn translator_greedy(data: &TwoViewDataset, cfg: &GreedyConfig) -> TranslatorModel {
    let mut miner_cfg = MinerConfig::with_minsup(cfg.minsup);
    miner_cfg.max_itemsets = cfg.max_candidates;
    miner_cfg.n_threads = cfg.n_threads;
    let mined = if cfg.closed_candidates {
        mine_closed_twoview(data, &miner_cfg)
    } else {
        mine_frequent_twoview(data, &miner_cfg)
    };
    let mut model = translator_greedy_candidates(data, cfg, &mined.candidates);
    model.truncated |= mined.truncated;
    model
}

/// Runs the single-pass filter over a pre-mined candidate set.
pub fn translator_greedy_candidates(
    data: &TwoViewDataset,
    cfg: &GreedyConfig,
    candidates: &[TwoViewCandidate],
) -> TranslatorModel {
    let mut ordered: Vec<&TwoViewCandidate> = candidates.iter().collect();
    match cfg.order {
        CandidateOrder::LengthThenSupport => ordered.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then(b.support.cmp(&a.support))
                .then_with(|| (&a.left, &a.right).cmp(&(&b.left, &b.right)))
        }),
        CandidateOrder::SupportThenLength => ordered.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then(b.len().cmp(&a.len()))
                .then_with(|| (&a.left, &a.right).cmp(&(&b.left, &b.right)))
        }),
    }

    let mut state = CoverState::new(data);
    let mut trace = Vec::new();
    for cand in ordered {
        // State-independent quick bound: a candidate whose `qub` is not
        // positive can never yield a positive gain; skip the evaluation.
        if bounds::qub(state.codes(), data, &cand.left, &cand.right) <= 0.0 {
            continue;
        }
        let lt = data.support_set(&cand.left);
        let rt = data.support_set(&cand.right);
        let gains = state.pair_gains(&cand.left, &cand.right, &lt, &rt);
        let (best_gain, best_dir) = gains
            .into_iter()
            .zip(Direction::ALL)
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .expect("three directions");
        if best_gain > 0.0 {
            let rule = TranslationRule::new(cand.left.clone(), cand.right.clone(), best_dir);
            state.apply_rule(rule.clone());
            trace.push(TraceStep::capture(&state, rule, best_gain));
        }
    }

    let score = score_of(&state);
    TranslatorModel {
        table: state.into_table(),
        score,
        trace,
        n_candidates: candidates.len(),
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{translator_select, SelectConfig};

    fn structured() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4, 5],
                vec![0, 1, 2, 3, 4],
                vec![2, 5],
                vec![2, 5],
                vec![0, 5],
            ],
        )
    }

    #[test]
    fn greedy_compresses_structured_data() {
        let d = structured();
        let model = translator_greedy(&d, &GreedyConfig::new(1));
        assert!(!model.table.is_empty());
        assert!(model.compression_pct() < 100.0);
        let mut prev = f64::INFINITY;
        for step in &model.trace {
            assert!(step.gain > 0.0);
            assert!(step.l_total < prev);
            prev = step.l_total;
        }
    }

    #[test]
    fn greedy_never_beats_select_by_much_here() {
        // GREEDY is the weakest strategy; on toy data it must be within a
        // reasonable band of SELECT(1) but never meaningfully better.
        let d = structured();
        let greedy = translator_greedy(&d, &GreedyConfig::new(1));
        let select = translator_select(&d, &SelectConfig::new(1, 1));
        assert!(greedy.compression_pct() + 1e-9 >= select.compression_pct() - 5.0);
    }

    #[test]
    fn ordering_variants_run() {
        let d = structured();
        let a = translator_greedy(
            &d,
            &GreedyConfig {
                order: CandidateOrder::SupportThenLength,
                ..GreedyConfig::new(1)
            },
        );
        let b = translator_greedy(&d, &GreedyConfig::new(1));
        assert!(a.compression_pct() <= 100.0);
        assert!(b.compression_pct() <= 100.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = structured();
        let a = translator_greedy(&d, &GreedyConfig::new(1));
        let b = translator_greedy(&d, &GreedyConfig::new(1));
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn minsup_prunes_candidates() {
        let d = structured();
        let low = translator_greedy(&d, &GreedyConfig::new(1));
        let high = translator_greedy(&d, &GreedyConfig::new(4));
        assert!(high.n_candidates <= low.n_candidates);
    }
}
