//! The unified error type threaded through the serving API.
//!
//! Library paths never panic on bad input: dataset/table parsing surfaces
//! [`DataError`], job scheduling surfaces [`JobError`] (cancellation,
//! contained panics), and configuration mistakes (a fit below the engine's
//! mined minsup, a candidate-class mismatch) surface [`Error::Config`] —
//! all under one `twoview::Error` so applications write one `?` chain
//! from engine construction to table I/O to the CLI.

use std::fmt;

use twoview_data::error::DataError;
use twoview_runtime::JobError;

use crate::persist::SnapshotError;

/// Any error produced by the `twoview` library surface.
#[derive(Debug)]
pub enum Error {
    /// Dataset construction / parsing / I/O failed.
    Data(DataError),
    /// A job failed to produce a value (cancelled, or its body panicked).
    Job(JobError),
    /// A configuration value or combination was invalid.
    Config(String),
    /// A snapshot could not be written, or an explicitly requested
    /// snapshot load failed. (The builder's opportunistic warm-start
    /// path never surfaces this — it counts the rejection and re-mines.)
    Snapshot(SnapshotError),
}

impl Error {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Error {
        Error::Config(msg.into())
    }

    /// Whether this is a cooperative-cancellation outcome (not a fault).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Error::Job(JobError::Cancelled))
    }

    /// Whether a [`twoview_runtime::Deadline`] expired (queued or
    /// running). Like cancellation, an expected serving outcome.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, Error::Job(JobError::DeadlineExceeded))
    }

    /// Whether admission control turned the job away (the signal a
    /// serving front door maps to HTTP 429).
    pub fn is_rejected(&self) -> bool {
        matches!(self, Error::Job(JobError::Rejected))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Data(e) => write!(f, "{e}"),
            Error::Job(e) => write!(f, "{e}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Data(e) => Some(e),
            Error::Job(e) => Some(e),
            Error::Config(_) => None,
            Error::Snapshot(e) => Some(e),
        }
    }
}

impl From<DataError> for Error {
    fn from(e: DataError) -> Self {
        Error::Data(e)
    }
}

impl From<JobError> for Error {
    fn from(e: JobError) -> Self {
        Error::Job(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Data(DataError::Io(e))
    }
}

impl From<String> for Error {
    fn from(m: String) -> Self {
        Error::Config(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::from(DataError::Format("bad magic".into()));
        assert!(e.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&e).is_some());

        let e = Error::from(JobError::Cancelled);
        assert!(e.is_cancelled());
        assert!(e.to_string().contains("cancelled"));

        let e = Error::from(JobError::DeadlineExceeded);
        assert!(e.is_deadline_exceeded() && !e.is_cancelled());
        assert!(e.to_string().contains("deadline"));

        let e = Error::from(JobError::Rejected);
        assert!(e.is_rejected());
        assert!(e.to_string().contains("rejected"));

        let e = Error::config("minsup below mined base");
        assert!(e.to_string().contains("minsup below mined base"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(!e.is_cancelled());

        let e = Error::from(std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("disk gone"));

        let e = Error::from(SnapshotError::BadMagic);
        assert!(e.to_string().contains("magic"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
