//! # twoview-core
//!
//! The paper's primary contribution: **translation tables** for Boolean
//! two-view data, selected with the **Minimum Description Length** (MDL)
//! principle, induced by the three **TRANSLATOR** algorithms
//! (van Leeuwen & Galbrun, *Association Discovery in Two-View Data*, IEEE
//! TKDE 27(12), 2015).
//!
//! * [`rule`], [`table`] — translation rules `X → Y` / `X ← Y` / `X ↔ Y`
//!   and tables thereof (paper §3);
//! * [`translate`] — the TRANSLATE scheme and lossless XOR-correction
//!   reconstruction (Algorithm 1);
//! * [`encoding`] — per-item Shannon codes and all encoded lengths (§4);
//! * [`cover`] — the incremental `U`/`E` cover state in a columnar
//!   (per-item tidset) layout with fused-kernel rule-gain evaluation (§5.1);
//! * [`cover_rows`] — the row-major reference cover state (differential
//!   testing + benchmark baseline);
//! * [`bounds`] — the shared `qub`/`rub` gain bounds (§5.2);
//! * [`exact`] — TRANSLATOR-EXACT: per-iteration optimal rule search with
//!   `tub`/`rub`/`qub` pruning (§5.2, Algorithm 2);
//! * [`select`] — TRANSLATOR-SELECT(k) over closed frequent two-view
//!   candidates (§5.3, Algorithm 3);
//! * [`greedy`] — TRANSLATOR-GREEDY single-pass filtering (§5.4);
//! * [`model`] — fitted models, scores (`L%`, `|C|%`), construction traces.
//!
//! ## Quick example
//!
//! ```
//! use twoview_data::prelude::*;
//! use twoview_core::select::{translator_select, SelectConfig};
//!
//! let vocab = Vocabulary::new(["rainy", "windy"], ["umbrella", "kite"]);
//! let data = TwoViewDataset::from_transactions(
//!     vocab,
//!     &[vec![0, 2], vec![0, 2], vec![0, 2], vec![1, 3], vec![1, 3], vec![0, 1, 2, 3]],
//! );
//! let model = translator_select(&data, &SelectConfig::builder().k(1).minsup(1).build());
//! assert!(model.compression_pct() <= 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bounds;
pub mod cover;
pub mod cover_rows;
pub mod encoding;
pub mod engine;
pub mod error;
pub mod exact;
pub mod fit;
pub mod greedy;
pub mod model;
pub mod multiview;
pub mod persist;
pub mod predict;
pub mod rule;
pub mod select;
pub mod table;
pub mod table_io;
pub mod translate;

pub use analysis::{rule_set_redundancy, rule_stats, summarize, RuleStats, TableSummary};
pub use cover::CoverState;
pub use cover_rows::RowCoverState;
pub use encoding::{correction_encoding_gap, CodeLengths};
pub use engine::{Engine, EngineBuilder, EngineStats};
pub use error::Error;
pub use exact::{
    translator_exact, translator_exact_seeded, translator_exact_with, ExactConfig,
    ExactConfigBuilder,
};
pub use fit::{fit, Algorithm};
pub use greedy::{translator_greedy, CandidateOrder, GreedyConfig, GreedyConfigBuilder};
pub use model::{evaluate_table, ModelScore, TraceStep, TranslatorModel};
pub use persist::{EngineSnapshotParts, InspectReport, SnapshotError};
pub use predict::{predict_row, prediction_quality, PredictionQuality};
pub use rule::{Direction, TranslationRule};
pub use select::{
    translator_select, translator_select_candidates, translator_select_candidates_with_stats,
    SelectConfig, SelectConfigBuilder, SelectStats,
};
pub use table::TranslationTable;
