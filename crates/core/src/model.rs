//! Fitted models, search traces, and table evaluation.

use twoview_data::prelude::*;

use crate::cover::CoverState;
use crate::rule::TranslationRule;
use crate::table::TranslationTable;

/// One step of a greedy model-construction run (a rule addition).
///
/// This is exactly the information plotted in the paper's Fig. 2: the
/// evolution of `|U|`, `|E|` and the encoded lengths while the table grows.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// 0-based index of the added rule.
    pub rule_index: usize,
    /// The rule that was added.
    pub rule: TranslationRule,
    /// Its compression gain at the time of addition (bits).
    pub gain: f64,
    /// `L(D_{L↔R}, T)` after the addition.
    pub l_total: f64,
    /// `L(T)` after the addition.
    pub l_table: f64,
    /// `L(C_L | T)` — the encoded right-to-left translation.
    pub l_correction_left: f64,
    /// `L(C_R | T)` — the encoded left-to-right translation.
    pub l_correction_right: f64,
    /// `|U_L|`: uncovered ones on the left.
    pub uncovered_left: usize,
    /// `|U_R|`: uncovered ones on the right.
    pub uncovered_right: usize,
    /// `|E_L|`: erroneous ones on the left.
    pub errors_left: usize,
    /// `|E_R|`: erroneous ones on the right.
    pub errors_right: usize,
}

impl TraceStep {
    /// Captures a trace step from the current cover state.
    pub fn capture(state: &CoverState<'_>, rule: TranslationRule, gain: f64) -> TraceStep {
        TraceStep {
            rule_index: state.table().len() - 1,
            rule,
            gain,
            l_total: state.total_length(),
            l_table: state.l_table(),
            l_correction_left: state.l_correction(Side::Left),
            l_correction_right: state.l_correction(Side::Right),
            uncovered_left: state.n_uncovered(Side::Left),
            uncovered_right: state.n_uncovered(Side::Right),
            errors_left: state.n_errors(Side::Left),
            errors_right: state.n_errors(Side::Right),
        }
    }
}

/// Encoded-length summary of a translation table on a dataset.
#[derive(Clone, Copy, Debug)]
pub struct ModelScore {
    /// `L(D, ∅)` — the uncompressed size.
    pub l_empty: f64,
    /// `L(D_{L↔R}, T)` — the total encoded size.
    pub l_total: f64,
    /// `L(T)`.
    pub l_table: f64,
    /// `L(C_L | T)`.
    pub l_correction_left: f64,
    /// `L(C_R | T)`.
    pub l_correction_right: f64,
    /// `|U| + |E|` over both sides (ones in the correction tables).
    pub correction_ones: usize,
    /// `(|I_L| + |I_R|) · |D|` — the denominator of `|C|%`.
    pub total_cells: usize,
}

impl ModelScore {
    /// Compression ratio `L% = 100 · L(D,T) / L(D,∅)`.
    pub fn compression_pct(&self) -> f64 {
        if self.l_empty == 0.0 {
            100.0
        } else {
            100.0 * self.l_total / self.l_empty
        }
    }

    /// Correction density `|C|% = 100 · |C| / ((|I_L|+|I_R|)·|D|)` (paper §6).
    pub fn correction_pct(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            100.0 * self.correction_ones as f64 / self.total_cells as f64
        }
    }
}

/// Scores an arbitrary translation table on a dataset (used both for the
/// TRANSLATOR outputs and for baseline rule sets converted to tables).
pub fn evaluate_table(data: &TwoViewDataset, table: &TranslationTable) -> ModelScore {
    let state = CoverState::from_table(data, table);
    score_of(&state)
}

/// Scores the current state of a cover-state (no recomputation).
pub fn score_of(state: &CoverState<'_>) -> ModelScore {
    let data = state.data();
    ModelScore {
        l_empty: state.codes().empty_model(data),
        l_total: state.total_length(),
        l_table: state.l_table(),
        l_correction_left: state.l_correction(Side::Left),
        l_correction_right: state.l_correction(Side::Right),
        correction_ones: state.correction_ones(),
        total_cells: data.n_transactions() * data.vocab().n_items(),
    }
}

/// The result of running one of the TRANSLATOR algorithms.
#[derive(Clone, Debug)]
pub struct TranslatorModel {
    /// The induced translation table.
    pub table: TranslationTable,
    /// Final encoded-length summary.
    pub score: ModelScore,
    /// Per-rule construction trace (Fig. 2 material).
    pub trace: Vec<TraceStep>,
    /// Number of candidate itemsets considered (0 for EXACT, which
    /// enumerates on the fly).
    pub n_candidates: usize,
    /// `true` if a search safety valve (node/candidate cap) fired, meaning
    /// optimality guarantees were lost.
    pub truncated: bool,
}

impl TranslatorModel {
    /// Compression ratio `L%` (lower is better; 100 = incompressible).
    pub fn compression_pct(&self) -> f64 {
        self.score.compression_pct()
    }

    /// Number of rules `|T|`.
    pub fn n_rules(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Direction;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![0, 2], vec![1, 3]],
        )
    }

    #[test]
    fn empty_table_scores_at_100_pct() {
        let d = toy();
        let score = evaluate_table(&d, &TranslationTable::new());
        assert!((score.compression_pct() - 100.0).abs() < 1e-9);
        assert_eq!(score.correction_ones, 12); // all ones uncovered
        assert_eq!(score.total_cells, 16);
        assert!((score.correction_pct() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn good_rule_compresses() {
        let d = toy();
        let table = TranslationTable::from_rules([TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([2]),
            Direction::Both,
        )]);
        let score = evaluate_table(&d, &table);
        assert!(score.compression_pct() < 100.0);
        assert!(score.l_table > 0.0);
        assert!(score.correction_ones < 12);
    }

    #[test]
    fn score_of_matches_evaluate_table() {
        let d = toy();
        let table = TranslationTable::from_rules([TranslationRule::new(
            ItemSet::from_items([0, 1]),
            ItemSet::from_items([2, 3]),
            Direction::Both,
        )]);
        let via_eval = evaluate_table(&d, &table);
        let state = CoverState::from_table(&d, &table);
        let via_state = score_of(&state);
        assert!((via_eval.l_total - via_state.l_total).abs() < 1e-12);
        assert_eq!(via_eval.correction_ones, via_state.correction_ones);
    }
}
