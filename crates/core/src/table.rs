//! Translation tables (paper Definition 2).

use std::fmt;

use twoview_data::prelude::*;

use crate::rule::{Direction, TranslationRule};

/// An ordered collection of translation rules.
///
/// Order is irrelevant for translation semantics (the TRANSLATE scheme
/// unions consequents), but insertion order is preserved because it records
/// the greedy search trajectory, which the experiments inspect.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranslationTable {
    rules: Vec<TranslationRule>,
}

impl TranslationTable {
    /// The empty table.
    pub fn new() -> Self {
        TranslationTable { rules: Vec::new() }
    }

    /// Builds a table from rules.
    pub fn from_rules<I: IntoIterator<Item = TranslationRule>>(rules: I) -> Self {
        TranslationTable {
            rules: rules.into_iter().collect(),
        }
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: TranslationRule) {
        self.rules.push(rule);
    }

    /// Number of rules `|T|`.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` for the empty table.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates the rules in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, TranslationRule> {
        self.rules.iter()
    }

    /// The rules as a slice.
    pub fn rules(&self) -> &[TranslationRule] {
        &self.rules
    }

    /// Average number of items per rule (0 for an empty table).
    pub fn avg_rule_length(&self) -> f64 {
        if self.rules.is_empty() {
            0.0
        } else {
            self.rules.iter().map(|r| r.len() as f64).sum::<f64>() / self.rules.len() as f64
        }
    }

    /// Number of bidirectional rules.
    pub fn n_bidirectional(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| r.direction == Direction::Both)
            .count()
    }

    /// All rules that fire when translating from `side`, i.e. whose
    /// direction covers that orientation.
    pub fn rules_from(&self, side: Side) -> impl Iterator<Item = &TranslationRule> {
        self.rules
            .iter()
            .filter(move |r| r.direction.fires_from(side))
    }

    /// Renders the table with item names, one rule per line.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> TableDisplay<'a> {
        TableDisplay { table: self, vocab }
    }
}

impl<'a> IntoIterator for &'a TranslationTable {
    type Item = &'a TranslationRule;
    type IntoIter = std::slice::Iter<'a, TranslationRule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

/// Helper returned by [`TranslationTable::display`].
pub struct TableDisplay<'a> {
    table: &'a TranslationTable,
    vocab: &'a Vocabulary,
}

impl fmt::Display for TableDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in self.table.iter() {
            writeln!(f, "{}", rule.display(self.vocab))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TranslationTable {
        TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::from_items([0]),
                ItemSet::from_items([3, 4]),
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::from_items([1, 2]),
                ItemSet::from_items([3]),
                Direction::Forward,
            ),
            TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::from_items([4]),
                Direction::Backward,
            ),
        ])
    }

    #[test]
    fn len_and_push() {
        let mut t = TranslationTable::new();
        assert!(t.is_empty());
        t.push(TranslationRule::new(
            ItemSet::from_items([0]),
            ItemSet::from_items([3]),
            Direction::Both,
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn avg_length_and_bidir_count() {
        let t = sample_table();
        assert!((t.avg_rule_length() - 3.0).abs() < 1e-12);
        assert_eq!(t.n_bidirectional(), 1);
        assert_eq!(TranslationTable::new().avg_rule_length(), 0.0);
    }

    #[test]
    fn rules_from_filters_by_direction() {
        let t = sample_table();
        let from_left: Vec<_> = t.rules_from(Side::Left).collect();
        assert_eq!(from_left.len(), 2); // Both + Forward
        let from_right: Vec<_> = t.rules_from(Side::Right).collect();
        assert_eq!(from_right.len(), 2); // Both + Backward
    }

    #[test]
    fn display_renders_each_rule() {
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y"]);
        let out = format!("{}", sample_table().display(&vocab));
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("{a} <-> {x, y}"));
    }
}
