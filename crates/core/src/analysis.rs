//! Rule and rule-set analysis: the interestingness measures used when
//! *inspecting* translation tables (paper §6.4 discusses rules via their
//! confidences and supports; Fig. 3 via item coverage and redundancy).
//!
//! None of these measures participate in model selection — MDL does that —
//! but they are what an analyst reads off a fitted table.

use twoview_data::prelude::*;

use crate::table::TranslationTable;

/// Per-rule association statistics.
#[derive(Clone, Debug)]
pub struct RuleStats {
    /// `|supp(X)|`.
    pub support_left: usize,
    /// `|supp(Y)|`.
    pub support_right: usize,
    /// `|supp(X ∪ Y)|`.
    pub support_joint: usize,
    /// `c(X→Y) = supp(XY)/supp(X)`.
    pub confidence_forward: f64,
    /// `c(X←Y) = supp(XY)/supp(Y)`.
    pub confidence_backward: f64,
    /// `max` of the two confidences — the paper's `c+`.
    pub max_confidence: f64,
    /// `lift = P(XY) / (P(X)·P(Y))`; 1 = independence.
    pub lift: f64,
    /// `leverage = P(XY) − P(X)·P(Y)`.
    pub leverage: f64,
    /// Jaccard of the two support sets (redescription accuracy).
    pub jaccard: f64,
}

/// Computes the statistics of one rule (given as its two itemsets).
pub fn rule_stats(data: &TwoViewDataset, left: &ItemSet, right: &ItemSet) -> RuleStats {
    let n = data.n_transactions().max(1) as f64;
    let tl = data.support_set(left);
    let tr = data.support_set(right);
    let sl = tl.len();
    let sr = tr.len();
    let sj = tl.intersection_len(&tr);
    let union = tl.union_len(&tr);
    let (pl, pr, pj) = (sl as f64 / n, sr as f64 / n, sj as f64 / n);
    RuleStats {
        support_left: sl,
        support_right: sr,
        support_joint: sj,
        confidence_forward: if sl == 0 { 0.0 } else { sj as f64 / sl as f64 },
        confidence_backward: if sr == 0 { 0.0 } else { sj as f64 / sr as f64 },
        max_confidence: {
            let f = if sl == 0 { 0.0 } else { sj as f64 / sl as f64 };
            let b = if sr == 0 { 0.0 } else { sj as f64 / sr as f64 };
            f.max(b)
        },
        lift: if pl * pr == 0.0 { 0.0 } else { pj / (pl * pr) },
        leverage: pj - pl * pr,
        jaccard: if union == 0 {
            0.0
        } else {
            sj as f64 / union as f64
        },
    }
}

/// Summary of a whole translation table.
#[derive(Clone, Debug)]
pub struct TableSummary {
    /// `|T|`.
    pub n_rules: usize,
    /// Bidirectional rule count.
    pub n_bidirectional: usize,
    /// Mean items per rule.
    pub avg_len: f64,
    /// Mean `c+`.
    pub avg_max_confidence: f64,
    /// Mean lift.
    pub avg_lift: f64,
    /// Distinct items used, per side.
    pub items_used: (usize, usize),
    /// Mean pairwise rule overlap (see [`rule_set_redundancy`]).
    pub redundancy: f64,
}

/// Summarises a table.
pub fn summarize(data: &TwoViewDataset, table: &TranslationTable) -> TableSummary {
    let vocab = data.vocab();
    let mut left_used = Bitmap::new(vocab.n_left());
    let mut right_used = Bitmap::new(vocab.n_right());
    let mut sum_conf = 0.0;
    let mut sum_lift = 0.0;
    for rule in table.iter() {
        let st = rule_stats(data, &rule.left, &rule.right);
        sum_conf += st.max_confidence;
        sum_lift += st.lift;
        for i in rule.left.iter() {
            left_used.insert(vocab.local_index(i));
        }
        for i in rule.right.iter() {
            right_used.insert(vocab.local_index(i));
        }
    }
    let n = table.len();
    TableSummary {
        n_rules: n,
        n_bidirectional: table.n_bidirectional(),
        avg_len: table.avg_rule_length(),
        avg_max_confidence: if n == 0 { 0.0 } else { sum_conf / n as f64 },
        avg_lift: if n == 0 { 0.0 } else { sum_lift / n as f64 },
        items_used: (left_used.len(), right_used.len()),
        redundancy: rule_set_redundancy(table),
    }
}

/// Mean pairwise Jaccard overlap of the rules' joint itemsets — the
/// redundancy the paper criticises in top-k association rules and
/// redescription output (0 = perfectly non-redundant).
pub fn rule_set_redundancy(table: &TranslationTable) -> f64 {
    let n = table.len();
    if n < 2 {
        return 0.0;
    }
    let joints: Vec<ItemSet> = table.iter().map(|r| r.left.union(&r.right)).collect();
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let inter = joints[i].intersect(&joints[j]).len();
            let union = joints[i].len() + joints[j].len() - inter;
            if union > 0 {
                sum += inter as f64 / union as f64;
            }
            pairs += 1;
        }
    }
    sum / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Direction, TranslationRule};

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2],
                vec![0],
                vec![1, 3],
                vec![2],
            ],
        )
    }

    #[test]
    fn stats_are_exact() {
        let d = toy();
        let st = rule_stats(&d, &ItemSet::singleton(0), &ItemSet::singleton(2));
        // supp(a)=4, supp(x)=4, supp(ax)=3, n=6
        assert_eq!(
            (st.support_left, st.support_right, st.support_joint),
            (4, 4, 3)
        );
        assert!((st.confidence_forward - 0.75).abs() < 1e-12);
        assert!((st.confidence_backward - 0.75).abs() < 1e-12);
        assert!((st.max_confidence - 0.75).abs() < 1e-12);
        let lift = (3.0 / 6.0) / ((4.0 / 6.0) * (4.0 / 6.0));
        assert!((st.lift - lift).abs() < 1e-12);
        assert!((st.leverage - (0.5 - 4.0 / 9.0)).abs() < 1e-12);
        assert!((st.jaccard - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn independence_has_lift_one() {
        // a and y co-occur never; a and x strongly. Build an exactly
        // independent pair instead: items occurring in disjoint halves with
        // the right joint frequency.
        let vocab = Vocabulary::new(["p"], ["q"]);
        let d = TwoViewDataset::from_transactions(vocab, &[vec![0, 1], vec![0], vec![1], vec![]]);
        // P(p)=1/2, P(q)=1/2, P(pq)=1/4 => lift 1, leverage 0.
        let st = rule_stats(&d, &ItemSet::singleton(0), &ItemSet::singleton(1));
        assert!((st.lift - 1.0).abs() < 1e-12);
        assert!(st.leverage.abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates() {
        let d = toy();
        let table = TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::singleton(0),
                ItemSet::singleton(2),
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::singleton(1),
                ItemSet::singleton(3),
                Direction::Forward,
            ),
        ]);
        let s = summarize(&d, &table);
        assert_eq!(s.n_rules, 2);
        assert_eq!(s.n_bidirectional, 1);
        assert_eq!(s.items_used, (2, 2));
        assert!((s.avg_len - 2.0).abs() < 1e-12);
        assert!(s.avg_max_confidence > 0.7);
        assert_eq!(s.redundancy, 0.0, "disjoint rules are non-redundant");
    }

    #[test]
    fn redundancy_detects_overlap() {
        let overlapping = TranslationTable::from_rules([
            TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::singleton(2),
                Direction::Both,
            ),
            TranslationRule::new(
                ItemSet::from_items([0, 1]),
                ItemSet::singleton(3),
                Direction::Both,
            ),
        ]);
        // Joints {0,1,2} and {0,1,3}: Jaccard 2/4.
        assert!((rule_set_redundancy(&overlapping) - 0.5).abs() < 1e-12);
        assert_eq!(rule_set_redundancy(&TranslationTable::new()), 0.0);
    }

    #[test]
    fn empty_table_summary() {
        let d = toy();
        let s = summarize(&d, &TranslationTable::new());
        assert_eq!(s.n_rules, 0);
        assert_eq!(s.avg_max_confidence, 0.0);
        assert_eq!(s.items_used, (0, 0));
    }
}
