//! `Engine` — the session-oriented serving API.
//!
//! The paper's workflow is *mine once, then induce/query many ways*: one
//! closed-candidate set feeds TRANSLATOR-{EXACT, SELECT, GREEDY}, and the
//! resulting tables are queried in both directions. The free-function API
//! re-mines per call and cannot serve concurrent queries; an [`Engine`]
//! instead **owns** the dataset, mines and caches the two-view candidate
//! substrate (plus seed tidsets) once at construction, and then serves
//! [`Engine::fit`], [`Engine::translate`], [`Engine::predict`] and
//! [`Engine::evaluate`] as **jobs**:
//!
//! * submittable concurrently from any number of threads,
//! * scheduled on a priority-aware queue ([`Priority::Interactive`] before
//!   [`Priority::Batch`], FIFO within class),
//! * cooperatively cancellable ([`JobHandle::cancel`]) with progress and
//!   timing observability on every [`JobHandle`].
//!
//! Completed jobs are **bit-identical to serial runs**: fits reuse the
//! cached candidates through the same `*_candidates` entry points the
//! serial API uses (a cancellation never yields a partial model), and the
//! data-parallel inner loops still run on the shared [`twoview_runtime`]
//! pool.
//!
//! A fit whose config cannot be served from the cache (minsup *below* the
//! mined base, a different candidate class, a tighter mining valve)
//! transparently re-mines — and that time is surfaced in
//! [`EngineStats::fit_mine_ms`], which stays exactly `0` while every fit
//! reuses the cache (the invariant `perfsuite` gates on).
//!
//! # Robustness
//!
//! The engine is hardened for long-lived serving (every knob on
//! [`EngineBuilder`], every counter in [`EngineStats`]):
//!
//! * **deadlines** — [`EngineBuilder::default_deadline`] bounds every
//!   job's queue wait and total time; per-call overrides via
//!   [`Engine::fit_opts`]. Expiry yields [`JobError::DeadlineExceeded`],
//!   never a partial model.
//! * **bounded admission** — [`EngineBuilder::lane_capacity`] plus an
//!   [`AdmissionPolicy`] (block / reject / shed-oldest-batch) gives the
//!   in-process backpressure contract a 429-returning front door maps
//!   onto; turned-away jobs complete with [`JobError::Rejected`].
//! * **deterministic retry** — a [`RetryPolicy`] re-runs a *panicked*
//!   job body (transient faults) with exponential backoff inside the
//!   same job; cancellation and deadline expiry are never retried. A
//!   fit that succeeds on attempt *n* is bit-identical to a first-try
//!   success.
//! * **graceful degradation** — when the shared seed-tidset warm fails
//!   (memory budget, injected fault), base-minsup SELECT fits fall back
//!   to recomputing tidsets per run: correct and bit-identical, just
//!   slower, counted in [`EngineStats::fits_degraded`].
//!
//! Failure modes are provoked on demand through the deterministic
//! [`twoview_runtime::faults`] harness (see `tests/engine_chaos.rs`).
//!
//! ```
//! use twoview_core::engine::{Algorithm, Engine};
//! use twoview_core::select::SelectConfig;
//! use twoview_data::prelude::*;
//!
//! let vocab = Vocabulary::new(["rainy", "windy"], ["umbrella", "kite"]);
//! let data = TwoViewDataset::from_transactions(
//!     vocab,
//!     &[vec![0, 2], vec![0, 2], vec![0, 2], vec![1, 3], vec![1, 3], vec![0, 1, 2, 3]],
//! );
//! let engine = Engine::builder().dataset(data).minsup(1).build()?;
//! let model = engine
//!     .fit(Algorithm::Select(SelectConfig::builder().k(1).build()))
//!     .join()?;
//! assert!(model.compression_pct() < 100.0);
//! # Ok::<(), twoview_core::Error>(())
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twoview_data::prelude::*;
use twoview_mining::{CandidateCache, MinerConfig, TwoViewCandidate};
use twoview_runtime::jobs::panic_message;
use twoview_runtime::obs;
use twoview_runtime::{
    AdmissionPolicy, Deadline, JobCtx, JobError, JobHandle, JobOptions, JobQueue, Priority,
    QueueConfig, RetryPolicy,
};

use crate::error::Error;
use crate::exact::{run_exact, ExactConfig};
use crate::greedy::{run_greedy, GreedyConfig};
use crate::model::{evaluate_table, ModelScore, TranslatorModel};
use crate::persist;
use crate::predict::predict_row;
use crate::select::{run_select, SelectConfig};
use crate::table::TranslationTable;
use crate::translate;

/// The TRANSLATOR algorithm to run, with its configuration.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// TRANSLATOR-EXACT (paper Algorithm 2).
    Exact(ExactConfig),
    /// TRANSLATOR-SELECT(k) (paper Algorithm 3).
    Select(SelectConfig),
    /// TRANSLATOR-GREEDY (paper §5.4).
    Greedy(GreedyConfig),
}

impl Algorithm {
    /// The paper's recommended trade-off: SELECT(1) — near-exact
    /// compression at a fraction of the runtime (paper §6.1 discussion).
    pub fn recommended(minsup: usize) -> Algorithm {
        Algorithm::Select(SelectConfig::builder().k(1).minsup(minsup).build())
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Algorithm::Exact(_) => "T-EXACT".to_string(),
            Algorithm::Select(c) => format!("T-SELECT({})", c.k),
            Algorithm::Greedy(_) => "T-GREEDY".to_string(),
        }
    }
}

/// Fits a translation table with the chosen algorithm (one-shot; mines per
/// call). Serving paths should construct an [`Engine`] instead.
pub fn fit(data: &TwoViewDataset, algorithm: &Algorithm) -> TranslatorModel {
    match algorithm {
        Algorithm::Exact(cfg) => crate::exact::translator_exact_with(data, cfg),
        Algorithm::Select(cfg) => crate::select::translator_select(data, cfg),
        Algorithm::Greedy(cfg) => crate::greedy::translator_greedy(data, cfg),
    }
}

/// Builder for [`Engine`]; see [`Engine::builder`].
#[derive(Debug)]
pub struct EngineBuilder {
    dataset: Option<TwoViewDataset>,
    minsup: usize,
    closed_candidates: bool,
    max_candidates: usize,
    n_threads: Option<usize>,
    job_executors: usize,
    lane_capacity: Option<usize>,
    admission: AdmissionPolicy,
    retry: RetryPolicy,
    default_deadline: Deadline,
    snapshot_dir: Option<PathBuf>,
    /// Pre-validated snapshot parts installed by [`Engine::load_snapshot`]
    /// (bypasses the opportunistic `snapshot_dir` probe).
    preloaded: Option<persist::EngineSnapshotParts>,
}

impl Default for EngineBuilder {
    /// Same defaults as [`Engine::builder`] (2M-candidate valve, closed
    /// class, minsup 1, two executors) — `EngineBuilder::default()` and
    /// `Engine::builder()` are interchangeable.
    fn default() -> Self {
        EngineBuilder::new()
    }
}

impl EngineBuilder {
    fn new() -> Self {
        EngineBuilder {
            dataset: None,
            minsup: 1,
            closed_candidates: true,
            max_candidates: 2_000_000,
            n_threads: None,
            job_executors: 2,
            lane_capacity: None,
            admission: AdmissionPolicy::default(),
            retry: RetryPolicy::default(),
            default_deadline: Deadline::NONE,
            snapshot_dir: None,
            preloaded: None,
        }
    }

    /// The dataset the engine will own and serve (required).
    pub fn dataset(mut self, data: TwoViewDataset) -> Self {
        self.dataset = Some(data);
        self
    }

    /// Base minsup of the cached candidate set (clamped to at least 1).
    /// Fits at `minsup ≥` this reuse the cache; below it they re-mine.
    pub fn minsup(mut self, minsup: usize) -> Self {
        self.minsup = minsup.max(1);
        self
    }

    /// Cache closed candidates (the paper's class, the default) or all
    /// frequent two-view itemsets.
    pub fn closed_candidates(mut self, closed: bool) -> Self {
        self.closed_candidates = closed;
        self
    }

    /// Candidate-count mining valve.
    pub fn max_candidates(mut self, n: usize) -> Self {
        self.max_candidates = n;
        self
    }

    /// Worker threads for mining and the fits' data-parallel loops
    /// (`Some(t)` semantics; default inherits the process default).
    pub fn threads(mut self, t: usize) -> Self {
        self.n_threads = Some(t);
        self
    }

    /// Dedicated job-executor threads (default 2; clamped to at least 1).
    /// Executors only coordinate — the heavy lifting runs on the shared
    /// pool — so a handful suffices even under many concurrent jobs.
    pub fn job_executors(mut self, n: usize) -> Self {
        self.job_executors = n.max(1);
        self
    }

    /// Bound each priority lane to `capacity` queued jobs (default:
    /// unbounded). Pair with [`EngineBuilder::admission`] to choose what
    /// a full lane does to new submissions.
    pub fn lane_capacity(mut self, capacity: usize) -> Self {
        self.lane_capacity = Some(capacity.max(1));
        self
    }

    /// Full-lane behaviour (default [`AdmissionPolicy::Block`]):
    /// backpressure on the submitter, immediate [`JobError::Rejected`],
    /// or shedding the oldest queued batch job.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Retry schedule for transient (panicking) job bodies — including
    /// injected faults — applied to every fit/translate/predict/evaluate
    /// job. Default: no retries. Retries are deterministic: same
    /// backoff schedule every run, and a fit that eventually succeeds is
    /// bit-identical to a fault-free one.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Deadline applied to every job submitted through the convenience
    /// methods (default: none). Override per fit with
    /// [`Engine::fit_opts`].
    pub fn default_deadline(mut self, deadline: Deadline) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Warm-start from (and persist to) `dir/engine.snap`.
    ///
    /// [`EngineBuilder::build`] first tries to load a snapshot from the
    /// directory: a valid one whose dataset identity **and** mining
    /// config (minsup, candidate class, valve) match skips construction
    /// mining entirely ([`EngineStats::build_mine_ms`] reads `0`), and
    /// the warm-started engine is bit-identical to a cold-started one.
    /// *Any* load failure — missing file, version skew, truncation,
    /// corruption, a different dataset — falls back to a normal cold
    /// build (counted in [`EngineStats::snapshots_rejected`], surfaced
    /// as an `engine.snapshot.reject` event; a missing file is just a
    /// cold start). After a cold build the freshly mined cache is
    /// written back crash-safely; a failed save never fails the build.
    pub fn snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Mines and caches the candidate substrate, warms the seed tidsets,
    /// and starts the job executors.
    ///
    /// Construction-time mining is covered by the retry policy (an
    /// injected transient mining panic is retried like an in-job one);
    /// a *warm* failure is not an error at all — the engine starts
    /// degraded (see [`EngineStats::seed_cache_warm`]) and fits
    /// recompute tidsets per run.
    pub fn build(mut self) -> Result<Engine, Error> {
        let data = self
            .dataset
            .take()
            .ok_or_else(|| Error::config("Engine::builder() needs a dataset"))?;
        let data = Arc::new(data);
        // Create the snapshot counters before any load attempt so the
        // engine's stats read the same per-instance cells the warm-start
        // path increments.
        let snapshots_loaded = obs::counter("engine.snapshots_loaded");
        let snapshots_rejected = obs::counter("engine.snapshots_rejected");
        let snapshot_path = self
            .snapshot_dir
            .as_ref()
            .map(|dir| dir.join(persist::ENGINE_SNAPSHOT_FILE));
        let mut loaded_cache: Option<CandidateCache> = None;
        if let Some(parts) = self.preloaded.take() {
            // Engine::load_snapshot already read and validated the file.
            snapshots_loaded.incr();
            obs::event(
                "engine.snapshot.load",
                &[
                    ("candidates", (parts.candidates.len() as u64).into()),
                    ("seeds", parts.seeds.is_some().into()),
                ],
            );
            loaded_cache = Some(persist_parts_into_cache(parts));
        } else if let Some(path) = snapshot_path.as_deref().filter(|p| p.exists()) {
            match persist::read_engine_snapshot(path, &data) {
                Ok(parts)
                    if parts.minsup == self.minsup.max(1)
                        && parts.closed == self.closed_candidates
                        && parts.mine_valve == self.max_candidates =>
                {
                    snapshots_loaded.incr();
                    obs::event(
                        "engine.snapshot.load",
                        &[
                            ("candidates", (parts.candidates.len() as u64).into()),
                            ("seeds", parts.seeds.is_some().into()),
                        ],
                    );
                    loaded_cache = Some(persist_parts_into_cache(parts));
                }
                Ok(_) => {
                    // Structurally valid, mined under a different config:
                    // serving it would break fit/cache equivalence.
                    snapshots_rejected.incr();
                    obs::event(
                        "engine.snapshot.reject",
                        &[("reason", "config_mismatch".into())],
                    );
                }
                Err(e) => {
                    snapshots_rejected.incr();
                    obs::event("engine.snapshot.reject", &[("reason", e.kind().into())]);
                }
            }
        }
        let warm_started = loaded_cache.is_some();
        let miner_cfg = miner_config(self.minsup, self.max_candidates, self.n_threads);
        // lint: allow(determinism) — wall-clock timing feeds stats/obs only, never model state
        let mine_start = Instant::now();
        let closed = self.closed_candidates;
        let cache = match loaded_cache {
            Some(cache) => cache,
            None => {
                let mut span = obs::span("engine.build.mine");
                span.field("minsup", self.minsup as u64);
                let mut attempt = 1u32;
                loop {
                    match catch_unwind(AssertUnwindSafe(|| {
                        CandidateCache::mine(&data, &miner_cfg, closed)
                    })) {
                        Ok(cache) => break cache,
                        Err(payload) => {
                            if attempt >= self.retry.max_attempts {
                                return Err(Error::Job(JobError::Panicked(panic_message(
                                    payload.as_ref(),
                                ))));
                            }
                            std::thread::sleep(self.retry.backoff_after(attempt));
                            attempt += 1;
                        }
                    }
                }
            }
        };
        // Warm the shared seed tidsets while we are still single-threaded
        // (lazy init would otherwise race the first fits into computing
        // them inside a job). A failed warm (budget, injected fault) is
        // the degraded-but-correct path, not an error.
        let seed_cache_warm = {
            let mut span = obs::span("engine.cache.warm");
            let warm = cache.tidsets(&data).is_some();
            span.field("ok", warm);
            warm
        };
        let build_mine_ms = if warm_started {
            0.0
        } else {
            mine_start.elapsed().as_secs_f64() * 1e3
        };
        // A cold build with a snapshot directory writes the freshly mined
        // cache back so the *next* start is warm. Persistence is best
        // effort: a failed save (disk full, injected snapshot.write_fail)
        // leaves a fully serviceable engine.
        if let (Some(path), false) = (snapshot_path.as_deref(), warm_started) {
            match persist::write_engine_snapshot(path, &data, &cache, self.max_candidates) {
                Ok(()) => obs::event("engine.snapshot.save", &[("ok", true.into())]),
                Err(e) => obs::event(
                    "engine.snapshot.save",
                    &[("ok", false.into()), ("reason", e.kind().into())],
                ),
            }
        }
        let queue_config = {
            let mut cfg = QueueConfig::new(self.job_executors).admission(self.admission);
            if let Some(capacity) = self.lane_capacity {
                cfg = cfg.lane_capacity(capacity);
            }
            cfg
        };
        Ok(Engine {
            inner: Arc::new(EngineInner {
                data,
                cache,
                mine_valve: self.max_candidates,
                n_threads: self.n_threads,
                build_mine_ms,
                seed_cache_warm,
                retry: self.retry,
                default_deadline: self.default_deadline,
                fit_mine_ns: obs::counter("engine.fit_mine_ns"),
                fits_completed: obs::counter("engine.fits_completed"),
                fits_retried: obs::counter("engine.jobs_retried"),
                fits_degraded: obs::counter("engine.fits_degraded"),
                jobs_submitted: obs::counter("engine.jobs_submitted"),
                snapshots_loaded,
                snapshots_rejected,
            }),
            queue: JobQueue::with_config(queue_config),
        })
    }
}

/// Reassembles a [`CandidateCache`] from validated snapshot parts.
fn persist_parts_into_cache(parts: persist::EngineSnapshotParts) -> CandidateCache {
    CandidateCache::from_parts(
        parts.minsup,
        parts.closed,
        parts.truncated,
        parts.candidates,
        parts.seeds,
    )
}

fn miner_config(minsup: usize, max_candidates: usize, n_threads: Option<usize>) -> MinerConfig {
    let mut cfg = MinerConfig::builder()
        .minsup(minsup)
        .max_itemsets(max_candidates)
        .build();
    cfg.n_threads = n_threads;
    cfg
}

/// Aggregate observability of one engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    /// Cached candidates.
    pub n_candidates: usize,
    /// The base minsup the cache was mined at.
    pub base_minsup: usize,
    /// Whether the cache holds closed candidates.
    pub closed_candidates: bool,
    /// Whether cache mining hit the candidate valve.
    pub truncated: bool,
    /// Milliseconds spent mining at construction.
    pub build_mine_ms: f64,
    /// Milliseconds spent *re*-mining inside fit jobs (configs the cache
    /// could not serve). Exactly `0.0` while every fit reuses the cache.
    pub fit_mine_ms: f64,
    /// Fit jobs completed successfully.
    pub fits_completed: u64,
    /// Jobs submitted (all kinds).
    pub jobs_submitted: u64,
    /// Whether the construction-time seed-tidset warm succeeded. `false`
    /// means the engine serves degraded (correct, slower) base-minsup
    /// SELECT fits.
    pub seed_cache_warm: bool,
    /// Body attempts beyond the first across all jobs (retry activity).
    pub jobs_retried: u64,
    /// Fits served without the shared seed tidsets although the config
    /// was otherwise eligible (failed warm or budget pressure): the
    /// graceful-degradation counter.
    pub fits_degraded: u64,
    /// Jobs refused by admission control ([`JobError::Rejected`]).
    pub jobs_rejected: u64,
    /// Queued batch jobs shed by [`AdmissionPolicy::ShedOldestBatch`].
    pub jobs_shed: u64,
    /// Jobs whose [`Deadline`] expired.
    pub jobs_timed_out: u64,
    /// Executor threads restarted by supervision.
    pub executors_respawned: u64,
    /// Snapshots this engine warm-started from (0 on a cold start, 1
    /// after a successful [`EngineBuilder::snapshot_dir`] load or
    /// [`Engine::load_snapshot`]).
    pub snapshots_loaded: u64,
    /// Snapshot load attempts refused (damage, version skew, dataset or
    /// config mismatch) and recovered from by re-mining.
    pub snapshots_rejected: u64,
}

/// Cancellation/progress cadence of row-wise query jobs (translate,
/// predict).
const QUERY_CHECKPOINT_EVERY: usize = 1024;

/// What [`EngineInner::candidates_for`] hands a fit.
struct ServedCandidates<'a> {
    /// The candidate list (borrowed from the cache when servable).
    cands: std::borrow::Cow<'a, [TwoViewCandidate]>,
    /// Shared seed tidsets, when alignment allows.
    tids: Option<&'a [(Tidset, Tidset)]>,
    /// Truncation flag of whichever mining produced the list.
    truncated: bool,
    /// The config was eligible for shared tidsets but they are
    /// unavailable (failed warm / budget): the fit runs degraded.
    degraded: bool,
}

struct EngineInner {
    data: Arc<TwoViewDataset>,
    cache: CandidateCache,
    /// The mining valve the cache was mined with.
    mine_valve: usize,
    n_threads: Option<usize>,
    build_mine_ms: f64,
    /// Whether the construction-time seed-tidset warm succeeded.
    seed_cache_warm: bool,
    retry: RetryPolicy,
    default_deadline: Deadline,
    /// Nanoseconds of re-mining inside fit jobs (ns so that even a
    /// sub-microsecond re-mine on a toy dataset registers as nonzero).
    ///
    /// These counters are per-engine registry cells (`engine.*` names in
    /// [`twoview_runtime::obs`]): [`Engine::stats`] reads them per
    /// instance, `obs::snapshot()` sums them process-wide — one source of
    /// truth for both views.
    fit_mine_ns: obs::Counter,
    fits_completed: obs::Counter,
    fits_retried: obs::Counter,
    fits_degraded: obs::Counter,
    jobs_submitted: obs::Counter,
    snapshots_loaded: obs::Counter,
    snapshots_rejected: obs::Counter,
}

impl EngineInner {
    /// Candidates for a fit config: borrowed from the cache when the
    /// config is servable (same class, `minsup ≥` base, valve no tighter),
    /// otherwise freshly mined with the time charged to `fit_mine_us`.
    /// Also returns the shared tidsets (base-minsup reuse only — a
    /// filtered list no longer aligns with the cached tidset slice) and
    /// the truncation flag of whichever mining produced the list.
    fn candidates_for(
        &self,
        minsup: usize,
        closed: bool,
        max_candidates: usize,
    ) -> ServedCandidates<'_> {
        // Valve equivalence is judged against the valve the cache was
        // mined under (`mine_valve` counts *enumerated* itemsets, like a
        // direct mine's `max_itemsets` — not the post-split candidate
        // count). Untruncated cache: the enumeration stayed below
        // `mine_valve`, so any fit valve ≥ it cannot truncate either and
        // the runs are identical. Truncated cache: only the exact mining
        // run the cache *is* can be reproduced — same valve AND same
        // minsup (a support-filtered truncated list is not what a direct
        // truncated mine at the higher minsup would enumerate; see the
        // `CandidateCache` docs) — anything else re-mines (counted),
        // keeping engine fits equivalent to direct mining for every
        // config.
        let servable = if self.cache.truncated() {
            max_candidates == self.mine_valve && minsup.max(1) == self.cache.minsup()
        } else {
            max_candidates >= self.mine_valve
        };
        if closed == self.cache.closed() && servable {
            if let Some(cands) = self.cache.at_minsup(minsup) {
                let eligible = minsup.max(1) == self.cache.minsup();
                let shared_tids = if eligible {
                    self.cache.tidsets(&self.data)
                } else {
                    None
                };
                return ServedCandidates {
                    cands,
                    // Eligible but unavailable = the degraded (recompute
                    // per run) path; the model is identical either way.
                    degraded: eligible && shared_tids.is_none(),
                    tids: shared_tids,
                    truncated: self.cache.truncated(),
                };
            }
        }
        let mcfg = miner_config(minsup, max_candidates, self.n_threads);
        // lint: allow(determinism) — wall-clock timing feeds stats/obs only, never model state
        let start = Instant::now();
        let mut span = obs::span("engine.fit.mine");
        span.field("minsup", minsup as u64);
        let fresh = CandidateCache::mine(&self.data, &mcfg, closed);
        drop(span);
        self.fit_mine_ns
            .add(start.elapsed().as_nanos().max(1) as u64);
        let truncated = fresh.truncated();
        ServedCandidates {
            cands: std::borrow::Cow::Owned(fresh.candidates().to_vec()),
            tids: None,
            truncated,
            degraded: false,
        }
    }

    fn run_fit(&self, algorithm: &Algorithm, ctx: &JobCtx) -> Result<TranslatorModel, JobError> {
        let data = &*self.data;
        // A config that did not pick a thread count inherits the engine's
        // (EngineBuilder::threads); the model is identical for any value.
        let inherit = |cfg_threads: Option<usize>| cfg_threads.or(self.n_threads);
        let model = match algorithm {
            Algorithm::Select(cfg) => {
                let mut cfg = cfg.clone();
                cfg.n_threads = inherit(cfg.n_threads);
                let served =
                    self.candidates_for(cfg.minsup, cfg.closed_candidates, cfg.max_candidates);
                if served.degraded {
                    self.fits_degraded.incr();
                    obs::event(
                        "engine.degraded",
                        &[("reason", "seed_tidsets_unavailable".into())],
                    );
                }
                let mut model =
                    run_select(data, &cfg, &served.cands, served.tids, Some(ctx), None)?;
                model.truncated |= served.truncated;
                model
            }
            Algorithm::Greedy(cfg) => {
                let mut cfg = cfg.clone();
                cfg.n_threads = inherit(cfg.n_threads);
                let served =
                    self.candidates_for(cfg.minsup, cfg.closed_candidates, cfg.max_candidates);
                let mut model = run_greedy(data, &cfg, &served.cands, Some(ctx))?;
                model.truncated |= served.truncated;
                model
            }
            Algorithm::Exact(cfg) => {
                let mut cfg = cfg.clone();
                cfg.n_threads = inherit(cfg.n_threads);
                // Seeds never change an uncapped EXACT result (the optimum
                // dominates any seed), so a requested seed minsup *below*
                // the engine base is clamped up to the base instead of
                // re-mining — the cache keeps serving. Uncapped searches
                // return the same optimum either way; a node-capped run may
                // explore a different frontier than a free-function run
                // seeded below the base (capped frontiers already vary with
                // seeding). A non-closed cache cannot serve the closed
                // seeding contract, so that combination still re-mines.
                let seeds = match cfg.candidate_seed_minsup {
                    Some(m) => {
                        let m = if self.cache.closed() {
                            m.max(self.cache.minsup())
                        } else {
                            m
                        };
                        self.candidates_for(m, true, crate::exact::SEED_MINE_VALVE)
                            .cands
                    }
                    None => std::borrow::Cow::Owned(Vec::new()),
                };
                run_exact(data, &cfg, &seeds, Some(ctx))?
            }
        };
        self.fits_completed.incr();
        Ok(model)
    }

    /// Runs `body`, retrying *panicking* attempts per the engine's
    /// [`RetryPolicy`]. A clean `Err` (cancellation, deadline expiry) is
    /// final — only panics are treated as transient. Backoff is
    /// exponential and deterministic, slept in small slices so
    /// cancellation and the total deadline stay responsive between
    /// attempts. Attempts are surfaced in
    /// [`twoview_runtime::JobTimings::attempts`].
    fn with_retry<T>(
        &self,
        ctx: &JobCtx,
        mut body: impl FnMut(&JobCtx) -> Result<T, JobError>,
    ) -> Result<T, JobError> {
        let mut attempt = 1u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| body(ctx))) {
                Ok(result) => return result,
                Err(payload) => {
                    if attempt >= self.retry.max_attempts {
                        return Err(JobError::Panicked(panic_message(payload.as_ref())));
                    }
                    self.fits_retried.incr();
                    ctx.mark_retry();
                    let mut remaining = self.retry.backoff_after(attempt);
                    obs::event(
                        "job.backoff",
                        &[
                            ("attempt", u64::from(attempt).into()),
                            ("backoff_us", (remaining.as_micros() as u64).into()),
                        ],
                    );
                    while remaining > Duration::ZERO {
                        ctx.checkpoint()?;
                        let slice = remaining.min(Duration::from_millis(1));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                    ctx.checkpoint()?;
                    attempt += 1;
                }
            }
        }
    }
}

/// A long-lived serving session over one dataset. See the
/// [module docs](self) for the design; construct with [`Engine::builder`].
pub struct Engine {
    inner: Arc<EngineInner>,
    queue: JobQueue,
}

impl Engine {
    /// Starts a builder; [`EngineBuilder::dataset`] is required.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The owned dataset.
    pub fn dataset(&self) -> &TwoViewDataset {
        &self.inner.data
    }

    /// A shareable handle to the owned dataset.
    pub fn dataset_arc(&self) -> Arc<TwoViewDataset> {
        Arc::clone(&self.inner.data)
    }

    /// The cached candidate set (miner enumeration order).
    pub fn candidates(&self) -> &[TwoViewCandidate] {
        self.inner.cache.candidates()
    }

    /// Aggregate statistics (candidate cache + job + robustness
    /// counters).
    pub fn stats(&self) -> EngineStats {
        let queue = self.queue.stats();
        EngineStats {
            n_candidates: self.inner.cache.len(),
            base_minsup: self.inner.cache.minsup(),
            closed_candidates: self.inner.cache.closed(),
            truncated: self.inner.cache.truncated(),
            build_mine_ms: self.inner.build_mine_ms,
            fit_mine_ms: self.inner.fit_mine_ns.get() as f64 / 1e6,
            fits_completed: self.inner.fits_completed.get(),
            jobs_submitted: self.inner.jobs_submitted.get(),
            seed_cache_warm: self.inner.seed_cache_warm,
            jobs_retried: self.inner.fits_retried.get(),
            fits_degraded: self.inner.fits_degraded.get(),
            jobs_rejected: queue.rejected,
            jobs_shed: queue.shed,
            jobs_timed_out: queue.timed_out,
            executors_respawned: queue.executors_respawned,
            snapshots_loaded: self.inner.snapshots_loaded.get(),
            snapshots_rejected: self.inner.snapshots_rejected.get(),
        }
    }

    /// Writes this engine's mined state (candidate cache, warmed seed
    /// tidsets, dataset identity) to `path` as a crash-safe snapshot —
    /// see [`crate::persist`] for the format and guarantees. Safe to
    /// call while fits are running: the cache is immutable after
    /// construction, and the write is temp-file + atomic-rename.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        persist::write_engine_snapshot(
            path.as_ref(),
            &self.inner.data,
            &self.inner.cache,
            self.inner.mine_valve,
        )
        .map_err(Error::from)
    }

    /// Builds an engine directly from a snapshot file, *strictly*: unlike
    /// the [`EngineBuilder::snapshot_dir`] warm-start (which falls back
    /// to mining), any validation failure here is surfaced as
    /// [`Error::Snapshot`]. The engine adopts the snapshot's mining
    /// config (minsup, candidate class, valve); every other knob is the
    /// builder default. The result is bit-identical to an engine built
    /// cold with that config over the same dataset.
    pub fn load_snapshot(path: impl AsRef<Path>, data: TwoViewDataset) -> Result<Engine, Error> {
        let parts = persist::read_engine_snapshot(path.as_ref(), &data)?;
        let mut builder = Engine::builder()
            .dataset(data)
            .minsup(parts.minsup)
            .closed_candidates(parts.closed)
            .max_candidates(parts.mine_valve);
        builder.preloaded = Some(parts);
        builder.build()
    }

    /// Number of dedicated job executors.
    pub fn job_executors(&self) -> usize {
        self.queue.executors()
    }

    /// The underlying job queue. Custom jobs submitted here share the
    /// engine's lanes, capacity, and admission policy — the hook a
    /// serving front door builds on.
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Submits a fit job at [`Priority::Batch`].
    pub fn fit(&self, algorithm: Algorithm) -> JobHandle<TranslatorModel> {
        self.fit_with(algorithm, Priority::Batch)
    }

    /// Submits a fit job at the given priority (and the engine's default
    /// deadline). The completed model is bit-identical to the
    /// corresponding serial `*_candidates` run over
    /// [`Engine::candidates`]; progress ticks advance per iteration
    /// (SELECT/EXACT) or candidate block (GREEDY).
    pub fn fit_with(&self, algorithm: Algorithm, priority: Priority) -> JobHandle<TranslatorModel> {
        self.fit_opts(algorithm, priority, self.inner.default_deadline)
    }

    /// Submits a fit job with an explicit per-job [`Deadline`]
    /// (overriding the engine default). Expiry — in the queue or at a
    /// checkpoint — resolves the handle to
    /// [`JobError::DeadlineExceeded`]; like cancellation it never yields
    /// a partial model.
    pub fn fit_opts(
        &self,
        algorithm: Algorithm,
        priority: Priority,
        deadline: Deadline,
    ) -> JobHandle<TranslatorModel> {
        let inner = Arc::clone(&self.inner);
        self.inner.jobs_submitted.incr();
        self.queue
            .submit_opts(priority, JobOptions::with_deadline(deadline), move |ctx| {
                inner.with_retry(ctx, |ctx| inner.run_fit(&algorithm, ctx))
            })
    }

    /// Submits a translation job at [`Priority::Interactive`]: the full
    /// `from`-view translated through `table`, one target-side row bitmap
    /// per transaction.
    pub fn translate(&self, table: TranslationTable, from: Side) -> JobHandle<Vec<Bitmap>> {
        self.translate_with(table, from, Priority::Interactive)
    }

    /// [`Engine::translate`] at an explicit priority.
    pub fn translate_with(
        &self,
        table: TranslationTable,
        from: Side,
        priority: Priority,
    ) -> JobHandle<Vec<Bitmap>> {
        let inner = Arc::clone(&self.inner);
        let opts = JobOptions::with_deadline(self.inner.default_deadline);
        self.inner.jobs_submitted.incr();
        self.queue.submit_opts(priority, opts, move |ctx| {
            inner.with_retry(ctx, |ctx| {
                let n = inner.data.n_transactions();
                let mut out = Vec::with_capacity(n);
                for t in 0..n {
                    if t % QUERY_CHECKPOINT_EVERY == 0 {
                        ctx.checkpoint()?;
                        ctx.tick(1);
                    }
                    out.push(translate::translate_transaction(
                        &inner.data,
                        &table,
                        from,
                        t,
                    ));
                }
                Ok(out)
            })
        })
    }

    /// Submits a prediction job at [`Priority::Interactive`]: the opposite
    /// view predicted for each out-of-sample `from`-side row.
    pub fn predict(
        &self,
        table: TranslationTable,
        from: Side,
        rows: Vec<Bitmap>,
    ) -> JobHandle<Vec<Bitmap>> {
        self.predict_with(table, from, rows, Priority::Interactive)
    }

    /// [`Engine::predict`] at an explicit priority.
    pub fn predict_with(
        &self,
        table: TranslationTable,
        from: Side,
        rows: Vec<Bitmap>,
        priority: Priority,
    ) -> JobHandle<Vec<Bitmap>> {
        let inner = Arc::clone(&self.inner);
        let opts = JobOptions::with_deadline(self.inner.default_deadline);
        self.inner.jobs_submitted.incr();
        self.queue.submit_opts(priority, opts, move |ctx| {
            inner.with_retry(ctx, |ctx| {
                let mut out = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    if i % QUERY_CHECKPOINT_EVERY == 0 {
                        ctx.checkpoint()?;
                        ctx.tick(1);
                    }
                    out.push(predict_row(&inner.data, &table, from, row));
                }
                Ok(out)
            })
        })
    }

    /// Submits an evaluation job at [`Priority::Interactive`]: the MDL
    /// score of an arbitrary table on the owned dataset. (Scoring is one
    /// monolithic cover-state build, so cancellation is only observed
    /// before it starts.)
    pub fn evaluate(&self, table: TranslationTable) -> JobHandle<ModelScore> {
        self.evaluate_with(table, Priority::Interactive)
    }

    /// [`Engine::evaluate`] at an explicit priority.
    pub fn evaluate_with(
        &self,
        table: TranslationTable,
        priority: Priority,
    ) -> JobHandle<ModelScore> {
        let inner = Arc::clone(&self.inner);
        let opts = JobOptions::with_deadline(self.inner.default_deadline);
        self.inner.jobs_submitted.incr();
        self.queue.submit_opts(priority, opts, move |ctx| {
            inner.with_retry(ctx, |ctx| {
                ctx.checkpoint()?;
                Ok(evaluate_table(&inner.data, &table))
            })
        })
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n_transactions", &self.inner.data.n_transactions())
            .field("n_candidates", &self.inner.cache.len())
            .field("base_minsup", &self.inner.cache.minsup())
            .field("job_executors", &self.queue.executors())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::translator_greedy_candidates;
    use crate::select::translator_select_candidates;

    fn toy() -> TwoViewDataset {
        let vocab = Vocabulary::new(["a", "b"], ["x", "y"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 2],
                vec![0, 2],
                vec![0, 2],
                vec![1, 3],
                vec![1, 3],
                vec![0, 1, 2, 3],
            ],
        )
    }

    #[test]
    fn dispatcher_matches_direct_calls() {
        let d = toy();
        let select_cfg = SelectConfig::builder().build();
        let via_enum = fit(&d, &Algorithm::Select(select_cfg.clone()));
        let direct = crate::select::translator_select(&d, &select_cfg);
        assert_eq!(via_enum.table, direct.table);

        let greedy_cfg = GreedyConfig::builder().build();
        let via_enum = fit(&d, &Algorithm::Greedy(greedy_cfg.clone()));
        let direct = crate::greedy::translator_greedy(&d, &greedy_cfg);
        assert_eq!(via_enum.table, direct.table);

        let cfg = ExactConfig::default();
        let via_enum = fit(&d, &Algorithm::Exact(cfg.clone()));
        let direct = crate::exact::translator_exact_with(&d, &cfg);
        assert_eq!(via_enum.table, direct.table);
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::recommended(5).label(), "T-SELECT(1)");
        assert_eq!(
            Algorithm::Select(SelectConfig::builder().k(25).build()).label(),
            "T-SELECT(25)"
        );
        assert_eq!(
            Algorithm::Greedy(GreedyConfig::builder().build()).label(),
            "T-GREEDY"
        );
        assert_eq!(Algorithm::Exact(ExactConfig::default()).label(), "T-EXACT");
    }

    #[test]
    fn all_variants_compress_toy_data() {
        let d = toy();
        for alg in [
            Algorithm::Exact(ExactConfig::default()),
            Algorithm::recommended(1),
            Algorithm::Greedy(GreedyConfig::builder().build()),
        ] {
            let model = fit(&d, &alg);
            assert!(
                model.compression_pct() < 100.0,
                "{} failed to compress",
                alg.label()
            );
        }
    }

    #[test]
    fn builder_requires_dataset() {
        assert!(Engine::builder().build().is_err());
    }

    #[test]
    fn engine_fit_matches_serial_and_reuses_cache() {
        let d = toy();
        let engine = Engine::builder()
            .dataset(d.clone())
            .minsup(1)
            .build()
            .unwrap();
        let cands = engine.candidates().to_vec();
        assert!(!cands.is_empty());

        // SELECT at the base minsup: shared-tidset reuse path.
        let cfg = SelectConfig::builder().k(1).minsup(1).build();
        let model = engine.fit(Algorithm::Select(cfg.clone())).join().unwrap();
        let serial = translator_select_candidates(&d, &cfg, &cands);
        assert_eq!(model.table, serial.table);
        assert!((model.score.l_total - serial.score.l_total).abs() < 1e-9);

        // SELECT at a higher minsup: filtered-cache path.
        let cfg = SelectConfig::builder().k(2).minsup(3).build();
        let model = engine.fit(Algorithm::Select(cfg.clone())).join().unwrap();
        let serial = crate::select::translator_select(&d, &cfg);
        assert_eq!(model.table, serial.table);

        // GREEDY reuse.
        let gcfg = GreedyConfig::builder().minsup(1).build();
        let model = engine.fit(Algorithm::Greedy(gcfg.clone())).join().unwrap();
        let serial = translator_greedy_candidates(&d, &gcfg, &cands);
        assert_eq!(model.table, serial.table);

        // EXACT with cached seeds.
        let ecfg = ExactConfig::default();
        let model = engine.fit(Algorithm::Exact(ecfg.clone())).join().unwrap();
        let serial = crate::exact::translator_exact_with(&d, &ecfg);
        assert_eq!(model.table, serial.table);

        // None of the above re-mined.
        let stats = engine.stats();
        assert_eq!(stats.fit_mine_ms, 0.0);
        assert_eq!(stats.fits_completed, 4);
        assert!(stats.build_mine_ms >= 0.0);

        // A fit *below* the base minsup must still serve — by re-mining,
        // charged to fit_mine_ms.
        let engine2 = Engine::builder()
            .dataset(d.clone())
            .minsup(3)
            .build()
            .unwrap();
        // But EXACT's default seeding (minsup 1) is clamped up to the base
        // instead of re-mining: the cache keeps serving, and the uncapped
        // optimum is seed-independent.
        let model = engine2
            .fit(Algorithm::Exact(ExactConfig::default()))
            .join()
            .unwrap();
        let serial = crate::exact::translator_exact_with(&d, &ExactConfig::default());
        assert_eq!(model.table, serial.table);
        assert_eq!(engine2.stats().fit_mine_ms, 0.0);
        let cfg = SelectConfig::builder().k(1).minsup(1).build();
        let model = engine2.fit(Algorithm::Select(cfg.clone())).join().unwrap();
        let serial = crate::select::translator_select(&d, &cfg);
        assert_eq!(model.table, serial.table);
        assert!(engine2.stats().fit_mine_ms > 0.0);
    }

    #[test]
    fn engine_threads_inherited_by_fit_configs() {
        // threads(1) on the builder must confine fits whose configs leave
        // n_threads unset — and the model is identical either way.
        let d = toy();
        let engine = Engine::builder()
            .dataset(d.clone())
            .threads(1)
            .build()
            .unwrap();
        let cfg = SelectConfig::builder().k(2).build();
        let model = engine.fit(Algorithm::Select(cfg.clone())).join().unwrap();
        let serial = crate::select::translator_select(&d, &cfg);
        assert_eq!(model.table, serial.table);
    }

    #[test]
    fn engine_queries_match_free_functions() {
        let d = toy();
        let engine = Engine::builder().dataset(d.clone()).build().unwrap();
        let model = engine
            .fit(Algorithm::Select(SelectConfig::builder().build()))
            .join()
            .unwrap();
        let table = model.table;

        let translated = engine.translate(table.clone(), Side::Left).join().unwrap();
        let direct = translate::translate_view(&d, &table, Side::Left);
        assert_eq!(translated, direct);

        let rows: Vec<Bitmap> = (0..d.n_transactions())
            .map(|t| d.row(Side::Left, t).clone())
            .collect();
        let predicted = engine
            .predict(table.clone(), Side::Left, rows.clone())
            .join()
            .unwrap();
        for (p, row) in predicted.iter().zip(&rows) {
            assert_eq!(p, &predict_row(&d, &table, Side::Left, row));
        }

        let score = engine.evaluate(table.clone()).join().unwrap();
        let direct = evaluate_table(&d, &table);
        assert!((score.l_total - direct.l_total).abs() < 1e-12);
    }

    #[test]
    fn stats_report_clean_robustness_baseline() {
        let engine = Engine::builder().dataset(toy()).build().unwrap();
        engine
            .fit(Algorithm::Select(SelectConfig::builder().build()))
            .join()
            .unwrap();
        let stats = engine.stats();
        assert!(stats.seed_cache_warm, "toy warm must succeed");
        assert_eq!(stats.jobs_retried, 0);
        assert_eq!(stats.fits_degraded, 0);
        assert_eq!(stats.jobs_rejected, 0);
        assert_eq!(stats.jobs_shed, 0);
        assert_eq!(stats.jobs_timed_out, 0);
        assert_eq!(stats.executors_respawned, 0);
    }

    #[test]
    fn fit_deadline_expires_in_queue() {
        let engine = Engine::builder()
            .dataset(toy())
            .job_executors(1)
            .build()
            .unwrap();
        // Hold the only executor on a gated custom job so the victim's
        // queue-wait bound (zero) deterministically expires first.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let blocker = engine.queue().submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let victim = engine.fit_opts(
            Algorithm::Select(SelectConfig::builder().build()),
            Priority::Batch,
            Deadline::queue_wait(std::time::Duration::ZERO),
        );
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        match victim.join() {
            Err(JobError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(engine.stats().jobs_timed_out, 1);
    }

    #[test]
    fn bounded_admission_rejects_via_builder() {
        let engine = Engine::builder()
            .dataset(toy())
            .job_executors(1)
            .lane_capacity(1)
            .admission(AdmissionPolicy::Reject)
            .build()
            .unwrap();
        // Hold the single executor, fill the one-slot batch lane, then
        // one more batch submission must be rejected.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let blocker = engine.queue().submit(Priority::Batch, move |_ctx| {
            gate_rx.recv().ok();
            Ok(())
        });
        blocker.wait_started();
        let queued = engine.fit(Algorithm::Select(SelectConfig::builder().build()));
        let rejected = engine.fit(Algorithm::Select(SelectConfig::builder().build()));
        match rejected.join() {
            Err(JobError::Rejected) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        queued.join().unwrap();
        assert_eq!(engine.stats().jobs_rejected, 1);
    }

    #[test]
    fn cancelled_fit_returns_cancelled() {
        let d = toy();
        let engine = Engine::builder()
            .dataset(d)
            .job_executors(1)
            .build()
            .unwrap();
        // Occupy the single executor, then cancel a queued fit: it must
        // resolve to Cancelled without ever running.
        let blocker = engine.fit(Algorithm::Select(SelectConfig::builder().build()));
        let victim = engine.fit(Algorithm::Select(SelectConfig::builder().build()));
        victim.cancel();
        blocker.join().unwrap();
        match victim.join() {
            Err(JobError::Cancelled) => {}
            Ok(_) => {} // raced to completion before the cancel landed
            other => panic!("unexpected: {other:?}"),
        }
    }
}
