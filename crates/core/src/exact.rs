//! TRANSLATOR-EXACT (paper Algorithm 2 + §5.2).
//!
//! Each iteration finds the rule with the *maximum* compression gain by an
//! ECLAT-style depth-first search over all itemset pairs `(X, Y)` that occur
//! in the data, then adds it to the table; the loop stops when no rule
//! improves compression. Three devices keep the search tractable:
//!
//! * `tub(t)` — per-transaction bound: the encoded size of the transaction's
//!   currently uncovered items (maintained by [`CoverState`]);
//! * `rub(X ◇ Y)` — rule bound: `Σ_{X⊆t_L} tub(t_R) + Σ_{Y⊆t_R} tub(t_L) −
//!   L(X↔Y)`, monotonically non-increasing under extension, so a subtree is
//!   pruned whenever `rub ≤` the best gain found so far;
//! * `qub(X ◇ Y)` — quick bound: `|supp(X)|·L(Y) + |supp(Y)|·L(X) −
//!   L(X↔Y)`, not valid for extensions but enough to skip exact gain
//!   evaluation at a node.
//!
//! Items are ordered descending by their single-item `rub` contribution so
//! strong rules are found early and pruning bites.
//!
//! ## Parallel root fan-out
//!
//! The DFS subtrees rooted at each first item are independent, so with
//! [`ExactConfig::n_threads`] `> 1` they fan out across the persistent
//! [`twoview_runtime`] pool: each pool participant clones the (read-only
//! during search) [`CoverState`] once, then claims root subtrees off an
//! atomic counter. Cross-subtree pruning flows through a **shared atomic
//! best-bound** that only ever tightens monotonically, so `rub`/`qub`
//! pruning stays admissible and the search stays exactly optimal. Two
//! details make the *returned rule* (not just its gain) bit-identical to
//! the serial search for any thread count:
//!
//! * each subtree tracks its own local best with the strict `>` rule the
//!   serial DFS uses, seeded at the (deterministic) incumbent gain, and
//!   the shared bound is consulted for pruning with strict `<` only — a
//!   node whose bound *equals* the shared best may still contain the rule
//!   that an earlier-ordered subtree would have won with, and must not be
//!   discarded by a later-ordered subtree that merely finished first;
//! * subtree results are merged by an **ordered reduction** in root
//!   submission order with the same strict-improvement rule, reproducing
//!   the serial first-wins tie-breaking exactly.
//!
//! A node-capped search (`max_nodes`) instead gives every subtree a fixed
//! `cap / n_roots` budget and disables the shared bound, so capped runs
//! are deterministic per thread count too (the visited node set is a pure
//! function of the data), at the price of slightly weaker pruning.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use twoview_data::prelude::*;
use twoview_runtime::obs;
use twoview_runtime::sync::TolerantMutex;

use crate::bounds;
use crate::cover::CoverState;
use crate::model::{score_of, TraceStep, TranslatorModel};
use crate::rule::{Direction, TranslationRule};

/// Process-wide registry cells for the exact search (`exact.*` names).
/// The DFS counts in plain locals ([`Search`] fields) and folds them in
/// once per search / per fan-out participant, keeping the per-node hot
/// path free of shared-cell traffic.
struct ExactMetrics {
    searches: obs::Counter,
    nodes: obs::Counter,
    rub_prunes: obs::Counter,
    qub_prunes: obs::Counter,
}

fn exact_metrics() -> &'static ExactMetrics {
    static METRICS: std::sync::OnceLock<ExactMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ExactMetrics {
        searches: obs::counter("exact.searches"),
        nodes: obs::counter("exact.nodes"),
        rub_prunes: obs::counter("exact.rub_prunes"),
        qub_prunes: obs::counter("exact.qub_prunes"),
    })
}

/// Configuration of the exact search.
#[derive(Clone, Debug)]
pub struct ExactConfig {
    /// Safety valve: abort an iteration's search after this many DFS nodes.
    /// `None` (the default) keeps the search exact.
    pub max_nodes: Option<u64>,
    /// Enable the rule-based subtree pruning bound (`rub`). Disabling is
    /// for ablation only — searches explode without it.
    pub use_rub: bool,
    /// Enable the quick per-node bound (`qub`).
    pub use_qub: bool,
    /// Stop after this many rules (`None` = run to convergence).
    pub max_rules: Option<usize>,
    /// Additionally seed every iteration's incumbent with the best rule
    /// over the closed frequent two-view itemsets at this minsup. Seeding
    /// never changes the (uncapped) result — the optimum dominates any
    /// seed — but it tightens pruning dramatically and guarantees that a
    /// *node-capped* run is never worse than TRANSLATOR-SELECT(1).
    pub candidate_seed_minsup: Option<usize>,
    /// Worker threads for the root-level DFS fan-out and candidate-seed
    /// mining. `Some(1)` keeps the single-DFS legacy search; `Some(t > 1)`
    /// fans out; `None` fans out once the vocabulary is large enough
    /// (≥ 24 items) and sizes the pool from the process default
    /// ([`twoview_runtime::configured_threads`]).
    ///
    /// The *structure* choice is a pure function of this field and the
    /// data, never of the machine, so a given config reproduces the same
    /// model everywhere; `TWOVIEW_RUNTIME_THREADS` only scales execution.
    /// Uncapped searches return identical rules under every setting;
    /// node-capped searches are identical across all fanned-out settings
    /// (`None` and every `Some(t > 1)`), while `Some(1)`'s global node cap
    /// visits a different truncation frontier than the fan-out's
    /// per-subtree budgets.
    pub n_threads: Option<usize>,
    /// Maintain the per-seed `Σ tub` sums behind `rub` incrementally across
    /// rule iterations (default), mirroring
    /// [`SelectConfig::incremental_rub`](crate::select::SelectConfig::incremental_rub):
    /// rule applications stream their tub decrements through a
    /// transaction→seed inverted index, and the seed-refresh scan skips any
    /// dirty seed whose maintained bound (plus admissibility slack) cannot
    /// beat the running incumbent gain. The skipped seed stays dirty, and
    /// because its true gain ≤ its true `rub` ≤ the maintained bound, it
    /// provably cannot change the incumbent — the DFS that follows is
    /// bit-identical. Falls back to full refreshes when the seed tidsets
    /// are not all cached or the index would bust the cache budget.
    pub incremental_rub: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: None,
            use_rub: true,
            use_qub: true,
            max_rules: None,
            candidate_seed_minsup: Some(1),
            n_threads: None,
            incremental_rub: true,
        }
    }
}

impl ExactConfig {
    /// Fluent builder starting from the defaults (uncapped exact search,
    /// both bounds on, seeding at minsup 1).
    pub fn builder() -> ExactConfigBuilder {
        ExactConfigBuilder {
            cfg: ExactConfig::default(),
        }
    }
}

/// Fluent builder for [`ExactConfig`]; see [`ExactConfig::builder`].
#[derive(Clone, Debug)]
pub struct ExactConfigBuilder {
    cfg: ExactConfig,
}

impl ExactConfigBuilder {
    /// Per-iteration DFS node cap (the search is no longer exact when it
    /// fires; [`TranslatorModel::truncated`] reports it).
    pub fn max_nodes(mut self, cap: u64) -> Self {
        self.cfg.max_nodes = Some(cap);
        self
    }

    /// Rule-bound subtree pruning (`rub`); disabling is ablation-only.
    pub fn rub(mut self, on: bool) -> Self {
        self.cfg.use_rub = on;
        self
    }

    /// Quick per-node bound (`qub`).
    pub fn qub(mut self, on: bool) -> Self {
        self.cfg.use_qub = on;
        self
    }

    /// Stop after this many rules.
    pub fn max_rules(mut self, n: usize) -> Self {
        self.cfg.max_rules = Some(n);
        self
    }

    /// Seed each iteration's incumbent from closed two-view candidates at
    /// this minsup (`None` disables seeding).
    pub fn seed_minsup(mut self, minsup: Option<usize>) -> Self {
        self.cfg.candidate_seed_minsup = minsup;
        self
    }

    /// Worker threads for the root fan-out (`Some(t)` semantics; see
    /// [`ExactConfig::n_threads`]).
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.n_threads = Some(t);
        self
    }

    /// Incremental `Σ tub` seed-bound maintenance (see
    /// [`ExactConfig::incremental_rub`]).
    pub fn incremental_rub(mut self, on: bool) -> Self {
        self.cfg.incremental_rub = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ExactConfig {
        self.cfg
    }
}

/// Mining valve for the candidate-seed mine — one definition shared with
/// the engine's cache-serving check, so engine EXACT fits stay equivalent
/// to free-function runs if it is ever tuned.
pub(crate) const SEED_MINE_VALVE: usize = 2_000_000;

/// Runs TRANSLATOR-EXACT with default configuration.
pub fn translator_exact(data: &TwoViewDataset) -> TranslatorModel {
    translator_exact_with(data, &ExactConfig::default())
}

/// Runs TRANSLATOR-EXACT with the given configuration.
pub fn translator_exact_with(data: &TwoViewDataset, cfg: &ExactConfig) -> TranslatorModel {
    // Mine the seed candidates once. Their gains against the evolving cover
    // state are maintained with the same disjointness-based cache SELECT
    // uses: a candidate's gains only change when an applied rule touches
    // one of its items.
    let seeds: Vec<twoview_mining::TwoViewCandidate> = match cfg.candidate_seed_minsup {
        Some(minsup) => {
            let mut mcfg = twoview_mining::MinerConfig::builder()
                .minsup(minsup)
                .build();
            mcfg.max_itemsets = SEED_MINE_VALVE;
            mcfg.n_threads = cfg.n_threads;
            twoview_mining::mine_closed_twoview(data, &mcfg).candidates
        }
        None => Vec::new(),
    };
    translator_exact_seeded(data, cfg, &seeds)
}

/// Runs TRANSLATOR-EXACT over **pre-mined** seed candidates (the engine's
/// cached candidate set): identical to [`translator_exact_with`] when the
/// seeds are the closed two-view candidates at
/// [`ExactConfig::candidate_seed_minsup`], minus the mining cost.
pub fn translator_exact_seeded(
    data: &TwoViewDataset,
    cfg: &ExactConfig,
    seeds: &[twoview_mining::TwoViewCandidate],
) -> TranslatorModel {
    match run_exact(data, cfg, seeds, None) {
        Ok(model) => model,
        Err(_) => unreachable!("uncancellable run cannot be cancelled"),
    }
}

/// The EXACT loop with an optional job context: cancellation is observed
/// between rule iterations (one progress tick per added rule); a cancelled
/// run returns no model, so every completed run is bit-identical to serial.
pub(crate) fn run_exact(
    data: &TwoViewDataset,
    cfg: &ExactConfig,
    seeds: &[twoview_mining::TwoViewCandidate],
    ctl: Option<&twoview_runtime::JobCtx>,
) -> Result<TranslatorModel, twoview_runtime::JobError> {
    let mut state = CoverState::new(data);
    // State-independent prefilter (see `bounds`): qub ≤ 0 can never help.
    // Borrow the survivors instead of cloning the caller's slice — the
    // engine serves the same cached seed list to every EXACT fit.
    let seeds: Vec<&twoview_mining::TwoViewCandidate> = {
        let codes = state.codes();
        seeds
            .iter()
            .filter(|c| bounds::qub(codes, data, &c.left, &c.right) > 0.0)
            .collect()
    };
    let n_seeds = seeds.len();
    // Cache the seed antecedent tidsets once (same memory budget as
    // SELECT's candidate cache): supports never change, and recomputing
    // them on every refresh dominated incumbent maintenance on large
    // corpora. The budget meters the actual bytes of each tidset's chosen
    // representation, so sparse corpora cache far larger seed sets.
    let seed_tids = crate::select::TidSource::Owned(crate::select::build_owned_tids(data, &seeds));
    let mut seed_gains: Vec<f64> = vec![f64::NEG_INFINITY; n_seeds];
    let mut seed_dirs: Vec<Direction> = vec![Direction::Both; n_seeds];
    let mut dirty: Vec<bool> = vec![true; n_seeds];
    // Incremental seed bounds (see `ExactConfig::incremental_rub`): the
    // same CSR index SELECT maintains, consumed here by the seed-refresh
    // scan. Positions coincide with indices for the owned cache, so the
    // identity mapping serves as `live_idx`.
    let idx_of: Vec<usize> = (0..n_seeds).collect();
    let mut inc = if cfg.incremental_rub {
        crate::select::build_inc_rub(&state, &seeds, &idx_of, &seed_tids)
    } else {
        None
    };
    if inc.is_some() {
        state.set_tub_delta_log(true);
    }

    let mut trace = Vec::new();
    let mut truncated = false;
    loop {
        // Cooperative cancellation at rule boundaries only: a run either
        // completes or yields no model.
        if let Some(ctx) = ctl {
            twoview_runtime::faults::maybe_panic(
                twoview_runtime::faults::points::EXACT_CHECKPOINT_PANIC,
            );
            ctx.checkpoint()?;
            ctx.tick(1);
        }
        if let Some(max) = cfg.max_rules {
            if state.table().len() >= max {
                break;
            }
        }
        // Refresh the cached seed gains and pick the best as the incumbent.
        // `cur_max` tracks the running incumbent gain (seeded at 0.0, the
        // historical `map_or(0.0)` floor), letting the incremental bound
        // skip dirty seeds that provably cannot beat it: the skipped
        // seed's true gain ≤ its true rub ≤ the maintained bound ≤
        // cur_max, and the incumbent scan requires strict `>`, so it could
        // neither win nor move `cur_max` — the incumbent (and the DFS it
        // seeds) is bit-identical. Skipped seeds stay dirty.
        let mut incumbent: Option<(TranslationRule, f64)> = None;
        let mut cur_max = 0.0f64;
        for (idx, cand) in seeds.iter().enumerate() {
            if dirty[idx] {
                if let Some(inc) = inc.as_ref() {
                    if inc.bound_with_slack(idx) <= cur_max {
                        continue;
                    }
                }
                let computed;
                let (lt, rt) = match seed_tids.get(idx, idx) {
                    Some((lt, rt)) => (lt, rt),
                    None => {
                        computed = (data.support_set(&cand.left), data.support_set(&cand.right));
                        (&computed.0, &computed.1)
                    }
                };
                let gains = state.pair_gains(&cand.left, &cand.right, lt, rt);
                // Last-max over Direction::ALL order, matching the
                // historical `max_by(partial_cmp)` tie-break without the
                // NaN unwrap (gains are never NaN).
                let mut best = (gains[0], Direction::ALL[0]);
                for (g, d) in gains.into_iter().zip(Direction::ALL).skip(1) {
                    if g >= best.0 {
                        best = (g, d);
                    }
                }
                let (best_gain, best_dir) = best;
                seed_gains[idx] = best_gain;
                seed_dirs[idx] = best_dir;
                dirty[idx] = false;
            }
            let gain = seed_gains[idx];
            if gain > cur_max {
                cur_max = gain;
                incumbent = Some((
                    TranslationRule::new(cand.left.clone(), cand.right.clone(), seed_dirs[idx]),
                    gain,
                ));
            }
        }

        let outcome = best_rule_with_incumbent(&state, cfg, incumbent);
        truncated |= outcome.truncated;
        match outcome.best {
            Some((rule, gain)) if gain > 0.0 => {
                state.apply_rule(rule.clone());
                // Fold the rule's tub decrements into the maintained sums.
                if let Some(inc) = inc.as_mut() {
                    inc.fold(state.take_tub_deltas());
                }
                // Invalidate seeds sharing items with the applied rule.
                for (idx, cand) in seeds.iter().enumerate() {
                    if !cand.left.is_disjoint(&rule.left) || !cand.right.is_disjoint(&rule.right) {
                        dirty[idx] = true;
                    }
                }
                trace.push(TraceStep::capture(&state, rule, gain));
            }
            _ => break,
        }
    }
    let score = score_of(&state);
    Ok(TranslatorModel {
        table: state.into_table(),
        score,
        trace,
        n_candidates: n_seeds,
        truncated,
    })
}

/// Result of one best-rule search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The best rule and its gain, if any rule has strictly positive gain.
    /// Deterministic (including tie-breaking) for any thread count.
    pub best: Option<(TranslationRule, f64)>,
    /// Number of DFS nodes visited. Deterministic for serial and capped
    /// runs; for uncapped parallel runs the count (never the result)
    /// varies with how early the shared bound tightened.
    pub nodes: u64,
    /// Whether the node cap fired (search no longer exact).
    pub truncated: bool,
}

/// Finds the rule with maximum gain given the current cover state
/// (paper §5.2). Exposed for tests and ablation benches.
pub fn best_rule(state: &CoverState<'_>, cfg: &ExactConfig) -> SearchOutcome {
    best_rule_with_incumbent(state, cfg, None)
}

/// [`best_rule`] with an explicit initial incumbent (a real rule and its
/// gain). The DFS must only *beat* the incumbent, so pruning starts tight;
/// the returned optimum is unchanged because the incumbent is itself a
/// feasible rule.
pub fn best_rule_with_incumbent(
    state: &CoverState<'_>,
    cfg: &ExactConfig,
    incumbent: Option<(TranslationRule, f64)>,
) -> SearchOutcome {
    let data = state.data();
    let vocab = data.vocab();
    let mut span = obs::span("exact.search");

    // Order items descending by their single-item bound contribution:
    // Σ over supporting transactions of the opposite side's tub.
    let mut order: Vec<(ItemId, f64)> = (0..vocab.n_items() as ItemId)
        .filter(|&i| data.support(i) > 0)
        .map(|i| {
            let opp = vocab.side_of(i).opposite();
            let bound: f64 = data
                .tidset(i)
                .iter()
                .map(|t| state.uncovered_weight(opp, t))
                .sum();
            (i, bound)
        })
        .collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let items: Vec<ItemId> = order.into_iter().map(|(i, _)| i).collect();

    let total_tub: [f64; 2] = [
        state.uncovered_weights(Side::Left).iter().sum(),
        state.uncovered_weights(Side::Right).iter().sum(),
    ];

    let (best, best_gain) = match incumbent {
        Some((rule, gain)) if gain > 0.0 => (Some(rule), gain),
        _ => (None, 0.0),
    };
    let mut search = Search {
        state,
        cfg,
        items: &items,
        best,
        best_gain,
        nodes: 0,
        rub_prunes: 0,
        qub_prunes: 0,
        truncated: false,
        shared: None,
        node_cap: cfg.max_nodes,
    };
    // Additionally seed with the best single-item-pair rule. Seeds are real
    // rules, so the (uncapped) search result is unchanged, but `rub` prunes
    // from the first DFS node instead of only after a good rule is found.
    // Runs serially in both modes so every parallel subtree starts from
    // the same deterministic incumbent.
    search.seed_with_singleton_pairs();

    // The fan-out decision must be a pure function of the config and the
    // data — never of the machine's thread count. A node-capped fan-out
    // distributes per-subtree budgets, which visits a different node set
    // than the serial global cap; if the choice tracked available
    // parallelism (or TWOVIEW_RUNTIME_THREADS), the same capped run could
    // return different models on different machines. The pool size only
    // scales how fast the chosen structure executes.
    let fanout = items.len() >= 2
        && match cfg.n_threads {
            Some(t) => t > 1,
            None => items.len() >= 24,
        };
    if fanout {
        let threads = twoview_runtime::resolve_threads(cfg.n_threads);
        let outcome = parallel_root_fanout(
            state,
            cfg,
            &items,
            search.best,
            search.best_gain,
            total_tub,
            threads,
        );
        let metrics = exact_metrics();
        metrics.searches.incr();
        metrics.nodes.add(outcome.nodes);
        span.field("nodes", outcome.nodes)
            .field("fanout", true)
            .field("truncated", outcome.truncated);
        return outcome;
    }

    let root = root_node(total_tub);
    search.dfs(0, &root);
    let metrics = exact_metrics();
    metrics.searches.incr();
    metrics.nodes.add(search.nodes);
    metrics.rub_prunes.add(search.rub_prunes);
    metrics.qub_prunes.add(search.qub_prunes);
    span.field("nodes", search.nodes)
        .field("rub_prunes", search.rub_prunes)
        .field("qub_prunes", search.qub_prunes)
        .field("fanout", false)
        .field("truncated", search.truncated);
    drop(span);
    SearchOutcome {
        best: search.best.map(|r| (r, search.best_gain)),
        nodes: search.nodes,
        truncated: search.truncated,
    }
}

/// The empty-pair DFS root.
fn root_node(total_tub: [f64; 2]) -> Node {
    Node {
        left: Vec::new(),
        right: Vec::new(),
        len_left: 0.0,
        len_right: 0.0,
        tid_left: None,
        tid_right: None,
        sum_left: total_tub[1],  // X ⊆ t_L sums tub over *right* rows
        sum_right: total_tub[0], // Y ⊆ t_R sums tub over *left* rows
    }
}

/// Result of one root subtree of the parallel fan-out.
#[derive(Clone)]
struct RootOutcome {
    best: Option<(TranslationRule, f64)>,
    nodes: u64,
    truncated: bool,
}

/// Fans the root-level DFS out across the pool (see the module docs for
/// why the merged result is bit-identical to the serial search).
fn parallel_root_fanout(
    state: &CoverState<'_>,
    cfg: &ExactConfig,
    items: &[ItemId],
    incumbent: Option<TranslationRule>,
    incumbent_gain: f64,
    total_tub: [f64; 2],
    threads: usize,
) -> SearchOutcome {
    let n_roots = items.len();
    // Capped searches get fixed per-subtree budgets and no shared bound:
    // the visited node set is then a pure function of the data, making
    // node-capped results deterministic for every thread count > 1.
    let (node_cap, share_bound) = match cfg.max_nodes {
        Some(cap) => (Some((cap / n_roots as u64).max(1)), false),
        None => (None, true),
    };
    // Monotone best-bound. Published gains are strictly positive, and
    // non-negative f64 bit patterns order like the floats, so fetch_max on
    // the bits is exactly "tighten if better".
    let shared_bits = AtomicU64::new(incumbent_gain.to_bits());
    let next = AtomicUsize::new(0);
    let results: TolerantMutex<Vec<Option<RootOutcome>>> = TolerantMutex::new(vec![None; n_roots]);

    let runtime = twoview_runtime::global();
    let participant = &|| {
        // Claim the first root before paying for the state clone: late
        // participants (threads beyond the root count or the pool size)
        // then exit without copying anything.
        let mut claimed = next.fetch_add(1, Ordering::Relaxed);
        if claimed >= n_roots {
            return;
        }
        // Per-worker clone: the state is read-only during the search, and
        // a private copy keeps the hot tub/cover columns out of the other
        // workers' cache traffic.
        let local_state = state.clone();
        let (mut local_rub, mut local_qub) = (0u64, 0u64);
        loop {
            let pos = claimed;
            let mut search = Search {
                state: &local_state,
                cfg,
                items,
                best: None,
                best_gain: incumbent_gain,
                nodes: 0,
                rub_prunes: 0,
                qub_prunes: 0,
                truncated: false,
                shared: share_bound.then_some(&shared_bits),
                node_cap,
            };
            let root = root_node(total_tub);
            search.visit(pos, &root);
            local_rub += search.rub_prunes;
            local_qub += search.qub_prunes;
            let outcome = RootOutcome {
                best: search.best.map(|r| (r, search.best_gain)),
                nodes: search.nodes,
                truncated: search.truncated,
            };
            results.lock()[pos] = Some(outcome);
            claimed = next.fetch_add(1, Ordering::Relaxed);
            if claimed >= n_roots {
                break;
            }
        }
        // One registry fold per participant (prune tallies only — the
        // merge loop already accounts the node totals).
        let metrics = exact_metrics();
        metrics.rub_prunes.add(local_rub);
        metrics.qub_prunes.add(local_qub);
    };
    // Extra participants beyond the pool size queue behind the real
    // workers; results are unaffected (ordered reduction), so the fan-out
    // machinery is exercised identically on any machine.
    runtime.install(|scope| {
        for _ in 1..threads {
            scope.spawn(participant);
        }
        participant();
    });

    // Ordered reduction in root submission order with strict improvement:
    // the serial DFS's first-wins tie-breaking, reproduced exactly.
    let mut best = incumbent;
    let mut best_gain = incumbent_gain;
    let mut nodes = 0;
    let mut truncated = false;
    for outcome in results.into_inner() {
        // lint: allow(panic_hygiene) — the parallel driver writes every root slot before into_inner
        let outcome = outcome.expect("every root subtree claimed and searched");
        nodes += outcome.nodes;
        truncated |= outcome.truncated;
        if let Some((rule, gain)) = outcome.best {
            if gain > best_gain {
                best_gain = gain;
                best = Some(rule);
            }
        }
    }
    SearchOutcome {
        best: best.map(|r| (r, best_gain)),
        nodes,
        truncated,
    }
}

/// DFS node: the pair `(X, Y)` plus the cached quantities the bounds need.
struct Node {
    left: Vec<ItemId>,
    right: Vec<ItemId>,
    len_left: f64,
    len_right: f64,
    /// `supp_L(X)`; `None` while `X = ∅` (supported by every transaction).
    tid_left: Option<Tidset>,
    /// `supp_R(Y)`; `None` while `Y = ∅`.
    tid_right: Option<Tidset>,
    /// `Σ_{t ∈ supp(X)} tub_R(t)`.
    sum_left: f64,
    /// `Σ_{t ∈ supp(Y)} tub_L(t)`.
    sum_right: f64,
}

struct Search<'a, 'd> {
    state: &'a CoverState<'d>,
    cfg: &'a ExactConfig,
    items: &'a [ItemId],
    best: Option<TranslationRule>,
    best_gain: f64,
    nodes: u64,
    /// Subtrees cut by the `rub` bound (local tally; folded into the
    /// `exact.rub_prunes` registry cell when the search ends).
    rub_prunes: u64,
    /// Node evaluations skipped by the quick `qub` bound.
    qub_prunes: u64,
    truncated: bool,
    /// Shared monotone best-bound (bits of a non-negative f64) for
    /// cross-subtree pruning in the parallel fan-out; `None` when serial
    /// or node-capped. Consulted with strict `<` only — see module docs.
    shared: Option<&'a AtomicU64>,
    /// Node budget of THIS search: the global `max_nodes` when serial,
    /// the per-subtree share when fanned out.
    node_cap: Option<u64>,
}

impl Search<'_, '_> {
    /// Evaluates every occurring `({i}, {j})` pair to initialise the
    /// incumbent before the DFS. Quadratic in the vocabulary but linear in
    /// supports — negligible next to the search itself.
    fn seed_with_singleton_pairs(&mut self) {
        let data = self.state.data();
        let vocab = data.vocab();
        let left_items: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|&i| vocab.side_of(i) == Side::Left)
            .collect();
        let right_items: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|&i| vocab.side_of(i) == Side::Right)
            .collect();
        for &i in &left_items {
            let ti = data.tidset(i);
            let left = ItemSet::singleton(i);
            let len_left = self.state.codes().item(i);
            for &j in &right_items {
                let tj = data.tidset(j);
                if ti.is_disjoint(tj) {
                    continue;
                }
                // Quick bound before the exact evaluation.
                let len_right = self.state.codes().item(j);
                let qub = bounds::qub_parts(ti.len() as f64, tj.len() as f64, len_left, len_right);
                if qub <= self.best_gain {
                    continue;
                }
                let right = ItemSet::singleton(j);
                let gains = self.state.pair_gains(&left, &right, ti, tj);
                for (gain, dir) in gains.into_iter().zip(Direction::ALL) {
                    if gain > self.best_gain {
                        self.best_gain = gain;
                        self.best = Some(TranslationRule::new(left.clone(), right.clone(), dir));
                    }
                }
            }
        }
    }

    fn dfs(&mut self, start: usize, node: &Node) {
        if self.truncated {
            return;
        }
        for pos in start..self.items.len() {
            if self.truncated {
                return;
            }
            self.visit(pos, node);
        }
    }

    /// `true` iff the shared bound (when present) proves a node with upper
    /// bound `value` cannot contain a rule the merged result would keep.
    /// Strict `<`: an equal-bound node may still hold the rule an
    /// earlier-ordered subtree wins with.
    #[inline]
    fn shared_prunes(&self, value: f64) -> bool {
        match self.shared {
            Some(bits) => value < f64::from_bits(bits.load(Ordering::Relaxed)),
            None => false,
        }
    }

    /// Publishes a locally improved gain to the shared bound (monotone
    /// tightening only).
    #[inline]
    fn publish(&self, gain: f64) {
        if let Some(bits) = self.shared {
            bits.fetch_max(gain.to_bits(), Ordering::Relaxed);
        }
    }

    /// One iteration of the DFS loop: extend `node` with `items[pos]`,
    /// evaluate, and recurse into the extension's subtree. This is also
    /// the unit the parallel fan-out claims per root.
    fn visit(&mut self, pos: usize, node: &Node) {
        let data = self.state.data();
        let vocab = data.vocab();
        let item = self.items[pos];
        let side = vocab.side_of(item);
        self.nodes += 1;
        if let Some(cap) = self.node_cap {
            if self.nodes > cap {
                self.truncated = true;
                return;
            }
        }

        // Extend the item's own side.
        let (tid, other_tid) = match side {
            Side::Left => (&node.tid_left, &node.tid_right),
            Side::Right => (&node.tid_right, &node.tid_left),
        };
        let ts = data.tidset(item);
        let new_tid = match tid {
            // Disjointness is checked through the kernel before the
            // child tidset is materialised.
            Some(t) if t.is_disjoint(ts) => return,
            Some(t) => t.and(ts),
            None if ts.is_empty() => return,
            None => ts.clone(),
        };
        // XY must occur at least once in the data; supports only shrink
        // under extension, so an empty joint support prunes the subtree.
        if let Some(other) = other_tid {
            if new_tid.is_disjoint(other) {
                return;
            }
        }

        let opp = side.opposite();
        let new_sum: f64 = new_tid
            .iter()
            .map(|t| self.state.uncovered_weight(opp, t))
            .sum();
        let item_len = self.state.codes().item(item);

        let child = match side {
            Side::Left => Node {
                left: push(&node.left, item),
                right: node.right.clone(),
                len_left: node.len_left + item_len,
                len_right: node.len_right,
                tid_left: Some(new_tid),
                tid_right: node.tid_right.clone(),
                sum_left: new_sum,
                sum_right: node.sum_right,
            },
            Side::Right => Node {
                left: node.left.clone(),
                right: push(&node.right, item),
                len_left: node.len_left,
                len_right: node.len_right + item_len,
                tid_left: node.tid_left.clone(),
                tid_right: Some(new_tid),
                sum_left: node.sum_left,
                sum_right: new_sum,
            },
        };

        // Rule bound: valid for this node and every extension.
        let rub = bounds::rub_parts(
            child.sum_left,
            child.sum_right,
            child.len_left,
            child.len_right,
        );
        if self.cfg.use_rub && (rub <= self.best_gain || self.shared_prunes(rub)) {
            self.rub_prunes += 1;
            return;
        }

        if !child.left.is_empty() && !child.right.is_empty() {
            self.evaluate(&child);
        }
        self.dfs(pos + 1, &child);
    }

    /// Evaluates the three rules constructible at a node, behind the quick
    /// bound.
    fn evaluate(&mut self, node: &Node) {
        // lint: allow(panic_hygiene) — dfs only descends into nodes with both tidsets materialised
        let tid_left = node.tid_left.as_ref().expect("X non-empty");
        // lint: allow(panic_hygiene) — dfs only descends into nodes with both tidsets materialised
        let tid_right = node.tid_right.as_ref().expect("Y non-empty");
        if self.cfg.use_qub {
            let qub = bounds::qub_parts(
                tid_left.len() as f64,
                tid_right.len() as f64,
                node.len_left,
                node.len_right,
            );
            if qub <= self.best_gain || self.shared_prunes(qub) {
                self.qub_prunes += 1;
                return;
            }
        }
        let left = ItemSet::from_items(node.left.iter().copied());
        let right = ItemSet::from_items(node.right.iter().copied());
        let gains = self.state.pair_gains(&left, &right, tid_left, tid_right);
        for (gain, dir) in gains.into_iter().zip(Direction::ALL) {
            if gain > self.best_gain {
                self.best_gain = gain;
                self.best = Some(TranslationRule::new(left.clone(), right.clone(), dir));
                self.publish(gain);
            }
        }
    }
}

fn push(items: &[ItemId], item: ItemId) -> Vec<ItemId> {
    let mut v = Vec::with_capacity(items.len() + 1);
    v.extend_from_slice(items);
    v.push(item);
    v
}

/// Brute-force best-rule search for tests: enumerates every occurring
/// itemset pair and direction. Exponential; tiny inputs only.
pub fn brute_force_best_rule(state: &CoverState<'_>) -> Option<(TranslationRule, f64)> {
    let data = state.data();
    let vocab = data.vocab();
    let n_items = vocab.n_items();
    assert!(n_items <= 16, "brute force best-rule is for tiny data");
    let left_items: Vec<ItemId> = vocab.items_on(Side::Left).collect();
    let right_items: Vec<ItemId> = vocab.items_on(Side::Right).collect();
    let mut best: Option<(TranslationRule, f64)> = None;
    for lm in 1u32..(1 << left_items.len()) {
        let left: ItemSet = left_items
            .iter()
            .enumerate()
            .filter(|(k, _)| lm >> k & 1 == 1)
            .map(|(_, &i)| i)
            .collect();
        let lt = data.support_set(&left);
        if lt.is_empty() {
            continue;
        }
        for rm in 1u32..(1 << right_items.len()) {
            let right: ItemSet = right_items
                .iter()
                .enumerate()
                .filter(|(k, _)| rm >> k & 1 == 1)
                .map(|(_, &i)| i)
                .collect();
            let rt = data.support_set(&right);
            if rt.is_disjoint(&lt) {
                continue; // XY does not occur
            }
            let gains = state.pair_gains(&left, &right, &lt, &rt);
            for (gain, dir) in gains.into_iter().zip(Direction::ALL) {
                if gain > best.as_ref().map_or(0.0, |(_, g)| *g) {
                    best = Some((TranslationRule::new(left.clone(), right.clone(), dir), gain));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn structured() -> TwoViewDataset {
        // {a,b} <-> {x,y} holds in most transactions; c/z are noise.
        let vocab = Vocabulary::new(["a", "b", "c"], ["x", "y", "z"]);
        TwoViewDataset::from_transactions(
            vocab,
            &[
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4],
                vec![0, 1, 3, 4, 5],
                vec![0, 1, 2, 3, 4],
                vec![2, 5],
                vec![2],
                vec![0, 5],
            ],
        )
    }

    #[test]
    fn search_matches_brute_force() {
        let d = structured();
        let state = CoverState::new(&d);
        let fast = best_rule(&state, &ExactConfig::default());
        let slow = brute_force_best_rule(&state);
        let (_, fg) = fast.best.as_ref().expect("search finds a rule");
        let (_, sg) = slow.as_ref().expect("brute force finds a rule");
        assert!(
            (fg - sg).abs() < 1e-9,
            "gain mismatch: search {fg}, brute force {sg}"
        );
    }

    #[test]
    fn search_matches_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..10 {
            let vocab = Vocabulary::unnamed(4, 4);
            let txs: Vec<Vec<ItemId>> = (0..15)
                .map(|_| (0..8).filter(|_| rng.gen_bool(0.45)).collect())
                .collect();
            let d = TwoViewDataset::from_transactions(vocab, &txs);
            let state = CoverState::new(&d);
            let fast = best_rule(&state, &ExactConfig::default());
            let slow = brute_force_best_rule(&state);
            match (&fast.best, &slow) {
                (Some((_, fg)), Some((_, sg))) => {
                    assert!((fg - sg).abs() < 1e-9, "trial {trial}: {fg} vs {sg}")
                }
                (None, None) => {}
                other => panic!("trial {trial}: disagreement {other:?}"),
            }
        }
    }

    #[test]
    fn pruning_does_not_change_the_result() {
        let d = structured();
        let state = CoverState::new(&d);
        let with = best_rule(&state, &ExactConfig::default());
        let without = best_rule(
            &state,
            &ExactConfig {
                use_rub: false,
                use_qub: false,
                ..ExactConfig::default()
            },
        );
        let (_, gw) = with.best.unwrap();
        let (_, gwo) = without.best.unwrap();
        assert!((gw - gwo).abs() < 1e-9);
        assert!(
            with.nodes <= without.nodes,
            "pruning should visit no more nodes"
        );
    }

    #[test]
    fn exact_model_compresses_structured_data() {
        let d = structured();
        let model = translator_exact(&d);
        assert!(!model.table.is_empty());
        assert!(model.compression_pct() < 100.0);
        assert!(!model.truncated);
        // The planted association must be captured by the first rule.
        let first = &model.table.rules()[0];
        assert!(first.left.contains(0) && first.left.contains(1));
        assert!(first.right.contains(3) && first.right.contains(4));
    }

    #[test]
    fn trace_is_monotone_decreasing_in_total_length() {
        let d = structured();
        let model = translator_exact(&d);
        let mut prev = f64::INFINITY;
        for step in &model.trace {
            assert!(step.l_total < prev, "L must strictly decrease");
            assert!(step.gain > 0.0);
            prev = step.l_total;
        }
    }

    #[test]
    fn node_cap_sets_truncated() {
        let d = structured();
        let cfg = ExactConfig {
            max_nodes: Some(2),
            ..ExactConfig::default()
        };
        let state = CoverState::new(&d);
        let out = best_rule(&state, &cfg);
        assert!(out.truncated);
    }

    #[test]
    fn max_rules_cap() {
        let d = structured();
        let cfg = ExactConfig {
            max_rules: Some(1),
            ..ExactConfig::default()
        };
        let model = translator_exact_with(&d, &cfg);
        assert!(model.table.len() <= 1);
    }

    #[test]
    fn parallel_fanout_is_bit_identical_uncapped() {
        // Explicit thread configs force the fan-out even on small data.
        // The uncapped search must return the *same rule* (not just the
        // same gain) for any thread count, including through the shared
        // bound's strict-< pruning.
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..10 {
            let vocab = Vocabulary::unnamed(5, 5);
            let txs: Vec<Vec<ItemId>> = (0..20)
                .map(|_| (0..10).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let d = TwoViewDataset::from_transactions(vocab, &txs);
            let serial = ExactConfig {
                n_threads: Some(1),
                ..ExactConfig::default()
            };
            let base = translator_exact_with(&d, &serial);
            for threads in [2, 4, 16] {
                let cfg = ExactConfig {
                    n_threads: Some(threads),
                    ..ExactConfig::default()
                };
                let par = translator_exact_with(&d, &cfg);
                assert_eq!(par.table, base.table, "trial {trial} threads {threads}");
                assert!(
                    (par.score.l_total - base.score.l_total).abs() < 1e-9,
                    "trial {trial} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_fanout_capped_is_identical_across_thread_counts() {
        // Node-capped runs use deterministic per-subtree budgets with the
        // shared bound off: every thread count > 1 must agree exactly.
        let d = structured();
        let capped = |threads| ExactConfig {
            max_nodes: Some(10),
            n_threads: Some(threads),
            ..ExactConfig::default()
        };
        let two = translator_exact_with(&d, &capped(2));
        for threads in [3, 4, 8] {
            let other = translator_exact_with(&d, &capped(threads));
            assert_eq!(two.table, other.table, "threads {threads}");
            assert_eq!(two.truncated, other.truncated);
        }
    }

    #[test]
    fn incremental_seed_bounds_are_result_identical() {
        // The incremental seed-bound skip must not change any model: same
        // rules, same trace length, same score, on structured and random
        // data, across seed minsups.
        let mut rng = StdRng::seed_from_u64(4242);
        let mut datasets = vec![structured()];
        for _ in 0..5 {
            let vocab = Vocabulary::unnamed(5, 5);
            let txs: Vec<Vec<ItemId>> = (0..25)
                .map(|_| (0..10).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            datasets.push(TwoViewDataset::from_transactions(vocab, &txs));
        }
        for (di, d) in datasets.iter().enumerate() {
            for minsup in [1, 2] {
                let base = ExactConfig {
                    candidate_seed_minsup: Some(minsup),
                    ..ExactConfig::default()
                };
                let with = translator_exact_with(d, &base);
                let without = translator_exact_with(
                    d,
                    &ExactConfig {
                        incremental_rub: false,
                        ..base
                    },
                );
                assert_eq!(with.table, without.table, "dataset {di} minsup {minsup}");
                assert_eq!(with.trace.len(), without.trace.len());
                assert!((with.score.l_total - without.score.l_total).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn no_rule_on_association_free_data() {
        // Left and right views are completely unrelated and each item is
        // too rare for a rule to pay for itself.
        let vocab = Vocabulary::unnamed(4, 4);
        let d = TwoViewDataset::from_transactions(
            vocab,
            &[vec![0, 4], vec![1, 5], vec![2, 6], vec![3, 7]],
        );
        let model = translator_exact(&d);
        assert!(
            model.table.is_empty(),
            "found spurious rules: {:?}",
            model.table.rules()
        );
    }
}
