//! Poison-tolerant locking helpers.
//!
//! Every `Mutex`/`Condvar` in this crate guards state that stays
//! consistent across a panic of the holder: queue lanes (a job is either
//! in a lane or owned by an executor), completion slots (written once),
//! and timing cells (plain data). A `PoisonError` therefore carries no
//! information we act on — but `lock().unwrap()` would convert one
//! panicked job into a cascade of `Panicked("PoisonError")` failures in
//! every *unrelated* job that later touches the same lock. The
//! extension traits here recover the guard unconditionally.
//!
//! This matters doubly under fault injection ([`crate::faults`]): an
//! injected `executor.die` panic intentionally unwinds through queue
//! internals, and the queue must keep serving afterwards.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// [`Mutex`] extension: lock, recovering from poison.
pub trait PoisonTolerantMutex<T> {
    /// Like [`Mutex::lock`], but a poisoned lock yields the guard anyway
    /// instead of propagating the holder's panic to this thread.
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> PoisonTolerantMutex<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// [`Condvar`] extension: wait, recovering from poison.
pub trait PoisonTolerantCondvar {
    /// Like [`Condvar::wait`], but recovers the guard from a poisoned
    /// lock instead of panicking.
    fn pwait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;

    /// Like [`Condvar::wait_timeout`], poison-tolerant.
    fn pwait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult);
}

/// An owned poison-tolerant mutex for code *outside* this crate.
///
/// The extension traits above keep `twoview-runtime` internals on raw
/// `std::sync` primitives (they own the poison story wholesale), but
/// the `twoview-lint` lock-discipline rule bans raw `Mutex`/`Condvar`
/// everywhere else. Solver and bench code that needs a lock wraps it in
/// `TolerantMutex`, whose only lock method already recovers from
/// poison — the poison-blind `.lock().unwrap()` cannot be written.
#[derive(Debug, Default)]
pub struct TolerantMutex<T> {
    inner: Mutex<T>,
}

impl<T> TolerantMutex<T> {
    /// Wraps `value` in a poison-tolerant mutex.
    pub fn new(value: T) -> TolerantMutex<T> {
        TolerantMutex {
            inner: Mutex::new(value),
        }
    }

    /// Locks, recovering the guard from a poisoned lock. Callers must
    /// tolerate seeing state a panicked holder left mid-update — fine
    /// for write-once slots, counters and append buffers.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.plock()
    }

    /// Consumes the mutex, returning the inner value (poison ignored).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl PoisonTolerantCondvar for Condvar {
    fn pwait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn pwait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.wait_timeout(guard, dur)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn plock_recovers_from_poison() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*m.plock(), 7);
        *m.plock() = 8;
        assert_eq!(*m.plock(), 8);
    }

    #[test]
    fn pwait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.plock();
        let (_guard, res) = cv.pwait_timeout(guard, Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
