//! Observability: a std-only metric registry and structured trace layer.
//!
//! Serving many fits from one long-lived engine process makes "where did
//! the time go?" a first-class question. This
//! module answers it twice over, with the same always-compiled /
//! near-zero-when-disabled discipline as [`faults`](crate::faults):
//!
//! * **Metric registry** — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   latency [`Histogram`]s, snapshotable at any time as a stable JSON
//!   tree ([`MetricsSnapshot`], the payload a future `/metrics` endpoint
//!   serves verbatim). Counters and gauges are *instance cells* registered
//!   under a shared name: each `JobQueue`/`Engine` owns its cell (so its
//!   per-instance stats view stays exact under concurrent engines), while
//!   [`snapshot`] reports the process-wide sum of live cells plus the
//!   retired totals of dropped ones. A cell update is one relaxed atomic
//!   RMW — the registry lock is only taken at registration, drop, and
//!   snapshot time, never on the hot path.
//!
//! * **Structured spans and events** — [`span`] returns a scope guard
//!   recording `(name, parent, thread, start, duration, fields)`;
//!   [`event`] records a point-in-time mark. Records land in per-thread
//!   buffers and drain to a JSON-lines sink when a thread's top-level
//!   span closes, when the buffer fills, or at thread exit. The whole
//!   layer sits behind one relaxed atomic load: with no sink installed a
//!   [`span`] call constructs an inert guard and touches nothing else, so
//!   production binaries pay nothing for carrying the instrumentation.
//!
//! # Configuration
//!
//! Set `TWOVIEW_TRACE=/path/to/trace.jsonl` to enable tracing for the
//! process (read lazily on the first probe, like `TWOVIEW_FAULTS`), or
//! install a sink programmatically with [`trace_to_path`] /
//! [`trace_to_writer`]; [`trace_off`] flushes and uninstalls. The metric
//! registry needs no switch — its hot-path cost is the atomic add that
//! *is* the statistic.
//!
//! # Invariants
//!
//! Instrumentation is purely observational: no model byte may depend on
//! whether tracing is enabled. Span ids come from a process-wide sequence
//! (never from time or randomness), so a single-threaded run emits an
//! identical span tree — modulo timestamps — on every execution.
//!
//! # Trace schema
//!
//! One JSON object per line:
//!
//! ```text
//! {"kind":"span","id":7,"parent":3,"thread":1,"name":"job.run",
//!  "start_us":1234,"dur_us":56,"fields":{"lane":"interactive"}}
//! {"kind":"event","id":8,"parent":7,"thread":1,"name":"job.retry",
//!  "start_us":1290,"fields":{"attempt":2}}
//! ```
//!
//! `parent` is `0` for top-level records; `start_us` counts from an
//! arbitrary process epoch; spans are emitted when they *close*, so a
//! parent's line appears after its children's.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::sync::PoisonTolerantMutex;

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// Histogram bucket upper bounds in nanoseconds (the last bucket is the
/// `+inf` overflow): 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s.
pub const BUCKET_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

const N_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

#[derive(Default)]
struct ScalarMetric {
    /// Totals folded in from dropped counter cells (counters only —
    /// a dropped gauge's value simply disappears).
    retired: u64,
    cells: Vec<Weak<AtomicU64>>,
}

struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, ScalarMetric>,
    gauges: BTreeMap<String, ScalarMetric>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static METRICS: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(RegistryInner::default()))
}

/// A named monotone counter: one instance cell registered in the
/// process-wide registry. [`Counter::get`] reads *this* cell (the
/// per-instance stats view); [`snapshot`] sums every cell ever
/// registered under the name, so process totals survive instance drops.
#[derive(Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    name: String,
}

impl Counter {
    /// Adds `n`. One relaxed atomic RMW; never locks.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// This cell's value (the owning instance's count, not the process
    /// total — see [`snapshot`] for the latter).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl Drop for Counter {
    fn drop(&mut self) {
        // Fold the final value into the name's retired total so the
        // process-wide sum stays monotone across instance lifetimes.
        let value = self.cell.load(Ordering::Relaxed);
        let mut reg = registry().plock();
        let metric = reg
            .counters
            .entry(std::mem::take(&mut self.name))
            .or_default();
        metric.retired += value;
        metric.cells.retain(|w| w.strong_count() > 0);
    }
}

/// A named gauge cell (a point-in-time level, e.g. a queue depth).
/// [`snapshot`] reports the sum of live cells under the name.
#[derive(Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the level. One relaxed atomic store.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Reads this cell's level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named fixed-bucket latency histogram, shared process-wide: every
/// [`histogram`] call under one name observes into the same buckets
/// ([`BUCKET_BOUNDS_NS`] plus an overflow bucket).
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl std::fmt::Debug for HistogramCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCore").finish_non_exhaustive()
    }
}

impl Histogram {
    /// Records one observation of `ns` nanoseconds: three relaxed RMWs
    /// and a branchless-ish bucket scan over eight bounds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(N_BUCKETS - 1);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }
}

/// Registers a fresh counter cell under `name` (see [`Counter`]).
pub fn counter(name: &str) -> Counter {
    let cell = Arc::new(AtomicU64::new(0));
    let mut reg = registry().plock();
    let metric = reg.counters.entry(name.to_string()).or_default();
    metric.cells.retain(|w| w.strong_count() > 0);
    metric.cells.push(Arc::downgrade(&cell));
    Counter {
        cell,
        name: name.to_string(),
    }
}

/// Registers a fresh gauge cell under `name` (see [`Gauge`]).
pub fn gauge(name: &str) -> Gauge {
    let cell = Arc::new(AtomicU64::new(0));
    let mut reg = registry().plock();
    let metric = reg.gauges.entry(name.to_string()).or_default();
    metric.cells.retain(|w| w.strong_count() > 0);
    metric.cells.push(Arc::downgrade(&cell));
    Gauge { cell }
}

/// Returns the process-wide histogram registered under `name`, creating
/// it on first use (see [`Histogram`]).
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().plock();
    let core = reg
        .histograms
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(HistogramCore::new()));
    Histogram { core: core.clone() }
}

/// One histogram's state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, nanoseconds.
    pub sum_ns: u64,
    /// `(upper_bound_ns, count)` per bucket; the final bucket's bound is
    /// `u64::MAX` (overflow).
    pub buckets: Vec<(u64, u64)>,
}

/// A stable, point-in-time view of the whole registry: counter and gauge
/// process totals plus every histogram, all sorted by name. This is the
/// payload the ROADMAP's `/metrics` endpoint serves; [`MetricsSnapshot::
/// to_json`] renders it deterministically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, process total)` — live cells plus retired totals.
    pub counters: Vec<(String, u64)>,
    /// `(name, sum of live cells)`.
    pub gauges: Vec<(String, u64)>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter total under `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The gauge level under `name`, or 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Renders the snapshot as a stable JSON tree (keys sorted, fixed
    /// field order) — identical input state always yields identical
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, &h.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum_ns\":{},\"buckets\":[",
                h.count, h.sum_ns
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if *le == u64::MAX {
                    out.push_str(&format!("{{\"le\":\"+inf\",\"count\":{n}}}"));
                } else {
                    out.push_str(&format!("{{\"le\":{le},\"count\":{n}}}"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Takes a [`MetricsSnapshot`] of the whole registry.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().plock();
    let scalar_rows = |map: &BTreeMap<String, ScalarMetric>, with_retired: bool| {
        map.iter()
            .map(|(name, m)| {
                let live: u64 = m
                    .cells
                    .iter()
                    .filter_map(|w| w.upgrade())
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum();
                (
                    name.clone(),
                    live + if with_retired { m.retired } else { 0 },
                )
            })
            .collect()
    };
    let histograms = reg
        .histograms
        .iter()
        .map(|(name, core)| {
            let buckets = core
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let le = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
                    (le, b.load(Ordering::Relaxed))
                })
                .collect();
            HistogramSnapshot {
                name: name.clone(),
                count: core.count.load(Ordering::Relaxed),
                sum_ns: core.sum_ns.load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect();
    MetricsSnapshot {
        counters: scalar_rows(&reg.counters, true),
        gauges: scalar_rows(&reg.gauges, false),
        histograms,
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Trace layer: spans and events
// ---------------------------------------------------------------------------

const GATE_UNINIT: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

/// Three-state gate, same discipline as `faults::GATE`: `UNINIT` (env not
/// yet consulted), `OFF`, `ON`.
static TRACE_GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);
static TRACE_SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether a trace sink is installed. The `false` path is one relaxed
/// atomic load once the gate has initialised.
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => trace_init_from_env(),
    }
}

#[cold]
fn trace_init_from_env() -> bool {
    let mut sink = TRACE_SINK.plock();
    // Another thread may have initialised while we waited for the lock.
    match TRACE_GATE.load(Ordering::Acquire) {
        GATE_ON => return true,
        GATE_OFF => return false,
        _ => {}
    }
    match std::env::var("TWOVIEW_TRACE") {
        Ok(path) if !path.trim().is_empty() => match std::fs::File::create(path.trim()) {
            Ok(file) => {
                *sink = Some(Box::new(std::io::BufWriter::new(file)));
                TRACE_GATE.store(GATE_ON, Ordering::Release);
                true
            }
            Err(e) => {
                eprintln!("TWOVIEW_TRACE: cannot create {path:?}: {e}");
                TRACE_GATE.store(GATE_OFF, Ordering::Release);
                false
            }
        },
        _ => {
            TRACE_GATE.store(GATE_OFF, Ordering::Release);
            false
        }
    }
}

/// Installs a JSON-lines trace sink at `path` (truncating), overriding
/// `TWOVIEW_TRACE`.
pub fn trace_to_path(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    trace_to_writer(Box::new(std::io::BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the trace sink (tests).
pub fn trace_to_writer(writer: Box<dyn Write + Send>) {
    let mut sink = TRACE_SINK.plock();
    *sink = Some(writer);
    TRACE_GATE.store(GATE_ON, Ordering::Release);
}

/// Flushes and uninstalls the trace sink; subsequent [`span`]/[`event`]
/// calls take the one-load disabled path again.
pub fn trace_off() {
    flush_thread_buffer();
    let mut sink = TRACE_SINK.plock();
    if let Some(w) = sink.as_mut() {
        let _ = w.flush();
    }
    *sink = None;
    TRACE_GATE.store(GATE_OFF, Ordering::Release);
}

/// Drains the calling thread's buffer and flushes the sink. Buffers of
/// *other* threads drain when their own top-level span closes (executor
/// threads do this after every job) and at thread exit.
pub fn flush_trace() {
    flush_thread_buffer();
    let mut sink = TRACE_SINK.plock();
    if let Some(w) = sink.as_mut() {
        let _ = w.flush();
    }
}

/// A field value on a span or event.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with enough digits to round-trip).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string.
    Str(&'static str),
    /// Owned string.
    Owned(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Owned(v)
    }
}

struct ThreadTrace {
    /// Small sequential id assigned on a thread's first record.
    thread_id: u64,
    /// Open span ids, innermost last.
    stack: Vec<u64>,
    /// Formatted lines awaiting the sink.
    buf: String,
    lines: usize,
}

impl ThreadTrace {
    fn new() -> Self {
        ThreadTrace {
            thread_id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            buf: String::new(),
            lines: 0,
        }
    }
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        drain(&mut self.buf, &mut self.lines);
    }
}

thread_local! {
    static TLS: RefCell<ThreadTrace> = RefCell::new(ThreadTrace::new());
}

const DRAIN_EVERY_LINES: usize = 64;

fn drain(buf: &mut String, lines: &mut usize) {
    if buf.is_empty() {
        return;
    }
    let mut sink = TRACE_SINK.plock();
    if let Some(w) = sink.as_mut() {
        let _ = w.write_all(buf.as_bytes());
        // The sink lives in a static, which never drops: without a flush
        // here a buffered writer would lose its tail at process exit and
        // leave the file truncated mid-record. Drains are batched (64
        // lines or a top-level span close), so this is one syscall each.
        let _ = w.flush();
    }
    buf.clear();
    *lines = 0;
}

fn flush_thread_buffer() {
    let _ = TLS.try_with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            let t = &mut *t;
            drain(&mut t.buf, &mut t.lines);
        }
    });
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// Scope guard for an open span; created by [`span`], recorded at drop.
/// When tracing is disabled the guard is inert and [`SpanGuard::field`]
/// is a no-op, so call sites need no `if enabled` of their own.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Opens a span named `name` under the calling thread's innermost open
/// span. Cost when tracing is disabled: one relaxed atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { active: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let parent = TLS
        .try_with(|tls| {
            let mut t = tls.borrow_mut();
            let parent = t.stack.last().copied().unwrap_or(0);
            t.stack.push(id);
            parent
        })
        .unwrap_or(0);
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            start,
            start_us,
            fields: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches a field to the span (no-op when tracing is disabled).
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) -> &mut Self {
        if let Some(a) = &mut self.active {
            a.fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_us = a.start.elapsed().as_micros() as u64;
        let _ = TLS.try_with(|tls| {
            let Ok(mut t) = tls.try_borrow_mut() else {
                return;
            };
            let t = &mut *t;
            // Pop this span (tolerating missed pops if a guard leaked).
            while let Some(top) = t.stack.pop() {
                if top == a.id {
                    break;
                }
            }
            write_record(
                &mut t.buf,
                "span",
                a.id,
                a.parent,
                t.thread_id,
                a.name,
                a.start_us,
                Some(dur_us),
                &a.fields,
            );
            t.lines += 1;
            if t.stack.is_empty() || t.lines >= DRAIN_EVERY_LINES {
                drain(&mut t.buf, &mut t.lines);
            }
        });
    }
}

/// Records a point-in-time event under the innermost open span. Cost
/// when tracing is disabled: one relaxed atomic load (plus constructing
/// the borrowed `fields` slice, which for numeric values is free).
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !trace_enabled() {
        return;
    }
    event_slow(name, fields);
}

#[cold]
fn event_slow(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start_us = Instant::now().duration_since(epoch()).as_micros() as u64;
    let _ = TLS.try_with(|tls| {
        let Ok(mut t) = tls.try_borrow_mut() else {
            return;
        };
        let t = &mut *t;
        let parent = t.stack.last().copied().unwrap_or(0);
        write_record(
            &mut t.buf,
            "event",
            id,
            parent,
            t.thread_id,
            name,
            start_us,
            None,
            fields,
        );
        t.lines += 1;
        if t.stack.is_empty() || t.lines >= DRAIN_EVERY_LINES {
            drain(&mut t.buf, &mut t.lines);
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn write_record(
    buf: &mut String,
    kind: &str,
    id: u64,
    parent: u64,
    thread: u64,
    name: &'static str,
    start_us: u64,
    dur_us: Option<u64>,
    fields: &[(&'static str, FieldValue)],
) {
    use std::fmt::Write as _;
    let _ = write!(
        buf,
        "{{\"kind\":\"{kind}\",\"id\":{id},\"parent\":{parent},\"thread\":{thread},\"name\":"
    );
    push_json_str(buf, name);
    let _ = write!(buf, ",\"start_us\":{start_us}");
    if let Some(d) = dur_us {
        let _ = write!(buf, ",\"dur_us\":{d}");
    }
    if !fields.is_empty() {
        buf.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            push_json_str(buf, key);
            buf.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(buf, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(buf, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(buf, "{v}");
                }
                FieldValue::F64(_) => buf.push_str("null"),
                FieldValue::Bool(v) => {
                    let _ = write!(buf, "{v}");
                }
                FieldValue::Str(s) => push_json_str(buf, s),
                FieldValue::Owned(s) => push_json_str(buf, s),
            }
        }
        buf.push('}');
    }
    buf.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace sink is process-global; tests that install one serialise
    // on this mutex (same pattern as the faults tests).
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    /// A Write that appends into a shared Vec, for sink assertions.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.plock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn counter_cells_sum_and_survive_drop() {
        let a = counter("unit.obs.sum");
        let b = counter("unit.obs.sum");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 3, "per-instance view reads the own cell");
        assert_eq!(snapshot().counter("unit.obs.sum"), 7);
        drop(a);
        assert_eq!(
            snapshot().counter("unit.obs.sum"),
            7,
            "dropped cells retire into the total"
        );
        drop(b);
        assert_eq!(snapshot().counter("unit.obs.sum"), 7);
    }

    #[test]
    fn gauges_report_live_levels_only() {
        let g = gauge("unit.obs.level");
        g.set(5);
        assert_eq!(snapshot().gauge("unit.obs.level"), 5);
        drop(g);
        assert_eq!(snapshot().gauge("unit.obs.level"), 0);
    }

    #[test]
    fn histogram_buckets_and_totals() {
        let h = histogram("unit.obs.lat");
        h.observe_ns(500); // ≤ 1µs
        h.observe_ns(5_000_000); // ≤ 10ms
        h.observe_ns(u64::MAX); // overflow
        let snap = snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "unit.obs.lat")
            .expect("registered");
        assert_eq!(hs.count, 3);
        assert_eq!(hs.buckets[0], (1_000, 1));
        assert_eq!(hs.buckets.last().unwrap().0, u64::MAX);
        assert_eq!(hs.buckets.last().unwrap().1, 1);
        assert_eq!(histogram("unit.obs.lat").count(), 3, "same core by name");
    }

    #[test]
    fn snapshot_json_is_stable_and_parseable_shape() {
        counter("unit.obs.json.b").incr();
        counter("unit.obs.json.a").incr();
        let a = snapshot().to_json();
        let b = snapshot().to_json();
        assert_eq!(a, b, "identical state renders identical bytes");
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.contains("\"unit.obs.json.a\":"));
        let ia = a.find("unit.obs.json.a").unwrap();
        let ib = a.find("unit.obs.json.b").unwrap();
        assert!(ia < ib, "keys sorted");
        assert!(a.ends_with("}}"));
    }

    #[test]
    fn spans_nest_record_and_drain_at_top_level_close() {
        let _guard = EXCLUSIVE.plock();
        let sink = SharedBuf::default();
        trace_to_writer(Box::new(sink.clone()));
        {
            let mut outer = span("unit.outer");
            outer.field("k", 7u64).field("s", "v");
            {
                let _inner = span("unit.inner");
                event("unit.mark", &[("flag", true.into())]);
            }
        }
        trace_off();
        let bytes = sink.0.plock().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "event + inner + outer: {text}");
        // Emission order: event first, then inner close, then outer close.
        assert!(lines[0].contains("\"kind\":\"event\"") && lines[0].contains("unit.mark"));
        assert!(lines[1].contains("unit.inner"));
        assert!(lines[2].contains("unit.outer") && lines[2].contains("\"k\":7"));
        // The event's parent is the inner span; inner's parent is outer.
        let id_of = |line: &str, key: &str| -> u64 {
            let at = line.find(key).unwrap() + key.len();
            line[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let inner_id = id_of(lines[1], "\"id\":");
        let outer_id = id_of(lines[2], "\"id\":");
        assert_eq!(id_of(lines[0], "\"parent\":"), inner_id);
        assert_eq!(id_of(lines[1], "\"parent\":"), outer_id);
        assert_eq!(id_of(lines[2], "\"parent\":"), 0);
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _guard = EXCLUSIVE.plock();
        trace_off();
        assert!(!trace_enabled());
        let mut s = span("unit.disabled");
        s.field("ignored", 1u64);
        drop(s);
        event("unit.disabled.event", &[]);
        // Nothing panics, nothing is buffered: installing a sink now must
        // see an empty stream until new records arrive.
        let sink = SharedBuf::default();
        trace_to_writer(Box::new(sink.clone()));
        flush_trace();
        assert!(sink.0.plock().is_empty());
        trace_off();
    }
}
